"""Multi-Choice Knapsack Problem (MCKP) solvers.

Step 1 of the GSO control algorithm (Sec. 4.1.1) reduces each subscriber's
downlink to an MCKP instance: the downlink is a knapsack with capacity
``B_d_i'``; each followed publisher contributes one *class* of items (its
edge-feasible streams ``S_ii'``); an item's weight is the stream bitrate and
its value the QoE utility; at most one item may be taken per class.

The module is organized as a small **kernel registry** (see
``docs/SOLVER.md``).  Every public solver is a dispatcher that picks an
execution kernel:

* ``kernel="numpy"`` (the default) — array-based dynamic programming: one
  stacked candidate matrix per class (one row per item plus the skip row),
  reduced with a single ``max``/``argmax`` over the shared capacity grid.
  No per-capacity Python loops anywhere.
* ``kernel="python"`` — the pure-Python reference implementation
  (:func:`_solve_mckp_dp_python` / :func:`_solve_mckp_dp_mandatory_python`),
  kept as the **differential oracle**: byte-identical results are enforced
  by tests, and CI runs the whole tier-1 suite once with
  ``REPRO_KERNEL=python`` so the oracle path stays exercised.

The default kernel comes from the ``REPRO_KERNEL`` environment variable
(falling back to ``"numpy"``); ``SolverConfig.kernel`` threads an explicit
choice through the solver stack.

Public solvers:

* :func:`solve_mckp_dp` — the production path: dynamic programming over a
  discretized capacity grid, pseudo-polynomial ``O(C/g * total_items)`` where
  ``g`` is the grid granularity.  With ``g = 1`` (kbps) the solution is
  exact; coarser grids trade a bounded optimality loss for speed.
* :func:`solve_mckp_dp_mandatory` — the variant where exactly one item must
  be taken per class; used by Step 3's uplink fix (Eq. 16), where policy
  entries may be lowered but not dropped.
* :func:`solve_mckp_dp_batch` — solve many instances at once by sharing DP
  tables over a **common capacity grid**: instances with the same class
  structure (same item tuples, any capacity) are answered by one DP sweep
  sized for the largest capacity, each member backtracking from its own
  grid column.  ``repro.core.knapsack`` routes the cache-miss instances of
  one knapsack step (all dirty subscribers of the solve) through this
  entry point.
* :func:`solve_mckp_exhaustive` — exact enumeration of the
  ``prod(|class|+1)`` combinations.  Exponential; this is the brute-force
  comparator of Fig. 6 and the test oracle.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import names as obs_names
from ..obs.registry import get_registry

#: One knapsack item: (weight_kbps, value).  Item identity within its class
#: is positional: solutions report the chosen index per class.
Item = Tuple[int, float]

#: A "no pick" marker in solution vectors.
NO_PICK: Optional[int] = None

#: Sentinel used in the integer choice tables.
_NO_CHOICE = -1

#: The registered DP execution kernels, in documentation order.
KERNELS: Tuple[str, ...] = ("numpy", "python")

#: Environment variable that selects the process-default kernel.
KERNEL_ENV = "REPRO_KERNEL"

_NEG_INF = float("-inf")


def default_kernel() -> str:
    """The process-default kernel: ``$REPRO_KERNEL`` or ``"numpy"``.

    Read per call (not cached) so tests and operators can flip the oracle
    path on without re-importing the module.
    """
    kernel = os.environ.get(KERNEL_ENV, "numpy")
    if kernel not in KERNELS:
        raise ValueError(
            f"{KERNEL_ENV}={kernel!r} is not a known MCKP kernel; "
            f"expected one of {KERNELS}"
        )
    return kernel


def _resolve_kernel(kernel: Optional[str]) -> str:
    if kernel is None:
        return default_kernel()
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown MCKP kernel {kernel!r}; expected one of {KERNELS}"
        )
    return kernel


class KernelStats:
    """Process-wide kernel usage counters (always on, unlike the metrics
    registry): solves per kernel, plus batched-entry-point accounting.
    ``repro solve`` and ``cluster stats`` report this snapshot."""

    def __init__(self) -> None:
        self.solves: Dict[str, int] = {k: 0 for k in KERNELS}
        self.batch_calls = 0
        self.batched_instances = 0

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly view of the counters."""
        return {
            "solves": dict(self.solves),
            "batch_calls": self.batch_calls,
            "batched_instances": self.batched_instances,
        }

    def reset(self) -> None:
        """Zero every counter (test isolation)."""
        self.solves = {k: 0 for k in KERNELS}
        self.batch_calls = 0
        self.batched_instances = 0


_KERNEL_STATS = KernelStats()


def kernel_stats() -> KernelStats:
    """The process-wide :class:`KernelStats` singleton."""
    return _KERNEL_STATS


@dataclass(frozen=True)
class MckpSolution:
    """Result of an MCKP solve.

    Attributes:
        picks: per class, the chosen item index or ``None`` if the class is
            skipped (Eq. 4 allows ``sum_k x_ik <= 1``).
        total_value: sum of chosen item values (the Eq. 1 objective).
        total_weight: sum of chosen item weights, guaranteed <= capacity.
    """

    picks: Tuple[Optional[int], ...]
    total_value: float
    total_weight: int


def _validate(classes: Sequence[Sequence[Item]], capacity: int) -> None:
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    for ci, cls in enumerate(classes):
        for wi, (weight, value) in enumerate(cls):
            if weight <= 0:
                raise ValueError(
                    f"item {wi} of class {ci} has non-positive weight {weight}"
                )
            if value < 0:
                raise ValueError(
                    f"item {wi} of class {ci} has negative value {value}"
                )


def _check_granularity(granularity: int) -> None:
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")


def _grid_weight(weight: int, granularity: int) -> int:
    """Item weight on the capacity grid, rounded up (never under-counts)."""
    return max(1, -(-weight // granularity))


def _class_grid_weights(
    cls: Sequence[Item], granularity: int
) -> List[int]:
    """Grid weights of one class's items, computed once per (class, solve).

    Both the DP sweep and the backtracking consult grid weights; hoisting
    them per class avoids recomputing the ceil-division per (item, pass).
    """
    if granularity == 1:
        return [w for w, _ in cls]
    return [_grid_weight(w, granularity) for w, _ in cls]


class _DpWorkspace(threading.local):
    """Reusable DP buffers, grown geometrically and shared across solves.

    The array kernels allocate three buffers per solve (the value row, the
    stacked candidate matrix, and the choice table); at fleet rates that is
    allocator traffic on the hottest path in the process.  One workspace
    per thread hands out right-sized views over persistent buffers instead.
    Thread-local so concurrent solver threads never alias each other's
    tables.
    """

    def __init__(self) -> None:
        self._value = np.zeros(0, dtype=np.float64)
        self._stack = np.zeros((0, 0), dtype=np.float64)
        self._choices = np.full((0, 0), _NO_CHOICE, dtype=np.int32)

    def arrays(
        self, n_classes: int, max_items: int, slots: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Views ``(value, stack, choices)`` for one solve; the caller
        initializes ``value`` and fills stack rows per class sweep.
        ``choices`` comes pre-filled with the no-choice sentinel."""
        width = slots + 1
        rows = max_items + 1  # one row per item plus the skip row
        if self._value.shape[0] < width:
            self._value = np.zeros(
                max(width, 2 * self._value.shape[0]), dtype=np.float64
            )
        if self._stack.shape[0] < rows or self._stack.shape[1] < width:
            self._stack = np.zeros(
                (
                    max(rows, 2 * self._stack.shape[0]),
                    max(width, 2 * self._stack.shape[1]),
                ),
                dtype=np.float64,
            )
        if (
            self._choices.shape[0] < n_classes
            or self._choices.shape[1] < width
        ):
            self._choices = np.full(
                (
                    max(n_classes, 2 * self._choices.shape[0]),
                    max(width, 2 * self._choices.shape[1]),
                ),
                _NO_CHOICE,
                dtype=np.int32,
            )
        value = self._value[:width]
        stack = self._stack[:rows, :width]
        choices = self._choices[:n_classes, :width]
        choices.fill(_NO_CHOICE)
        return value, stack, choices


_WORKSPACE = _DpWorkspace()


def _empty_solution(n_classes: int) -> MckpSolution:
    return MckpSolution(tuple([NO_PICK] * n_classes), 0.0, 0)


def _finish(
    classes: Sequence[Sequence[Item]],
    picks: List[Optional[int]],
    capacity: int,
) -> MckpSolution:
    total_weight = sum(
        classes[ci][idx][0] for ci, idx in enumerate(picks) if idx is not None
    )
    total_value = sum(
        classes[ci][idx][1] for ci, idx in enumerate(picks) if idx is not None
    )
    assert total_weight <= capacity, "DP produced an infeasible solution"
    return MckpSolution(tuple(picks), total_value, total_weight)


def _emit_solve_obs(reg, kernel: str, n_classes: int, slots: int) -> None:
    """Per-solve metrics shared by the scalar and batched entry points."""
    _KERNEL_STATS.solves[kernel] += 1
    if reg.enabled:
        reg.counter(obs_names.MCKP_SOLVES).inc()
        reg.counter(obs_names.MCKP_KERNEL_SOLVES, kernel=kernel).inc()
        reg.histogram(obs_names.MCKP_TABLE_CELLS).observe(
            n_classes * (slots + 1)
        )


def _emit_grid_slack(
    reg,
    classes: Sequence[Sequence[Item]],
    granularity: int,
    grid_weights: Sequence[Sequence[int]],
    picks: Sequence[Optional[int]],
) -> None:
    """Granularity-induced conservatism: capacity consumed by rounding
    item weights up to the grid, i.e. budget the DP could not use."""
    if not (reg.enabled and granularity > 1):
        return
    slack = sum(
        grid_weights[ci][idx] * granularity - classes[ci][idx][0]
        for ci, idx in enumerate(picks)
        if idx is not None
    )
    reg.histogram(obs_names.MCKP_GRID_SLACK_KBPS).observe(slack)


# --------------------------------------------------------------------- #
# Optional-pick DP (Step 1's per-subscriber knapsack)
# --------------------------------------------------------------------- #


def solve_mckp_dp(
    classes: Sequence[Sequence[Item]],
    capacity: int,
    granularity: int = 1,
    kernel: Optional[str] = None,
) -> MckpSolution:
    """Solve an MCKP instance by dynamic programming.

    The DP table has one row per class and one column per capacity grid
    slot.  Weights are divided by ``granularity`` rounding *up*, so the
    returned solution never violates the true capacity; it may be slightly
    conservative (skip a barely-fitting item) when ``granularity > 1``.

    Args:
        classes: item classes; at most one item is chosen from each.
        capacity: knapsack capacity in the same (kbps) unit as weights.
        granularity: capacity grid step in kbps.  1 = exact.
        kernel: execution kernel (``"numpy"`` or ``"python"``); ``None``
            uses :func:`default_kernel`.  Both kernels return
            byte-identical solutions.

    Returns:
        The optimal (for the discretized instance) :class:`MckpSolution`.
    """
    kernel = _resolve_kernel(kernel)
    _validate(classes, capacity)
    _check_granularity(granularity)
    slots = capacity // granularity
    n = len(classes)
    reg = get_registry()
    _emit_solve_obs(reg, kernel, n, slots)
    if n == 0 or slots == 0:
        return _empty_solution(n)
    if kernel == "python":
        return _solve_mckp_dp_python(classes, capacity, granularity)
    grid_weights = [_class_grid_weights(cls, granularity) for cls in classes]
    picks = _dp_optional_numpy(classes, grid_weights, slots)
    _emit_grid_slack(reg, classes, granularity, grid_weights, picks)
    return _finish(classes, picks, capacity)


def _dp_optional_table(
    classes: Sequence[Sequence[Item]],
    grid_weights: Sequence[Sequence[int]],
    slots: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """The array sweep of the optional-pick DP: per class, one stacked
    candidate matrix (skip row + one shifted-add row per item) reduced by
    ``max``/``argmax`` down the item axis.  Returns the final value row
    and the full choice table (views into the thread workspace, valid
    until the next solve on this thread).

    ``argmax`` returns the *first* maximizing row, which reproduces the
    reference tie-break exactly: skipping beats any equal-valued item, and
    a lower item index beats a higher one (Table 1's deterministic picks).

    The table is reusable across capacities: column ``c`` only ever reads
    columns ``<= c``, so for any ``s <= slots`` the prefix ``[0..s]`` is
    exactly the table the DP would have built on an ``s``-slot grid.  The
    batched entry point exploits this to share one table among instances
    that differ only in capacity.
    """
    n = len(classes)
    width = slots + 1
    max_items = max(len(cls) for cls in classes)
    value, stack, choices = _WORKSPACE.arrays(n, max_items, slots)
    value.fill(0.0)
    for ci, cls in enumerate(classes):
        rows = stack[: len(cls) + 1]
        rows[0] = value  # skipping this class is always allowed
        gws = grid_weights[ci]
        for idx in range(len(cls)):
            gw = gws[idx]
            row = rows[idx + 1]
            row.fill(_NEG_INF)
            if gw <= slots:
                np.add(value[: width - gw], cls[idx][1], out=row[gw:])
        # rows are materialized copies, so reducing straight into `value`
        # cannot corrupt the candidates being reduced.
        choices[ci] = rows.argmax(axis=0) - 1  # row 0 (skip) -> _NO_CHOICE
        rows.max(axis=0, out=value)
    return value, choices


def _dp_optional_numpy(
    classes: Sequence[Sequence[Item]],
    grid_weights: Sequence[Sequence[int]],
    slots: int,
) -> List[Optional[int]]:
    value, choices = _dp_optional_table(classes, grid_weights, slots)
    col = int(np.argmax(value))  # argmax returns the smallest maximizing col
    return _backtrack_optional(grid_weights, choices, len(classes), col)


def _backtrack_optional(
    grid_weights: Sequence[Sequence[int]],
    choices,
    n: int,
    col: int,
) -> List[Optional[int]]:
    picks: List[Optional[int]] = [NO_PICK] * n
    for ci in range(n - 1, -1, -1):
        idx = int(choices[ci][col])
        if idx == _NO_CHOICE:
            continue
        picks[ci] = idx
        col -= grid_weights[ci][idx]
    return picks


def _backtrack_optional_batch(
    grid_weights: Sequence[Sequence[int]],
    choices,
    n: int,
    cols: np.ndarray,
) -> np.ndarray:
    """Backtrack every member of one shared DP table in one pass.

    The scalar :func:`_backtrack_optional` walks the classes once *per
    member*; here the class loop runs once for the whole group, gathering
    each member's choice for class ``ci`` with a fancy index on its
    current column and stepping all columns together.  Returns an
    ``(members, n)`` int array using :data:`_NO_CHOICE` for skipped
    classes — decision-for-decision identical to the scalar walk.
    """
    cols = np.array(cols, dtype=np.int64, copy=True)
    picks = np.full((cols.shape[0], n), _NO_CHOICE, dtype=np.int64)
    for ci in range(n - 1, -1, -1):
        idx = np.asarray(choices[ci], dtype=np.int64)[cols]
        picks[:, ci] = idx
        gws = np.asarray(grid_weights[ci], dtype=np.int64)
        if gws.size:
            # idx == -1 (skip) legally gathers gws[-1]; the where masks it.
            cols -= np.where(idx != _NO_CHOICE, gws[idx], 0)
    return picks


def _solve_mckp_dp_python(
    classes: Sequence[Sequence[Item]],
    capacity: int,
    granularity: int = 1,
) -> MckpSolution:
    """Pure-Python reference implementation of :func:`solve_mckp_dp`.

    The differential oracle of the ``"python"`` kernel; functionally
    identical to the array kernel, only slower.
    """
    _validate(classes, capacity)
    _check_granularity(granularity)
    slots = capacity // granularity
    n = len(classes)
    if n == 0 or slots == 0:
        return _empty_solution(n)

    best = [0.0] * (slots + 1)
    choices: List[List[int]] = []
    for cls in classes:
        new_best = list(best)
        row = [_NO_CHOICE] * (slots + 1)
        for idx, (w, v) in enumerate(cls):
            gw = _grid_weight(w, granularity)
            if gw > slots:
                continue
            for c in range(slots, gw - 1, -1):
                cand = best[c - gw] + v
                if cand > new_best[c]:
                    new_best[c] = cand
                    row[c] = idx
        best = new_best
        choices.append(row)

    col = max(range(slots + 1), key=lambda c: (best[c], -c))
    picks: List[Optional[int]] = [NO_PICK] * n
    for ci in range(n - 1, -1, -1):
        idx = choices[ci][col]
        if idx == _NO_CHOICE:
            picks[ci] = NO_PICK
            continue
        picks[ci] = idx
        col -= _grid_weight(classes[ci][idx][0], granularity)
    return _finish(classes, picks, capacity)


# --------------------------------------------------------------------- #
# Batched optional-pick DP (all cache-miss instances of one step)
# --------------------------------------------------------------------- #

#: One batch entry: ``(classes, capacity)``.
BatchInstance = Tuple[Sequence[Sequence[Item]], int]


def solve_mckp_dp_batch(
    instances: Sequence[BatchInstance],
    granularity: int = 1,
    kernel: Optional[str] = None,
) -> List[MckpSolution]:
    """Solve many MCKP instances, sharing DP tables over a common grid.

    Byte-identical to ``[solve_mckp_dp(c, cap, granularity, kernel) for
    (c, cap) in instances]``.  Instances are grouped by their *class
    structure* (the exact per-class item tuples): one group runs a
    **single DP sweep** on a common capacity grid sized by the group's
    largest slot count, and every member reads its own answer out of the
    shared table — a DP column only ever depends on lower columns, so the
    prefix ``[0..slots]`` of the big table is exactly the table the
    member's own solve would have built, and each member's final
    ``argmax`` is restricted to its own columns.

    This is the shape the upstream dedup layer cannot collapse: dirty
    subscribers of one publisher typically share their followed classes
    and differ only in downlink budget, i.e. same class structure,
    different capacity bucket — distinct cache keys, one table here.

    ``repro.core.knapsack`` calls this under its dedup layer, so exactly
    the distinct cache-miss instances of one knapsack step are batched.

    Args:
        instances: ``(classes, capacity)`` pairs.
        granularity: shared capacity grid step in kbps.
        kernel: execution kernel; the ``"python"`` kernel solves the batch
            instance-by-instance through the oracle.

    Returns:
        One :class:`MckpSolution` per instance, in input order.
    """
    kernel = _resolve_kernel(kernel)
    _check_granularity(granularity)
    _KERNEL_STATS.batch_calls += 1
    _KERNEL_STATS.batched_instances += len(instances)
    reg = get_registry()
    if reg.enabled:
        reg.counter(obs_names.MCKP_BATCHED_SOLVES).inc(len(instances))
        reg.histogram(obs_names.MCKP_BATCH_SIZE).observe(len(instances))
    if kernel == "python":
        return [
            solve_mckp_dp(classes, capacity, granularity, kernel=kernel)
            for classes, capacity in instances
        ]

    results: List[Optional[MckpSolution]] = [None] * len(instances)
    #: class structure -> indices of the instances that share it.
    groups: Dict[Tuple[Tuple[Item, ...], ...], List[int]] = {}
    for i, (classes, capacity) in enumerate(instances):
        _validate(classes, capacity)
        slots = capacity // granularity
        _emit_solve_obs(reg, kernel, len(classes), slots)
        if len(classes) == 0 or slots == 0:
            results[i] = _empty_solution(len(classes))
        else:
            groups.setdefault(tuple(map(tuple, classes)), []).append(i)

    for idxs in groups.values():
        classes, _ = instances[idxs[0]]
        grid_weights = [
            _class_grid_weights(cls, granularity) for cls in classes
        ]
        max_slots = max(instances[i][1] // granularity for i in idxs)
        value, choices = _dp_optional_table(classes, grid_weights, max_slots)
        cols = np.fromiter(
            (
                int(np.argmax(value[: instances[i][1] // granularity + 1]))
                for i in idxs
            ),
            dtype=np.int64,
            count=len(idxs),
        )
        group_picks = _backtrack_optional_batch(
            grid_weights, choices, len(classes), cols
        )
        for row, i in zip(group_picks, idxs):
            capacity = instances[i][1]
            picks: List[Optional[int]] = [
                NO_PICK if p == _NO_CHOICE else int(p) for p in row
            ]
            _emit_grid_slack(reg, classes, granularity, grid_weights, picks)
            results[i] = _finish(classes, picks, capacity)
    return results  # type: ignore[return-value]  # every slot is filled


# --------------------------------------------------------------------- #
# Mandatory-pick DP (Step 3's Eq. 16 uplink fix)
# --------------------------------------------------------------------- #


def solve_mckp_dp_mandatory(
    classes: Sequence[Sequence[Item]],
    capacity: int,
    granularity: int = 1,
    kernel: Optional[str] = None,
) -> Optional[MckpSolution]:
    """Solve an MCKP where *exactly one* item must be taken from each class.

    Step 3's fix (Eq. 16) replaces every policy entry with a lower bitrate of
    the same resolution — entries cannot be dropped during the fix, so the
    knapsack there is the mandatory-pick variant.

    Args:
        kernel: execution kernel (``"numpy"`` or ``"python"``); ``None``
            uses :func:`default_kernel`.

    Returns:
        The optimal solution, or ``None`` when no feasible combination
        exists (the Eq. 17 test failed).
    """
    kernel = _resolve_kernel(kernel)
    _validate(classes, capacity)
    _check_granularity(granularity)
    reg = get_registry()
    _KERNEL_STATS.solves[kernel] += 1
    if reg.enabled:
        reg.counter(obs_names.MCKP_KERNEL_SOLVES, kernel=kernel).inc()
    if kernel == "python":
        return _solve_mckp_dp_mandatory_python(classes, capacity, granularity)
    if any(len(cls) == 0 for cls in classes):
        return None
    n = len(classes)
    if n == 0:
        return MckpSolution((), 0.0, 0)
    slots = capacity // granularity
    grid_weights = [_class_grid_weights(cls, granularity) for cls in classes]

    width = slots + 1
    max_items = max(len(cls) for cls in classes)
    value, stack, choices = _WORKSPACE.arrays(n, max_items, slots)
    value.fill(_NEG_INF)
    value[0] = 0.0
    for ci, cls in enumerate(classes):
        rows = stack[: len(cls)]  # no skip row: a pick is mandatory
        gws = grid_weights[ci]
        for idx in range(len(cls)):
            gw = gws[idx]
            row = rows[idx]
            row.fill(_NEG_INF)
            if gw <= slots:
                np.add(value[: width - gw], cls[idx][1], out=row[gw:])
        am = rows.argmax(axis=0)
        rows.max(axis=0, out=value)
        # Columns no item can reach keep the no-choice sentinel, exactly
        # like the oracle's rows (argmax alone would report item 0 there).
        choices[ci] = np.where(np.isfinite(value), am, _NO_CHOICE)

    if not np.isfinite(value).any():
        return None
    col = int(np.argmax(value))
    picks: List[int] = [0] * n
    for ci in range(n - 1, -1, -1):
        idx = int(choices[ci][col])
        assert idx != _NO_CHOICE, "mandatory DP lost a pick during backtracking"
        picks[ci] = idx
        col -= grid_weights[ci][idx]
    total_weight = sum(classes[ci][idx][0] for ci, idx in enumerate(picks))
    total_value = sum(classes[ci][idx][1] for ci, idx in enumerate(picks))
    if total_weight > capacity:
        return None
    return MckpSolution(tuple(picks), total_value, total_weight)


def _solve_mckp_dp_mandatory_python(
    classes: Sequence[Sequence[Item]],
    capacity: int,
    granularity: int = 1,
) -> Optional[MckpSolution]:
    """Pure-Python reference implementation of :func:`solve_mckp_dp_mandatory`.

    The differential oracle for the array kernel, mirroring it
    decision-for-decision: the same ``-inf`` infeasibility propagation,
    the same first-smallest-column argmax tie rule, and the same post-hoc
    exact-capacity rejection.
    """
    _validate(classes, capacity)
    _check_granularity(granularity)
    if any(len(cls) == 0 for cls in classes):
        return None
    n = len(classes)
    if n == 0:
        return MckpSolution((), 0.0, 0)
    slots = capacity // granularity

    neg = float("-inf")
    best = [neg] * (slots + 1)
    best[0] = 0.0
    choices: List[List[int]] = []
    for cls in classes:
        new_best = [neg] * (slots + 1)
        row = [_NO_CHOICE] * (slots + 1)
        for idx, (w, v) in enumerate(cls):
            gw = _grid_weight(w, granularity)
            if gw > slots:
                continue
            for c in range(slots, gw - 1, -1):
                if best[c - gw] == neg:
                    continue
                cand = best[c - gw] + v
                if cand > new_best[c]:
                    new_best[c] = cand
                    row[c] = idx
        best = new_best
        choices.append(row)

    if all(value == neg for value in best):
        return None
    col = max(range(slots + 1), key=lambda c: (best[c], -c))
    picks: List[int] = [0] * n
    for ci in range(n - 1, -1, -1):
        idx = choices[ci][col]
        assert idx != _NO_CHOICE, "mandatory DP lost a pick during backtracking"
        picks[ci] = idx
        col -= _grid_weight(classes[ci][idx][0], granularity)
    total_weight = sum(classes[ci][idx][0] for ci, idx in enumerate(picks))
    total_value = sum(classes[ci][idx][1] for ci, idx in enumerate(picks))
    if total_weight > capacity:
        return None
    return MckpSolution(tuple(picks), total_value, total_weight)


def solve_mckp_exhaustive(
    classes: Sequence[Sequence[Item]],
    capacity: int,
) -> MckpSolution:
    """Solve an MCKP instance by exact enumeration.

    Iterates the full cartesian product of per-class choices (including
    "skip"), so the running time is ``prod(|class_i| + 1)`` — exponential in
    the number of classes.  This is the brute-force comparator of Fig. 6.

    Returns:
        The exactly-optimal :class:`MckpSolution`.
    """
    _validate(classes, capacity)
    n = len(classes)
    options: List[List[Optional[int]]] = [
        [NO_PICK] + list(range(len(cls))) for cls in classes
    ]
    best_value = -1.0
    best_weight = 0
    best_picks: Tuple[Optional[int], ...] = tuple([NO_PICK] * n)
    for combo in itertools.product(*options):
        weight = 0
        value = 0.0
        feasible = True
        for ci, idx in enumerate(combo):
            if idx is None:
                continue
            w, v = classes[ci][idx]
            weight += w
            if weight > capacity:
                feasible = False
                break
            value += v
        if feasible and value > best_value:
            best_value = value
            best_weight = weight
            best_picks = combo
    return MckpSolution(best_picks, max(best_value, 0.0), best_weight)
