"""Multi-Choice Knapsack Problem (MCKP) solvers.

Step 1 of the GSO control algorithm (Sec. 4.1.1) reduces each subscriber's
downlink to an MCKP instance: the downlink is a knapsack with capacity
``B_d_i'``; each followed publisher contributes one *class* of items (its
edge-feasible streams ``S_ii'``); an item's weight is the stream bitrate and
its value the QoE utility; at most one item may be taken per class.

Three solvers are provided:

* :func:`solve_mckp_dp` — the production path: dynamic programming over a
  discretized capacity grid, pseudo-polynomial ``O(C/g * total_items)`` where
  ``g`` is the grid granularity.  With ``g = 1`` (kbps) the solution is
  exact; coarser grids trade a bounded optimality loss for speed.  The
  capacity dimension is vectorized with numpy so large meetings (Fig. 6c:
  400 subscribers x 18 bitrates) solve in real time.
* :func:`solve_mckp_dp_mandatory` — the variant where exactly one item must
  be taken per class; used by Step 3's uplink fix (Eq. 16), where policy
  entries may be lowered but not dropped.
* :func:`solve_mckp_exhaustive` — exact enumeration of the
  ``prod(|class|+1)`` combinations.  Exponential; this is the brute-force
  comparator of Fig. 6 and the test oracle.

A pure-Python DP (:func:`_solve_mckp_dp_python`) is kept for differential
testing of the vectorized path.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import names as obs_names
from ..obs.registry import get_registry

#: One knapsack item: (weight_kbps, value).  Item identity within its class
#: is positional: solutions report the chosen index per class.
Item = Tuple[int, float]

#: A "no pick" marker in solution vectors.
NO_PICK: Optional[int] = None

#: Sentinel used in the integer choice tables.
_NO_CHOICE = -1


@dataclass(frozen=True)
class MckpSolution:
    """Result of an MCKP solve.

    Attributes:
        picks: per class, the chosen item index or ``None`` if the class is
            skipped (Eq. 4 allows ``sum_k x_ik <= 1``).
        total_value: sum of chosen item values (the Eq. 1 objective).
        total_weight: sum of chosen item weights, guaranteed <= capacity.
    """

    picks: Tuple[Optional[int], ...]
    total_value: float
    total_weight: int


def _validate(classes: Sequence[Sequence[Item]], capacity: int) -> None:
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    for ci, cls in enumerate(classes):
        for wi, (weight, value) in enumerate(cls):
            if weight <= 0:
                raise ValueError(
                    f"item {wi} of class {ci} has non-positive weight {weight}"
                )
            if value < 0:
                raise ValueError(
                    f"item {wi} of class {ci} has negative value {value}"
                )


def _grid_weight(weight: int, granularity: int) -> int:
    """Item weight on the capacity grid, rounded up (never under-counts)."""
    return max(1, -(-weight // granularity))


def _class_grid_weights(
    cls: Sequence[Item], granularity: int
) -> List[int]:
    """Grid weights of one class's items, computed once per (class, solve).

    Both the DP sweep and the backtracking consult grid weights; hoisting
    them per class avoids recomputing the ceil-division per (item, pass).
    """
    if granularity == 1:
        return [w for w, _ in cls]
    return [_grid_weight(w, granularity) for w, _ in cls]


class _DpWorkspace(threading.local):
    """Reusable DP buffers, grown geometrically and shared across solves.

    The vectorized DP allocates three arrays per solve (two value rows
    and the choice table); at fleet rates that is allocator traffic on
    the hottest path in the process.  One workspace per thread hands out
    right-sized views over persistent buffers instead.  Thread-local so
    concurrent solver threads never alias each other's tables.
    """

    def __init__(self) -> None:
        self._value_a = np.zeros(0, dtype=np.float64)
        self._value_b = np.zeros(0, dtype=np.float64)
        self._choices = np.full((0, 0), _NO_CHOICE, dtype=np.int32)

    def arrays(
        self, n_classes: int, slots: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Views ``(best, scratch, choices)`` initialized for one solve:
        ``best`` zeroed, ``choices`` filled with the no-choice sentinel."""
        width = slots + 1
        if self._value_a.shape[0] < width:
            size = max(width, 2 * self._value_a.shape[0])
            self._value_a = np.zeros(size, dtype=np.float64)
            self._value_b = np.zeros(size, dtype=np.float64)
        if (
            self._choices.shape[0] < n_classes
            or self._choices.shape[1] < width
        ):
            rows = max(n_classes, 2 * self._choices.shape[0])
            cols = max(width, 2 * self._choices.shape[1])
            self._choices = np.full((rows, cols), _NO_CHOICE, dtype=np.int32)
        best = self._value_a[:width]
        scratch = self._value_b[:width]
        choices = self._choices[:n_classes, :width]
        best.fill(0.0)
        choices.fill(_NO_CHOICE)
        return best, scratch, choices


_WORKSPACE = _DpWorkspace()


def _empty_solution(n_classes: int) -> MckpSolution:
    return MckpSolution(tuple([NO_PICK] * n_classes), 0.0, 0)


def _finish(
    classes: Sequence[Sequence[Item]],
    picks: List[Optional[int]],
    capacity: int,
) -> MckpSolution:
    total_weight = sum(
        classes[ci][idx][0] for ci, idx in enumerate(picks) if idx is not None
    )
    total_value = sum(
        classes[ci][idx][1] for ci, idx in enumerate(picks) if idx is not None
    )
    assert total_weight <= capacity, "DP produced an infeasible solution"
    return MckpSolution(tuple(picks), total_value, total_weight)


def solve_mckp_dp(
    classes: Sequence[Sequence[Item]],
    capacity: int,
    granularity: int = 1,
) -> MckpSolution:
    """Solve an MCKP instance by dynamic programming (numpy-vectorized).

    The DP table has one row per class and one column per capacity grid
    slot.  Weights are divided by ``granularity`` rounding *up*, so the
    returned solution never violates the true capacity; it may be slightly
    conservative (skip a barely-fitting item) when ``granularity > 1``.

    Args:
        classes: item classes; at most one item is chosen from each.
        capacity: knapsack capacity in the same (kbps) unit as weights.
        granularity: capacity grid step in kbps.  1 = exact.

    Returns:
        The optimal (for the discretized instance) :class:`MckpSolution`.
    """
    _validate(classes, capacity)
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    slots = capacity // granularity
    n = len(classes)
    reg = get_registry()
    if reg.enabled:
        reg.counter(obs_names.MCKP_SOLVES).inc()
        reg.histogram(obs_names.MCKP_TABLE_CELLS).observe(n * (slots + 1))
    if n == 0 or slots == 0:
        return _empty_solution(n)

    grid_weights = [_class_grid_weights(cls, granularity) for cls in classes]
    best, scratch, choices = _WORKSPACE.arrays(n, slots)
    for ci, cls in enumerate(classes):
        np.copyto(scratch, best)  # skipping this class is always allowed
        row = choices[ci]
        gws = grid_weights[ci]
        for idx, (w, v) in enumerate(cls):
            gw = gws[idx]
            if gw > slots:
                continue
            cand = best[: slots + 1 - gw] + v
            better = cand > scratch[gw:]
            scratch[gw:][better] = cand[better]
            row[gw:][better] = idx
        best, scratch = scratch, best

    col = int(np.argmax(best))  # argmax returns the smallest maximizing col
    picks: List[Optional[int]] = [NO_PICK] * n
    for ci in range(n - 1, -1, -1):
        idx = int(choices[ci][col])
        if idx == _NO_CHOICE:
            picks[ci] = NO_PICK
            continue
        picks[ci] = idx
        col -= grid_weights[ci][idx]
    if reg.enabled and granularity > 1:
        # Granularity-induced conservatism: capacity consumed by rounding
        # item weights up to the grid, i.e. budget the DP could not use.
        slack = sum(
            grid_weights[ci][idx] * granularity - classes[ci][idx][0]
            for ci, idx in enumerate(picks)
            if idx is not None
        )
        reg.histogram(obs_names.MCKP_GRID_SLACK_KBPS).observe(slack)
    return _finish(classes, picks, capacity)


def _solve_mckp_dp_python(
    classes: Sequence[Sequence[Item]],
    capacity: int,
    granularity: int = 1,
) -> MckpSolution:
    """Pure-Python reference implementation of :func:`solve_mckp_dp`.

    Kept for differential testing; functionally identical, only slower.
    """
    _validate(classes, capacity)
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    slots = capacity // granularity
    n = len(classes)
    if n == 0 or slots == 0:
        return _empty_solution(n)

    best = [0.0] * (slots + 1)
    choices: List[List[int]] = []
    for cls in classes:
        new_best = list(best)
        row = [_NO_CHOICE] * (slots + 1)
        for idx, (w, v) in enumerate(cls):
            gw = _grid_weight(w, granularity)
            if gw > slots:
                continue
            for c in range(slots, gw - 1, -1):
                cand = best[c - gw] + v
                if cand > new_best[c]:
                    new_best[c] = cand
                    row[c] = idx
        best = new_best
        choices.append(row)

    col = max(range(slots + 1), key=lambda c: (best[c], -c))
    picks: List[Optional[int]] = [NO_PICK] * n
    for ci in range(n - 1, -1, -1):
        idx = choices[ci][col]
        if idx == _NO_CHOICE:
            picks[ci] = NO_PICK
            continue
        picks[ci] = idx
        col -= _grid_weight(classes[ci][idx][0], granularity)
    return _finish(classes, picks, capacity)


def solve_mckp_dp_mandatory(
    classes: Sequence[Sequence[Item]],
    capacity: int,
    granularity: int = 1,
) -> Optional[MckpSolution]:
    """Solve an MCKP where *exactly one* item must be taken from each class.

    Step 3's fix (Eq. 16) replaces every policy entry with a lower bitrate of
    the same resolution — entries cannot be dropped during the fix, so the
    knapsack there is the mandatory-pick variant.

    Returns:
        The optimal solution, or ``None`` when no feasible combination
        exists (the Eq. 17 test failed).
    """
    _validate(classes, capacity)
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    if any(len(cls) == 0 for cls in classes):
        return None
    n = len(classes)
    if n == 0:
        return MckpSolution((), 0.0, 0)
    slots = capacity // granularity

    neg = float("-inf")
    best = np.full(slots + 1, neg, dtype=np.float64)
    best[0] = 0.0
    choices = np.full((n, slots + 1), _NO_CHOICE, dtype=np.int32)
    for ci, cls in enumerate(classes):
        new_best = np.full(slots + 1, neg, dtype=np.float64)
        row = choices[ci]
        for idx, (w, v) in enumerate(cls):
            gw = _grid_weight(w, granularity)
            if gw > slots:
                continue
            cand = best[: slots + 1 - gw] + v
            better = cand > new_best[gw:]
            new_best[gw:][better] = cand[better]
            row[gw:][better] = idx
        best = new_best

    if not np.isfinite(best).any():
        return None
    col = int(np.argmax(best))
    picks: List[int] = [0] * n
    for ci in range(n - 1, -1, -1):
        idx = int(choices[ci][col])
        assert idx != _NO_CHOICE, "mandatory DP lost a pick during backtracking"
        picks[ci] = idx
        col -= _grid_weight(classes[ci][idx][0], granularity)
    total_weight = sum(classes[ci][idx][0] for ci, idx in enumerate(picks))
    total_value = sum(classes[ci][idx][1] for ci, idx in enumerate(picks))
    if total_weight > capacity:
        return None
    return MckpSolution(tuple(picks), total_value, total_weight)


def _solve_mckp_dp_mandatory_python(
    classes: Sequence[Sequence[Item]],
    capacity: int,
    granularity: int = 1,
) -> Optional[MckpSolution]:
    """Pure-Python reference implementation of :func:`solve_mckp_dp_mandatory`.

    The differential oracle for the vectorized mandatory-pick variant,
    mirroring it decision-for-decision: the same ``-inf`` infeasibility
    propagation, the same first-smallest-column argmax tie rule, and the
    same post-hoc exact-capacity rejection.  Kept for testing only.
    """
    _validate(classes, capacity)
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    if any(len(cls) == 0 for cls in classes):
        return None
    n = len(classes)
    if n == 0:
        return MckpSolution((), 0.0, 0)
    slots = capacity // granularity

    neg = float("-inf")
    best = [neg] * (slots + 1)
    best[0] = 0.0
    choices: List[List[int]] = []
    for cls in classes:
        new_best = [neg] * (slots + 1)
        row = [_NO_CHOICE] * (slots + 1)
        for idx, (w, v) in enumerate(cls):
            gw = _grid_weight(w, granularity)
            if gw > slots:
                continue
            for c in range(slots, gw - 1, -1):
                if best[c - gw] == neg:
                    continue
                cand = best[c - gw] + v
                if cand > new_best[c]:
                    new_best[c] = cand
                    row[c] = idx
        best = new_best
        choices.append(row)

    if all(value == neg for value in best):
        return None
    col = max(range(slots + 1), key=lambda c: (best[c], -c))
    picks: List[int] = [0] * n
    for ci in range(n - 1, -1, -1):
        idx = choices[ci][col]
        assert idx != _NO_CHOICE, "mandatory DP lost a pick during backtracking"
        picks[ci] = idx
        col -= _grid_weight(classes[ci][idx][0], granularity)
    total_weight = sum(classes[ci][idx][0] for ci, idx in enumerate(picks))
    total_value = sum(classes[ci][idx][1] for ci, idx in enumerate(picks))
    if total_weight > capacity:
        return None
    return MckpSolution(tuple(picks), total_value, total_weight)


def solve_mckp_exhaustive(
    classes: Sequence[Sequence[Item]],
    capacity: int,
) -> MckpSolution:
    """Solve an MCKP instance by exact enumeration.

    Iterates the full cartesian product of per-class choices (including
    "skip"), so the running time is ``prod(|class_i| + 1)`` — exponential in
    the number of classes.  This is the brute-force comparator of Fig. 6.

    Returns:
        The exactly-optimal :class:`MckpSolution`.
    """
    _validate(classes, capacity)
    n = len(classes)
    options: List[List[Optional[int]]] = [
        [NO_PICK] + list(range(len(cls))) for cls in classes
    ]
    best_value = -1.0
    best_weight = 0
    best_picks: Tuple[Optional[int], ...] = tuple([NO_PICK] * n)
    for combo in itertools.product(*options):
        weight = 0
        value = 0.0
        feasible = True
        for ci, idx in enumerate(combo):
            if idx is None:
                continue
            w, v = classes[ci][idx]
            weight += w
            if weight > capacity:
                feasible = False
                break
            value += v
        if feasible and value > best_value:
            best_value = value
            best_weight = weight
            best_picks = combo
    return MckpSolution(best_picks, max(best_value, 0.0), best_weight)
