"""The GSO control algorithm — the paper's core contribution (Sec. 4.1).

Public API re-exports; see the submodules for the algorithm internals:

* :mod:`repro.core.types` — streams, resolutions, QoE weights;
* :mod:`repro.core.ladder` — bitrate-ladder construction;
* :mod:`repro.core.constraints` — the :class:`Problem` model;
* :mod:`repro.core.solver` — the Knapsack-Merge-Reduction loop;
* :mod:`repro.core.bruteforce` — exact comparators;
* :mod:`repro.core.priority`, :mod:`repro.core.virtual`,
  :mod:`repro.core.hysteresis` — the Sec. 4.4 / Sec. 7 extensions.
"""

from .constraints import Bandwidth, Problem, Subscription
from .engine import (
    EngineStats,
    MckpInstanceCache,
    default_mckp_cache,
    instance_key,
)
from .explain import ExplainedSolve, explain_solve
from .hysteresis import UpgradeDamper
from .ladder import coarse_ladder, make_ladder, paper_ladder, qoe_utility, scale_qoe
from .mckp import (
    KERNELS,
    MckpSolution,
    default_kernel,
    kernel_stats,
    solve_mckp_dp,
    solve_mckp_dp_batch,
    solve_mckp_dp_mandatory,
    solve_mckp_exhaustive,
)
from .priority import PriorityPolicy, verify_small_stream_protection
from .solution import PolicyEntry, Solution
from .solver import GsoSolver, SolveStats, SolverConfig, solve
from .types import (
    PAPER_RESOLUTIONS,
    ClientId,
    Resolution,
    Role,
    StreamClass,
    StreamKey,
    StreamSpec,
)
from .virtual import DualSubscription, ProblemBuilder, screen_id, virtual_id

__all__ = [
    "Bandwidth",
    "ClientId",
    "DualSubscription",
    "EngineStats",
    "GsoSolver",
    "KERNELS",
    "MckpInstanceCache",
    "MckpSolution",
    "PAPER_RESOLUTIONS",
    "PolicyEntry",
    "PriorityPolicy",
    "Problem",
    "ProblemBuilder",
    "Resolution",
    "Role",
    "Solution",
    "SolveStats",
    "SolverConfig",
    "StreamClass",
    "StreamKey",
    "StreamSpec",
    "Subscription",
    "UpgradeDamper",
    "ExplainedSolve",
    "explain_solve",
    "coarse_ladder",
    "default_kernel",
    "default_mckp_cache",
    "instance_key",
    "kernel_stats",
    "make_ladder",
    "paper_ladder",
    "qoe_utility",
    "scale_qoe",
    "screen_id",
    "solve",
    "solve_mckp_dp",
    "solve_mckp_dp_batch",
    "solve_mckp_dp_mandatory",
    "solve_mckp_exhaustive",
    "verify_small_stream_protection",
    "virtual_id",
]
