"""Step 1 (Knapsack): downlink + subscription constraints (Sec. 4.1.1).

For each subscriber ``i'`` independently, choose at most one stream from each
followed publisher's edge-feasible set ``S_ii'`` so that total QoE utility is
maximized under the downlink budget ``B_d_i'`` — Eq. 1-4.  The per-subscriber
problems are independent multi-choice knapsacks, solved by pseudo-polynomial
dynamic programming.

The output is the *request* set ``D_i'`` of Eq. 6: which (publisher, stream)
pairs each subscriber asks for.  Whether those requests are honoured at the
requested bitrate is decided by Steps 2-3.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .constraints import Problem, Subscription
from .mckp import Item, MckpSolution, solve_mckp_dp, solve_mckp_exhaustive
from .types import ClientId, StreamSpec

#: Step-1 output: per subscriber, per followed publisher, the requested stream.
Requests = Dict[ClientId, Dict[ClientId, StreamSpec]]

#: Incumbent assignments: (subscriber, literal publisher) -> the resolution
#: currently being received.  Items at the incumbent resolution get a small
#: QoE bonus so noise-level input changes do not flip assignments (stream
#: switches cost keyframes and visible quality churn); genuinely better
#: assignments still win.
Incumbent = Dict[Tuple[ClientId, ClientId], "object"]

#: Signature shared by the DP and exhaustive per-subscriber solvers.
MckpSolver = Callable[[Sequence[Sequence[Item]], int], MckpSolution]


def solve_subscriber(
    problem: Problem,
    subscriber: ClientId,
    feasible: Optional[Mapping[ClientId, Sequence[StreamSpec]]] = None,
    granularity: int = 1,
    exhaustive: bool = False,
    incumbent: Optional[Incumbent] = None,
    stickiness: float = 0.0,
) -> Dict[ClientId, StreamSpec]:
    """Solve Eq. 1-4 for one subscriber.

    Args:
        problem: the orchestration problem.
        subscriber: the subscriber ``i'`` to solve for.
        feasible: optional per-publisher restriction of the feasible sets
            (Step 3 shrinks them between iterations).
        granularity: DP capacity grid step in kbps.
        exhaustive: solve by exact enumeration instead of DP (brute-force
            baseline; exponential).
        incumbent: current (subscriber, publisher) -> resolution
            assignments; used with ``stickiness``.
        stickiness: relative QoE bonus applied to items whose resolution
            matches the incumbent assignment of their edge (switch
            damping; 0 disables).

    Returns:
        The requested streams ``D_i'`` as a publisher -> stream mapping.
        Publishers whose class was skipped are absent.
    """
    edges = problem.followed_by(subscriber)
    if not edges:
        return {}
    # Deterministic class order that also encodes the tie-break the paper's
    # Table 1 exhibits: when two assignments have equal total QoE, the
    # subscription edge with the higher resolution cap (e.g. the 720p
    # speaker tile vs. a 360p thumbnail) receives the larger stream.  The DP
    # keeps the first-found optimum per class scanning items by descending
    # bitrate, and later classes win ties during backtracking — so sorting
    # edges by ascending cap gives high-cap edges the tie preference.
    edges = sorted(edges, key=lambda e: (e.max_resolution, e.publisher))
    classes: List[List[Item]] = []
    class_streams: List[List[StreamSpec]] = []
    class_pubs: List[ClientId] = []
    for edge in edges:
        streams = problem.feasible_for_edge(edge, restricted=feasible)
        if not streams:
            continue
        held = (
            incumbent.get((subscriber, edge.publisher))
            if incumbent is not None
            else None
        )
        classes.append(
            [
                (
                    s.bitrate_kbps,
                    s.qoe * (1.0 + stickiness)
                    if held is not None and s.resolution == held
                    else s.qoe,
                )
                for s in streams
            ]
        )
        class_streams.append(streams)
        class_pubs.append(edge.publisher)
    if not classes:
        return {}
    capacity = problem.downlink_budget(subscriber)
    if exhaustive:
        result = solve_mckp_exhaustive(classes, capacity)
    else:
        result = solve_mckp_dp(classes, capacity, granularity=granularity)
    requests: Dict[ClientId, StreamSpec] = {}
    for pub, streams, pick in zip(class_pubs, class_streams, result.picks):
        if pick is not None:
            requests[pub] = streams[pick]
    return requests


def knapsack_step(
    problem: Problem,
    feasible: Optional[Mapping[ClientId, Sequence[StreamSpec]]] = None,
    granularity: int = 1,
    exhaustive: bool = False,
    incumbent: Optional[Incumbent] = None,
    stickiness: float = 0.0,
) -> Requests:
    """Run Step 1 for every subscriber (the |I| independent knapsacks).

    Returns the full request map ``{subscriber: D_i'}``.  Subscribers with no
    fulfillable request map to an empty dict.
    """
    return {
        sub: solve_subscriber(
            problem,
            sub,
            feasible=feasible,
            granularity=granularity,
            exhaustive=exhaustive,
            incumbent=incumbent,
            stickiness=stickiness,
        )
        for sub in problem.subscribers
    }
