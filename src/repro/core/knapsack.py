"""Step 1 (Knapsack): downlink + subscription constraints (Sec. 4.1.1).

For each subscriber ``i'`` independently, choose at most one stream from each
followed publisher's edge-feasible set ``S_ii'`` so that total QoE utility is
maximized under the downlink budget ``B_d_i'`` — Eq. 1-4.  The per-subscriber
problems are independent multi-choice knapsacks, solved by pseudo-polynomial
dynamic programming.

The output is the *request* set ``D_i'`` of Eq. 6: which (publisher, stream)
pairs each subscriber asks for.  Whether those requests are honoured at the
requested bitrate is decided by Steps 2-3.

Two execution paths produce byte-identical requests:

* the **direct path** (:func:`solve_subscriber` per subscriber) runs one DP
  per subscriber — the reference the differential tests compare against;
* the **memoized path** (``dedup=True``) canonicalizes each subscriber's
  MCKP instance (:func:`repro.core.engine.instance_key`), solves each
  distinct instance once per step, optionally consults the process-wide
  :class:`~repro.core.engine.MckpInstanceCache`, and fans the picks out to
  every subscriber sharing the instance.  In homogeneous meetings (Fig. 6c
  gallery view) hundreds of subscribers collapse onto a handful of DPs.
  The instances that survive both layers (the step's cache misses — the
  dirty subscribers of one reduction with genuinely new instances) are
  solved in **one batched kernel call** (:func:`solve_mckp_dp_batch`)
  over a common capacity grid.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs import names as obs_names
from ..obs.registry import get_registry
from .constraints import Problem, Subscription
from .engine import EngineStats, InstanceKey, MckpInstanceCache, instance_key
from .mckp import (
    Item,
    MckpSolution,
    solve_mckp_dp,
    solve_mckp_dp_batch,
    solve_mckp_exhaustive,
)
from .types import ClientId, Resolution, StreamSpec

#: Step-1 output: per subscriber, per followed publisher, the requested stream.
Requests = Dict[ClientId, Dict[ClientId, StreamSpec]]

#: Incumbent assignments: (subscriber, literal publisher) -> the resolution
#: currently being received.  Items at the incumbent resolution get a small
#: QoE bonus so noise-level input changes do not flip assignments (stream
#: switches cost keyframes and visible quality churn); genuinely better
#: assignments still win.
Incumbent = Dict[Tuple[ClientId, ClientId], Resolution]

#: One subscriber's MCKP instance, ready to solve or fingerprint:
#: ``(classes, class_streams, class_pubs, capacity)``.  Classes and stream
#: tuples are positionally aligned; picks index into both.
_Instance = Tuple[
    Tuple[Tuple[Item, ...], ...],
    List[Tuple[StreamSpec, ...]],
    List[ClientId],
    int,
]

#: Per-step memo of edge classes: (canonical publisher, resolution cap) ->
#: (items, streams).  Within one knapsack step the feasible sets are fixed,
#: so every subscriber sharing an edge shape shares the built class.
_EdgeClasses = Dict[
    Tuple[ClientId, Resolution],
    Tuple[Tuple[Item, ...], Tuple[StreamSpec, ...]],
]


def _edge_class(
    problem: Problem,
    edge: Subscription,
    feasible: Optional[Mapping[ClientId, Sequence[StreamSpec]]],
    edge_cache: Optional[_EdgeClasses],
) -> Tuple[Tuple[Item, ...], Tuple[StreamSpec, ...]]:
    """The (items, streams) class of one edge, shared across subscribers.

    The edge-feasible set ``S_ii'`` depends only on the canonical
    publisher's current feasible streams and the edge's resolution cap, so
    within one step every edge with the same (publisher, cap) pair yields
    the same class — gallery-view meetings build each class once instead
    of once per subscriber.
    """
    key = (problem.canonical(edge.publisher), edge.max_resolution)
    cached = edge_cache.get(key) if edge_cache is not None else None
    if cached is None:
        streams = tuple(problem.feasible_for_edge(edge, restricted=feasible))
        items = tuple((s.bitrate_kbps, s.qoe) for s in streams)
        cached = (items, streams)
        if edge_cache is not None:
            edge_cache[key] = cached
    return cached


def _subscriber_instance(
    problem: Problem,
    subscriber: ClientId,
    feasible: Optional[Mapping[ClientId, Sequence[StreamSpec]]],
    incumbent: Optional[Incumbent],
    stickiness: float,
    edge_cache: Optional[_EdgeClasses] = None,
) -> Optional[_Instance]:
    """Build one subscriber's MCKP instance (Eq. 1-4), or ``None`` when the
    subscriber has no fulfillable class."""
    edges = problem.ordered_followed_by(subscriber)
    if not edges:
        return None
    classes: List[Tuple[Item, ...]] = []
    class_streams: List[Tuple[StreamSpec, ...]] = []
    class_pubs: List[ClientId] = []
    for edge in edges:
        held = (
            incumbent.get((subscriber, edge.publisher))
            if incumbent is not None
            else None
        )
        if held is None:
            items, streams = _edge_class(problem, edge, feasible, edge_cache)
        else:
            # Stickiness personalizes the class values, so edges with an
            # incumbent bypass the shared per-edge memo.
            streams = tuple(
                problem.feasible_for_edge(edge, restricted=feasible)
            )
            items = tuple(
                (
                    s.bitrate_kbps,
                    s.qoe * (1.0 + stickiness)
                    if s.resolution == held
                    else s.qoe,
                )
                for s in streams
            )
        if not streams:
            continue
        classes.append(items)
        class_streams.append(streams)
        class_pubs.append(edge.publisher)
    if not classes:
        return None
    return (
        tuple(classes),
        class_streams,
        class_pubs,
        problem.downlink_budget(subscriber),
    )


def _fan_out(
    instance: _Instance, picks: Sequence[Optional[int]]
) -> Dict[ClientId, StreamSpec]:
    """Map per-class picks back to this subscriber's requested streams."""
    _, class_streams, class_pubs, _ = instance
    return {
        pub: streams[pick]
        for pub, streams, pick in zip(class_pubs, class_streams, picks)
        if pick is not None
    }


def solve_subscriber(
    problem: Problem,
    subscriber: ClientId,
    feasible: Optional[Mapping[ClientId, Sequence[StreamSpec]]] = None,
    granularity: int = 1,
    exhaustive: bool = False,
    incumbent: Optional[Incumbent] = None,
    stickiness: float = 0.0,
    kernel: Optional[str] = None,
) -> Dict[ClientId, StreamSpec]:
    """Solve Eq. 1-4 for one subscriber.

    Args:
        problem: the orchestration problem.
        subscriber: the subscriber ``i'`` to solve for.
        feasible: optional per-publisher restriction of the feasible sets
            (Step 3 shrinks them between iterations).
        granularity: DP capacity grid step in kbps.
        exhaustive: solve by exact enumeration instead of DP (brute-force
            baseline; exponential).
        incumbent: current (subscriber, publisher) -> resolution
            assignments; used with ``stickiness``.
        stickiness: relative QoE bonus applied to items whose resolution
            matches the incumbent assignment of their edge (switch
            damping; 0 disables).
        kernel: DP execution kernel (see :func:`repro.core.mckp.KERNELS`);
            ``None`` uses the process default.

    Returns:
        The requested streams ``D_i'`` as a publisher -> stream mapping.
        Publishers whose class was skipped are absent.
    """
    instance = _subscriber_instance(
        problem, subscriber, feasible, incumbent, stickiness
    )
    if instance is None:
        return {}
    classes, _, _, capacity = instance
    if exhaustive:
        result = solve_mckp_exhaustive(classes, capacity)
    else:
        result = solve_mckp_dp(
            classes, capacity, granularity=granularity, kernel=kernel
        )
    return _fan_out(instance, result.picks)


def knapsack_step(
    problem: Problem,
    feasible: Optional[Mapping[ClientId, Sequence[StreamSpec]]] = None,
    granularity: int = 1,
    exhaustive: bool = False,
    incumbent: Optional[Incumbent] = None,
    stickiness: float = 0.0,
    subscribers: Optional[Sequence[ClientId]] = None,
    dedup: bool = False,
    cache: Optional[MckpInstanceCache] = None,
    stats: Optional[EngineStats] = None,
    kernel: Optional[str] = None,
) -> Requests:
    """Run Step 1 for every subscriber (the |I| independent knapsacks).

    Args:
        subscribers: restrict the step to these subscribers (the solver's
            dirty set); ``None`` solves all of ``problem.subscribers``.
        dedup: solve each distinct MCKP instance once per step and fan the
            result out (the memoized path; requires the DP solver).
        cache: optional process-wide instance cache consulted before the
            DP on the memoized path.
        stats: optional per-solve accounting filled by the memoized path.
        kernel: DP execution kernel (see :func:`repro.core.mckp.KERNELS`);
            ``None`` uses the process default.

    Returns the request map ``{subscriber: D_i'}`` for the selected
    subscribers.  Subscribers with no fulfillable request map to an empty
    dict.  All paths return byte-identical requests for identical inputs.
    """
    subs = problem.subscribers if subscribers is None else list(subscribers)
    if exhaustive or (not dedup and cache is None):
        return {
            sub: solve_subscriber(
                problem,
                sub,
                feasible=feasible,
                granularity=granularity,
                exhaustive=exhaustive,
                incumbent=incumbent,
                stickiness=stickiness,
                kernel=kernel,
            )
            for sub in subs
        }

    # The memoized path runs in three passes so the step's cache misses
    # can share one batched kernel call:
    #   1. classify every subscriber's instance (step memo / cache / miss),
    #   2. batch-solve the misses on a common capacity grid,
    #   3. fan results out in the original subscriber order (the request
    #      map's insertion order is part of the byte-identity contract).
    edge_cache: _EdgeClasses = {}
    step_memo: Dict[InstanceKey, Optional[MckpSolution]] = {}
    #: per sub: (instance, key) — or None when the sub has no instance.
    plan: List[Optional[Tuple[_Instance, InstanceKey]]] = []
    pending: List[Tuple[InstanceKey, _Instance]] = []  # misses, first-seen
    deduped = hits = misses = 0
    for sub in subs:
        instance = _subscriber_instance(
            problem, sub, feasible, incumbent, stickiness, edge_cache
        )
        if instance is None:
            plan.append(None)
            continue
        classes, _, _, capacity = instance
        key = instance_key(classes, capacity, granularity)
        plan.append((instance, key))
        if key in step_memo:
            deduped += 1  # answered by an earlier sub of this step
            continue
        solution = cache.get(key) if cache is not None else None
        if solution is not None:
            hits += 1
            step_memo[key] = solution
        else:
            misses += 1
            step_memo[key] = None  # placeholder: solved by the batch below
            pending.append((key, instance))

    if pending:
        solutions = solve_mckp_dp_batch(
            [(inst[0], inst[3]) for _, inst in pending],
            granularity=granularity,
            kernel=kernel,
        )
        for (key, _), solution in zip(pending, solutions):
            step_memo[key] = solution
            if cache is not None:
                cache.put(key, solution)

    requests: Requests = {}
    for sub, entry in zip(subs, plan):
        if entry is None:
            requests[sub] = {}
            continue
        instance, key = entry
        solution = step_memo[key]
        assert solution is not None  # every pending key was batch-solved
        requests[sub] = _fan_out(instance, solution.picks)

    if stats is not None:
        stats.step1_solved += len(subs)
        stats.deduped += deduped
        stats.cache_hits += hits
        stats.cache_misses += misses
        stats.batched_solves += len(pending)
        stats.batches += 1 if pending else 0
    if deduped:
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.MCKP_INSTANCES_DEDUPED).inc(deduped)
    return requests
