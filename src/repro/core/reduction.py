"""Step 3 (Reduction): uplink constraints (Sec. 4.1.3).

After merging, each publisher entity holds a potential policy set ``P_i``
that respects downlink, subscription and codec constraints — but possibly
not the uplink budget.  Uplink budgets belong to *physical clients*: a
client that publishes both a camera and a screen-share source pays for both
from one uplink, so the check aggregates the policies of all entities an
owner has.  Three outcomes per owner:

* **Accepted** (Eq. 14): total policy bitrate fits the uplink — keep as-is.
* **Fixable** (Eq. 15-17): the total exceeds the uplink, but replacing
  entries with *lower bitrates of the same resolution* can fit.  The paper
  notes this "turns out to be a knapsack problem with a small number of
  feasible combinations"; we solve it optimally with the mandatory-pick MCKP
  (every entry must survive, only its bitrate may drop).
* **Unfixable** (Eq. 18-20): even the per-resolution minimum bitrates exceed
  the uplink.  The highest resolution among the owner's policy entries is
  deleted from the contributing entity's feasible set and the whole
  algorithm restarts from Step 1.  Only one publisher is reduced per
  iteration, as the paper prescribes.

The fixability test (Eq. 17) is concretely: for each policy resolution,
substitute the *cheapest* same-resolution rung from the feasible set; if
even that floor assignment exceeds the uplink budget, no bitrate shuffle
can help and a deletion is forced.  Between the floor and the merged
bitrates, the optimal substitution (Eq. 16) maximizes retained QoE — the
mandatory-pick MCKP below.

Termination: every reduction permanently removes one (publisher entity,
resolution) pair from a finite feasible set, so the KMR loop runs at most
``sum_i |resolutions_i|`` iterations (the bound ``_iteration_bound`` in
:mod:`repro.core.solver` enforces) — this is the paper's Sec. 4.1
convergence argument.  Deletions are observable three ways: the
``repro_kmr_reductions_total`` counter, the per-iteration ``deletion``
field of the solver trace, and ``Solution.reduced`` — see
``docs/OBSERVABILITY.md``.  The step's wall clock lands under the
``kmr.reduction`` span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .constraints import Problem
from .merge import Policies
from .mckp import Item, solve_mckp_dp_mandatory
from .solution import PolicyEntry
from .types import ClientId, Resolution, StreamSpec, streams_at_resolution


@dataclass(frozen=True)
class ReductionOutcome:
    """Result of Step 3 over all publishers.

    Exactly one of the two fields is set:

    Attributes:
        policies: the final, uplink-feasible policies — the algorithm
            terminates with these.
        reduce: a ``(publisher_entity, resolution)`` pair to delete from the
            feasible set before restarting from Step 1.
    """

    policies: Optional[Policies] = None
    reduce: Optional[Tuple[ClientId, Resolution]] = None

    @property
    def solved(self) -> bool:
        """True when Step 3 accepted/fixed every policy."""
        return self.policies is not None


#: One owner's policy entries, tagged by their publisher entity:
#: list of (entity, resolution, entry).
_OwnerEntries = List[Tuple[ClientId, Resolution, PolicyEntry]]


def check_uplink(entries: _OwnerEntries, budget_kbps: int) -> bool:
    """Eq. 14: does the owner's combined potential policy fit its uplink?"""
    return sum(e.bitrate_kbps for _, _, e in entries) <= budget_kbps


def is_fixable(
    entries: _OwnerEntries,
    feasible: Mapping[ClientId, Sequence[StreamSpec]],
    budget_kbps: int,
) -> bool:
    """Eq. 17: can lowering bitrates (same resolutions kept) fit the uplink?

    True iff the sum over policy entries of the minimum feasible bitrate at
    each entry's resolution (within its entity's feasible set) fits.
    """
    total_min = 0
    for entity, res, _ in entries:
        candidates = streams_at_resolution(feasible.get(entity, []), res)
        if not candidates:
            return False
        total_min += min(s.bitrate_kbps for s in candidates)
    return total_min <= budget_kbps


def fix_owner(
    entries: _OwnerEntries,
    feasible: Mapping[ClientId, Sequence[StreamSpec]],
    budget_kbps: int,
    granularity: int = 1,
    kernel: Optional[str] = None,
) -> Optional[List[Tuple[ClientId, Resolution, PolicyEntry]]]:
    """Apply the Eq. 16 fix: lower entry bitrates until the uplink fits.

    Every entry keeps its entity, resolution and audience; only the stream
    bitrate may be replaced by a lower feasible bitrate at the same
    resolution.  Among feasible replacements the QoE-maximal combination is
    chosen.

    Args:
        kernel: DP execution kernel (see :func:`repro.core.mckp.KERNELS`);
            ``None`` uses the process default.

    Returns:
        The fixed entries, or ``None`` if no feasible replacement exists
        (Eq. 17 violated) — the caller must then reduce.
    """
    classes: List[List[Item]] = []
    class_candidates: List[List[StreamSpec]] = []
    for entity, res, entry in entries:
        candidates = [
            s
            for s in streams_at_resolution(feasible.get(entity, []), res)
            if s.bitrate_kbps <= entry.bitrate_kbps
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda s: s.bitrate_kbps)
        classes.append([(s.bitrate_kbps, s.qoe) for s in candidates])
        class_candidates.append(candidates)
    result = solve_mckp_dp_mandatory(
        classes, budget_kbps, granularity=granularity, kernel=kernel
    )
    if result is None:
        return None
    fixed: List[Tuple[ClientId, Resolution, PolicyEntry]] = []
    for (entity, res, entry), candidates, pick in zip(
        entries, class_candidates, result.picks
    ):
        fixed.append(
            (entity, res, PolicyEntry(stream=candidates[pick], audience=entry.audience))
        )
    return fixed


def highest_policy_resolution(entries: _OwnerEntries) -> Tuple[ClientId, Resolution]:
    """Eq. 18: the (entity, resolution) pair ``R~_i`` to delete when unfixable."""
    entity, res, _ = max(entries, key=lambda t: t[1])
    return entity, res


def reduction_step(
    problem: Problem,
    policies: Policies,
    feasible: Mapping[ClientId, Sequence[StreamSpec]],
    granularity: int = 1,
    kernel: Optional[str] = None,
) -> ReductionOutcome:
    """Run Step 3 over all publishing owners.

    Owners are visited in sorted order for determinism.  The first owner
    found unfixable triggers a reduction (one per iteration); otherwise all
    policies are accepted or fixed and the outcome carries the final policy
    map (keyed by publisher entity, as before).
    """
    # Group policy entries by owning client.
    per_owner: Dict[ClientId, _OwnerEntries] = {}
    for pub in sorted(policies):
        owner = problem.owner(pub)
        for res in sorted(policies[pub], reverse=True):
            per_owner.setdefault(owner, []).append((pub, res, policies[pub][res]))

    final: Policies = {}
    for owner in sorted(per_owner):
        entries = per_owner[owner]
        if not entries:
            continue
        budget = problem.uplink_budget(owner)
        if check_uplink(entries, budget):
            accepted = entries
        else:
            fixed = fix_owner(
                entries, feasible, budget, granularity=granularity, kernel=kernel
            )
            if fixed is None:
                return ReductionOutcome(reduce=highest_policy_resolution(entries))
            accepted = fixed
        for entity, res, entry in accepted:
            final.setdefault(entity, {})[res] = entry
    return ReductionOutcome(policies=final)
