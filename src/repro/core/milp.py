"""Exact joint optimization via mixed-integer linear programming.

The KMR algorithm (Sec. 4.1) is a fast decomposition heuristic; the paper
benchmarks it against brute-force enumeration, which caps out at toy
sizes.  This module formulates the *entire* joint problem — downlink,
codec, subscription and uplink constraints simultaneously — as a 0/1 ILP
and solves it exactly with ``scipy.optimize.milp`` (HiGHS), giving a true
global optimum to measure the KMR optimality gap on mid-sized meetings.

Variables:

* ``x[e, s]`` — subscription edge ``e`` receives stream ``s`` (one per
  edge-feasible stream);
* ``y[p, s]`` — publisher entity ``p`` encodes stream ``s``.

Constraints:

* at most one ``x`` per edge (zero-or-one subscription);
* per subscriber, ``sum bitrate * x <= downlink`` budget;
* per publisher and resolution, ``sum y <= 1`` (codec capability);
* ``x[e, s] <= y[canonical(e), s]`` (can only receive what is encoded);
* per owner, ``sum bitrate * y <= uplink`` budget (camera + screen share
  drawing on one client uplink).

Objective: maximize total received QoE, minus an epsilon per active
encoding so unneeded streams are switched off (the Fig. 3a behaviour).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from .constraints import Problem
from .solution import PolicyEntry, Solution
from .types import ClientId, Resolution, StreamSpec

#: Per-encoding activation penalty (must stay far below any QoE weight).
_ACTIVATION_EPS = 1e-3


class MilpInfeasibleError(RuntimeError):
    """The MILP solver failed (should not happen: x = y = 0 is feasible)."""


def solve_joint_milp(problem: Problem, time_limit_s: float = 30.0) -> Solution:
    """Solve the full orchestration problem to proven optimality.

    Args:
        problem: the orchestration instance (aliases/owners supported).
        time_limit_s: HiGHS time limit; on expiry the incumbent is used.

    Returns:
        A validated-structure :class:`Solution` (call ``validate`` to
        assert it).  The objective equals the maximum achievable total
        received QoE.
    """
    edges = sorted(
        problem.subscriptions, key=lambda e: (e.subscriber, e.publisher)
    )
    # -- variable layout ------------------------------------------------ #
    x_index: Dict[Tuple[int, StreamSpec], int] = {}
    x_meta: List[Tuple[int, StreamSpec]] = []
    for ei, edge in enumerate(edges):
        for stream in problem.feasible_for_edge(edge):
            x_index[(ei, stream)] = len(x_meta)
            x_meta.append((ei, stream))
    y_index: Dict[Tuple[ClientId, StreamSpec], int] = {}
    y_meta: List[Tuple[ClientId, StreamSpec]] = []
    for pub in problem.publishers:
        for stream in problem.feasible_streams[pub]:
            y_index[(pub, stream)] = len(y_meta)
            y_meta.append((pub, stream))
    n_x, n_y = len(x_meta), len(y_meta)
    n = n_x + n_y
    if n == 0:
        return Solution(policies={}, assignments={}, iterations=1)

    objective = np.zeros(n)
    for (ei, stream), col in x_index.items():
        objective[col] = -stream.qoe  # milp minimizes
    for (pub, stream), col in y_index.items():
        objective[n_x + col] = _ACTIVATION_EPS

    rows: List[Tuple[Dict[int, float], float]] = []  # (coeffs, upper bound)

    # At most one stream per edge.
    for ei, edge in enumerate(edges):
        coeffs = {
            x_index[(ei, s)]: 1.0
            for s in problem.feasible_for_edge(edge)
        }
        if coeffs:
            rows.append((coeffs, 1.0))
    # Downlink budgets.
    for sub in problem.subscribers:
        coeffs: Dict[int, float] = {}
        for ei, edge in enumerate(edges):
            if edge.subscriber != sub:
                continue
            for s in problem.feasible_for_edge(edge):
                coeffs[x_index[(ei, s)]] = float(s.bitrate_kbps)
        if coeffs:
            rows.append((coeffs, float(problem.downlink_budget(sub))))
    # Codec capability: one encoding per (publisher, resolution).
    for pub in problem.publishers:
        by_res: Dict[Resolution, List[int]] = {}
        for s in problem.feasible_streams[pub]:
            by_res.setdefault(s.resolution, []).append(
                n_x + y_index[(pub, s)]
            )
        for cols in by_res.values():
            rows.append(({c: 1.0 for c in cols}, 1.0))
    # Coupling x <= y.
    for (ei, stream), col in x_index.items():
        pub = problem.canonical(edges[ei].publisher)
        y_col = n_x + y_index[(pub, stream)]
        rows.append(({col: 1.0, y_col: -1.0}, 0.0))
    # Uplink budgets per owner.
    owners = sorted({problem.owner(p) for p in problem.publishers})
    for owner in owners:
        coeffs = {}
        for pub in problem.publishers:
            if problem.owner(pub) != owner:
                continue
            for s in problem.feasible_streams[pub]:
                coeffs[n_x + y_index[(pub, s)]] = float(s.bitrate_kbps)
        if coeffs:
            rows.append((coeffs, float(problem.uplink_budget(owner))))

    matrix = lil_matrix((len(rows), n))
    upper = np.zeros(len(rows))
    for ri, (coeffs, ub) in enumerate(rows):
        for col, value in coeffs.items():
            matrix[ri, col] = value
        upper[ri] = ub
    constraints = LinearConstraint(
        matrix.tocsr(), -np.inf * np.ones(len(rows)), upper
    )
    result = milp(
        c=objective,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
        options={"time_limit": time_limit_s},
    )
    if result.x is None:
        raise MilpInfeasibleError(result.message)
    values = np.round(result.x).astype(int)

    # -- reassemble a Solution ------------------------------------------ #
    assignments: Dict[ClientId, Dict[ClientId, StreamSpec]] = {}
    audiences: Dict[Tuple[ClientId, Resolution], set] = {}
    chosen: Dict[Tuple[ClientId, Resolution], StreamSpec] = {}
    for (ei, stream), col in x_index.items():
        if values[col] != 1:
            continue
        edge = edges[ei]
        canonical = problem.canonical(edge.publisher)
        assignments.setdefault(edge.subscriber, {})[edge.publisher] = stream
        key = (canonical, stream.resolution)
        chosen[key] = stream
        audiences.setdefault(key, set()).add(edge.subscriber)
    policies: Dict[ClientId, Dict[Resolution, PolicyEntry]] = {}
    for (pub, res), stream in chosen.items():
        policies.setdefault(pub, {})[res] = PolicyEntry(
            stream=stream, audience=frozenset(audiences[(pub, res)])
        )
    return Solution(policies=policies, assignments=assignments, iterations=1)
