"""Constraint model for the global stream orchestration problem.

Sec. 4.1 defines three constraint families the controller must satisfy
simultaneously:

* **network bandwidth** — per client, the sum of published stream bitrates
  must not exceed the uplink ``B_u_i``; the sum of subscribed bitrates must
  not exceed the downlink ``B_d_i``;
* **codec capability** — a publisher's concurrently sent streams must have
  pairwise distinct resolutions (``Res_i(s1) != Res_i(s2)``);
* **subscription** — subscriber ``i'`` follows publishers ``N_i'`` with a
  per-edge maximum resolution ``R_ii'``, and takes at most one stream per
  followed publisher.

Two indirections support Sec. 4.4's advanced features:

* **aliases** — a *virtual publisher* ``X'`` is a separate publisher during
  Step 1 (so a subscriber may take a second stream from the same source,
  e.g. speaker-first thumbnail + close-up) but is merged back into ``X`` at
  the beginning of Step 2.  ``aliases[X'] == X``.
* **owners** — several publisher entities can belong to one physical client
  (a camera source and a screen-share source have different SSRCs and are
  never merged, but both draw on the same client uplink).
  ``owners[X_screen] == X``.

This module bundles those inputs into a single :class:`Problem` instance
consumed by the solver, plus validation helpers used by both the tests and
the brute-force oracle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .types import (
    ClientId,
    Resolution,
    StreamSpec,
    streams_up_to_resolution,
    validate_feasible_set,
)


@dataclass(frozen=True)
class Bandwidth:
    """Uplink/downlink bandwidth constraints of one client, in kbps.

    ``audio_protection_kbps`` is subtracted from both directions before the
    solver sees them — the Sec. 7 lesson: *"when we obtain a bandwidth
    measurement, we subtract a 'protection' bandwidth from it to further
    avoid video streams eating the audio stream's bandwidth."*
    """

    uplink_kbps: int
    downlink_kbps: int
    audio_protection_kbps: int = 0

    def __post_init__(self) -> None:
        if self.uplink_kbps < 0 or self.downlink_kbps < 0:
            raise ValueError("bandwidths must be non-negative")
        if self.audio_protection_kbps < 0:
            raise ValueError("audio protection must be non-negative")

    @property
    def effective_uplink_kbps(self) -> int:
        """Uplink budget available to video after audio protection."""
        return max(0, self.uplink_kbps - self.audio_protection_kbps)

    @property
    def effective_downlink_kbps(self) -> int:
        """Downlink budget available to video after audio protection."""
        return max(0, self.downlink_kbps - self.audio_protection_kbps)


@dataclass(frozen=True)
class Subscription:
    """One directed subscription edge: ``subscriber`` follows ``publisher``.

    Attributes:
        subscriber: the receiving client (``i'``).
        publisher: the sending entity (``i``) — may be a real publisher, a
            virtual publisher alias, or a secondary source like a screen
            share.
        max_resolution: ``R_ii'``, the maximum resolution the subscriber is
            willing to accept from this publisher (e.g. a thumbnail tile
            asks for 180p, the active-speaker tile for 720p).
    """

    subscriber: ClientId
    publisher: ClientId
    max_resolution: Resolution = Resolution.P720

    def __post_init__(self) -> None:
        if self.subscriber == self.publisher:
            raise ValueError(
                f"client {self.subscriber!r} cannot subscribe to itself"
            )


class Problem:
    """One complete instance of the global orchestration problem.

    Args:
        feasible_streams: per *canonical* publisher entity, the feasible
            stream set ``S_i`` (validated: unique bitrates, QoE monotone
            within a resolution).  Virtual publishers (aliases) must NOT
            appear here — they share their target's set.
        bandwidth: per physical client, the bandwidth constraints.
        subscriptions: the subscription edges.  Duplicate
            (subscriber, publisher) pairs are rejected — multi-stream
            subscription is expressed through aliases (see
            :mod:`repro.core.virtual`).
        aliases: virtual publisher id -> canonical publisher id.  Virtual
            publishers exist only during Step 1; they are merged into their
            canonical target at Step 2.
        owners: publisher entity id -> owning client id, for entities (e.g.
            screen-share sources) that are not clients themselves.  Uplink
            budgets are enforced per owner.  Identity by default.

    Raises:
        ValueError: on dangling references or duplicate edges.
    """

    def __init__(
        self,
        feasible_streams: Mapping[ClientId, Sequence[StreamSpec]],
        bandwidth: Mapping[ClientId, Bandwidth],
        subscriptions: Iterable[Subscription],
        aliases: Optional[Mapping[ClientId, ClientId]] = None,
        owners: Optional[Mapping[ClientId, ClientId]] = None,
    ) -> None:
        self.feasible_streams: Dict[ClientId, List[StreamSpec]] = {
            pub: validate_feasible_set(streams)
            for pub, streams in feasible_streams.items()
        }
        self.bandwidth: Dict[ClientId, Bandwidth] = dict(bandwidth)
        self.subscriptions: List[Subscription] = list(subscriptions)
        self.aliases: Dict[ClientId, ClientId] = dict(aliases or {})
        self._owners: Dict[ClientId, ClientId] = dict(owners or {})

        for virtual, target in self.aliases.items():
            if virtual in self.feasible_streams:
                raise ValueError(
                    f"alias {virtual!r} must not have its own feasible set"
                )
            if target not in self.feasible_streams:
                raise ValueError(
                    f"alias {virtual!r} targets unknown publisher {target!r}"
                )
        for entity, owner in self._owners.items():
            if owner not in self.bandwidth:
                raise ValueError(
                    f"entity {entity!r} owned by {owner!r}, which has no "
                    f"bandwidth entry"
                )

        seen_edges: Set[Tuple[ClientId, ClientId]] = set()
        for edge in self.subscriptions:
            key = (edge.subscriber, edge.publisher)
            if key in seen_edges:
                raise ValueError(
                    f"duplicate subscription {edge.subscriber!r} -> "
                    f"{edge.publisher!r}; use virtual publishers for "
                    f"multi-stream subscription"
                )
            seen_edges.add(key)
            if self.canonical(edge.publisher) not in self.feasible_streams:
                raise ValueError(
                    f"subscription to unknown publisher {edge.publisher!r}"
                )
            if edge.subscriber not in self.bandwidth:
                raise ValueError(
                    f"subscriber {edge.subscriber!r} has no bandwidth entry"
                )
            if edge.subscriber == self.canonical(edge.publisher):
                raise ValueError(
                    f"{edge.subscriber!r} subscribes to its own alias "
                    f"{edge.publisher!r}"
                )
        for pub in self.feasible_streams:
            if self.owner(pub) not in self.bandwidth:
                raise ValueError(f"publisher {pub!r} has no bandwidth entry")

        # N_i' : publishers followed by each subscriber.
        self._followed: Dict[ClientId, List[Subscription]] = {}
        # M_i  : subscribers served by each publisher (canonical keys).
        self._served: Dict[ClientId, List[Subscription]] = {}
        for edge in self.subscriptions:
            self._followed.setdefault(edge.subscriber, []).append(edge)
            self._served.setdefault(self.canonical(edge.publisher), []).append(edge)
        # Lazily filled caches for the solver's hot path: the Step-1 edge
        # order (per subscriber) and the dirty-set reverse index (per
        # canonical publisher).  Both derive purely from the immutable
        # subscription list, so caching them is safe.
        self._ordered_followed: Dict[ClientId, Tuple[Subscription, ...]] = {}
        self._subscribers_of: Dict[ClientId, Tuple[ClientId, ...]] = {}

    # ------------------------------------------------------------------ #
    # Identity resolution
    # ------------------------------------------------------------------ #

    def canonical(self, publisher: ClientId) -> ClientId:
        """Resolve a (possibly virtual) publisher id to its canonical id."""
        return self.aliases.get(publisher, publisher)

    @property
    def owners(self) -> Dict[ClientId, ClientId]:
        """The explicit entity -> owning-client map (copy)."""
        return dict(self._owners)

    def owner(self, publisher: ClientId) -> ClientId:
        """The physical client whose uplink a publisher entity consumes."""
        canonical = self.canonical(publisher)
        return self._owners.get(canonical, canonical)

    def entities_of(self, client: ClientId) -> List[ClientId]:
        """All canonical publisher entities owned by one client, sorted."""
        return sorted(
            pub for pub in self.feasible_streams if self.owner(pub) == client
        )

    # ------------------------------------------------------------------ #
    # Topology accessors
    # ------------------------------------------------------------------ #

    @property
    def clients(self) -> List[ClientId]:
        """All physical clients referenced by the problem (sorted)."""
        ids = set(self.bandwidth)
        for pub in self.feasible_streams:
            ids.add(self.owner(pub))
        for e in self.subscriptions:
            ids.add(e.subscriber)
        return sorted(ids)

    @property
    def publishers(self) -> List[ClientId]:
        """Canonical publisher entities with a non-empty feasible set."""
        return sorted(p for p, s in self.feasible_streams.items() if s)

    @property
    def subscribers(self) -> List[ClientId]:
        """Clients with at least one outgoing subscription, sorted."""
        return sorted(self._followed)

    def followed_by(self, subscriber: ClientId) -> List[Subscription]:
        """Subscription edges out of ``subscriber`` (the set ``N_i'``)."""
        return list(self._followed.get(subscriber, []))

    def served_by(self, publisher: ClientId) -> List[Subscription]:
        """Subscription edges into a canonical publisher (the set ``M_i``)."""
        return list(self._served.get(self.canonical(publisher), []))

    def ordered_followed_by(self, subscriber: ClientId) -> Tuple[Subscription, ...]:
        """``N_i'`` in the solver's deterministic Step-1 class order.

        The order encodes the tie-break the paper's Table 1 exhibits:
        when two assignments have equal total QoE, the subscription edge
        with the higher resolution cap (e.g. the 720p speaker tile vs. a
        360p thumbnail) receives the larger stream.  The DP keeps the
        first-found optimum per class scanning items by descending
        bitrate, and later classes win ties during backtracking — so
        sorting edges by ascending cap gives high-cap edges the tie
        preference.  Computed once per (problem, subscriber) and cached;
        the solver re-reads it every KMR iteration.
        """
        cached = self._ordered_followed.get(subscriber)
        if cached is None:
            cached = tuple(
                sorted(
                    self._followed.get(subscriber, ()),
                    key=lambda e: (e.max_resolution, e.publisher),
                )
            )
            self._ordered_followed[subscriber] = cached
        return cached

    def subscribers_of(self, publisher: ClientId) -> Tuple[ClientId, ...]:
        """Distinct subscribers with an edge into a canonical publisher.

        The dirty-set reverse index of the incremental solver: after a
        Step-3 reduction of ``(publisher, resolution)``, exactly these
        subscribers can see a changed feasible set — every other
        subscriber's Step-1 instance is byte-identical to the previous
        iteration's.  Sorted (the solver's subscriber order) and cached.
        """
        canonical = self.canonical(publisher)
        cached = self._subscribers_of.get(canonical)
        if cached is None:
            cached = tuple(
                sorted({e.subscriber for e in self._served.get(canonical, ())})
            )
            self._subscribers_of[canonical] = cached
        return cached

    def edge(self, subscriber: ClientId, publisher: ClientId) -> Optional[Subscription]:
        """The subscription edge between a pair (literal publisher id)."""
        for e in self._followed.get(subscriber, []):
            if e.publisher == publisher:
                return e
        return None

    def feasible_for_edge(
        self,
        edge: Subscription,
        restricted: Optional[Mapping[ClientId, Sequence[StreamSpec]]] = None,
    ) -> List[StreamSpec]:
        """The per-edge feasible set ``S_ii'`` (resolution-capped ``S_i``).

        Args:
            edge: the subscription edge (publisher may be an alias).
            restricted: optional per-canonical-publisher override of the
                feasible sets (the solver's Step 3 shrinks ``S_i`` between
                iterations and passes the shrunk sets here).
        """
        source = restricted if restricted is not None else self.feasible_streams
        streams = source.get(self.canonical(edge.publisher), [])
        return streams_up_to_resolution(streams, edge.max_resolution)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def downlink_budget(self, client: ClientId) -> int:
        """Video downlink budget in kbps (after audio protection)."""
        return self.bandwidth[client].effective_downlink_kbps

    def uplink_budget(self, client: ClientId) -> int:
        """Video uplink budget of a physical client (after audio protection)."""
        return self.bandwidth[client].effective_uplink_kbps

    # ------------------------------------------------------------------ #
    # Canonical identity
    # ------------------------------------------------------------------ #

    #: Schema tag of :meth:`fingerprint`; bump on any encoding change.
    FINGERPRINT_SCHEMA = "repro.problem_fp/v1"

    def fingerprint(self, granularity_kbps: int = 1) -> str:
        """A canonical, order-independent identity for solver caching.

        Two problems with the same fingerprint are *solver-equivalent*: the
        KMR loop (at the given knapsack granularity) produces the identical
        :class:`~repro.core.solution.Solution` for both.  The encoding is
        independent of the construction order of the stream sets, bandwidth
        map, subscription list, alias map and owner map — fleet workloads
        rebuild structurally identical meetings in arbitrary orders, and
        they must all collide onto one cache entry.

        Budget bucketing is deliberately asymmetric:

        * **downlink** budgets are bucketed to ``granularity_kbps``.  Step
          1's DP only ever sees ``capacity // granularity`` slots (weights
          are rounded *up* onto the grid, so the exact-capacity check can
          never bind) — any two downlinks in the same bucket are provably
          indistinguishable to the solver.
        * **uplink** budgets stay exact.  Step 3's accept test (Eq. 14) and
          fixability test (Eq. 17) compare raw kbps sums against the raw
          budget, so near-miss uplinks in the same coarse bucket can yield
          different reductions and must *not* collide.

        Budgets enter the key *after* audio protection (the solver only
        reads the effective values).  Client ids are part of the identity —
        solutions name clients, so renamed-but-isomorphic problems are not
        equivalent.

        Args:
            granularity_kbps: the knapsack grid step of the solver this key
                is computed for (``SolverConfig.granularity_kbps``).

        Returns:
            ``"<schema>:<sha256 hexdigest>"``.
        """
        if granularity_kbps < 1:
            raise ValueError("granularity_kbps must be >= 1")
        parts: List[str] = [self.FINGERPRINT_SCHEMA, f"g={granularity_kbps}"]
        for pub in sorted(self.feasible_streams):
            ladder = ";".join(
                f"{s.bitrate_kbps},{s.resolution.value},{s.qoe!r}"
                for s in sorted(
                    self.feasible_streams[pub],
                    key=lambda s: (s.bitrate_kbps, s.resolution),
                )
            )
            parts.append(f"S[{pub}]={ladder}")
        for client in sorted(self.bandwidth):
            bw = self.bandwidth[client]
            parts.append(
                f"B[{client}]={bw.effective_uplink_kbps},"
                f"{bw.effective_downlink_kbps // granularity_kbps}"
            )
        for sub, pub, cap in sorted(
            (e.subscriber, e.publisher, e.max_resolution.value)
            for e in self.subscriptions
        ):
            parts.append(f"E[{sub}<-{pub}]={cap}")
        for virtual in sorted(self.aliases):
            parts.append(f"A[{virtual}]={self.aliases[virtual]}")
        for entity in sorted(self._owners):
            parts.append(f"O[{entity}]={self._owners[entity]}")
        digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
        return f"{self.FINGERPRINT_SCHEMA}:{digest}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Problem(clients={len(self.clients)}, "
            f"publishers={len(self.publishers)}, "
            f"edges={len(self.subscriptions)})"
        )
