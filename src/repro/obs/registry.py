"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the shared substrate of the observability layer
(``repro.obs``): every instrumented hot path — the KMR solver, the MCKP
DP, the controller runtime, the feedback executor, the RTP message codecs,
the fleet simulation, the benchmarks — records through one of the three
instrument kinds defined here.

Design constraints, in priority order:

1. **Off-by-default-cheap.**  The module-level registry starts as a
   :class:`NullRegistry` whose instruments are shared singletons with
   no-op methods, so uninstrumented runs pay only an attribute lookup and
   an empty call per site.  Hot loops additionally guard on
   ``registry.enabled`` to skip label formatting entirely.
2. **Zero dependencies.**  Pure stdlib; exports Prometheus text
   exposition format and JSON without any client library.
3. **Deterministic.**  Histograms keep a *bounded reservoir* with
   deterministic stride-doubling eviction (no RNG), so repeated runs of a
   seeded simulation produce identical snapshots.

Label handling follows the Prometheus data model: an instrument is
identified by ``(name, sorted labels)``; the same name with different
label values yields distinct time series.  Metric names must match
``[a-zA-Z_:][a-zA-Z0-9_:]*``; the canonical names used by the repro
instrumentation live in :mod:`repro.obs.names` and are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import re
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Instrument identity: (metric name, sorted (label, value) pairs).
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default bounded-reservoir size for histograms.
DEFAULT_RESERVOIR = 512


def _make_key(name: str, labels: Mapping[str, str]) -> MetricKey:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    items = []
    for k in sorted(labels):
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
        items.append((k, str(labels[k])))
    return name, tuple(items)


def _format_labels(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """A monotonically increasing count (events, messages, iterations)."""

    __slots__ = ("key", "_value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (current satisfaction, queue depth)."""

    __slots__ = ("key", "_value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A distribution with exact count/sum/min/max and a bounded reservoir.

    The reservoir keeps at most ``reservoir_size`` observations.  When it
    fills, the eviction is *deterministic stride doubling*: every other
    retained sample is dropped and the sampling stride doubles, so the
    reservoir always holds an evenly spaced subsample of the observation
    stream.  Percentiles interpolate over the sorted reservoir — exact
    until the reservoir first fills, an even subsample afterwards.
    """

    __slots__ = (
        "key",
        "count",
        "sum",
        "min",
        "max",
        "_reservoir",
        "_capacity",
        "_stride",
        "_next_sample",
    )

    def __init__(self, key: MetricKey, reservoir_size: int = DEFAULT_RESERVOIR) -> None:
        if reservoir_size < 2:
            raise ValueError("reservoir_size must be >= 2")
        self.key = key
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: List[float] = []
        self._capacity = reservoir_size
        self._stride = 1
        self._next_sample = 0  # observation index of the next retained sample

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = self.count
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if index != self._next_sample:
            return
        self._next_sample = index + self._stride
        if len(self._reservoir) >= self._capacity:
            # Halve the reservoir, double the stride: retained samples stay
            # evenly spaced over the whole observation stream.
            self._reservoir = self._reservoir[::2]
            self._stride *= 2
            self._next_sample = index + self._stride
        self._reservoir.append(value)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile ``p`` in [0, 100] of the reservoir.

        Returns ``nan`` when the histogram is empty.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._reservoir:
            return float("nan")
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    @property
    def reservoir(self) -> Tuple[float, ...]:
        """The retained (evenly spaced) observation subsample."""
        return tuple(self._reservoir)


class MetricsRegistry:
    """A live collection of instruments, keyed by (name, labels).

    Instrument accessors are get-or-create and thread-safe; the instruments
    themselves use GIL-atomic updates (single float adds), which is the
    standard in-process trade-off for zero-dependency metrics.
    """

    #: Real registries record; the :class:`NullRegistry` subclass flips this.
    enabled: bool = True

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR) -> None:
        self._lock = threading.Lock()
        self._reservoir_size = reservoir_size
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Instrument accessors
    # ------------------------------------------------------------------ #

    # Accessors take a lock-free fast path for instruments that already
    # exist (dict reads are GIL-atomic); name/label validation and the
    # lock are paid only on first creation, keeping hot loops cheap.

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name{labels}``."""
        key = (name, tuple(sorted(labels.items()))) if labels else (name, ())
        inst = self._counters.get(key)
        if inst is not None:
            return inst
        key = _make_key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(key)
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        key = (name, tuple(sorted(labels.items()))) if labels else (name, ())
        inst = self._gauges.get(key)
        if inst is not None:
            return inst
        key = _make_key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(key)
        return inst

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        key = (name, tuple(sorted(labels.items()))) if labels else (name, ())
        inst = self._histograms.get(key)
        if inst is not None:
            return inst
        key = _make_key(name, labels)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(
                    key, reservoir_size=self._reservoir_size
                )
        return inst

    # ------------------------------------------------------------------ #
    # Snapshot / merge / export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict snapshot of every instrument.

        Keys are rendered as ``name{label="value",...}`` strings;
        histograms expand to count/sum/min/max/mean and the p50/p90/p99
        percentile estimates.
        """
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for c in counters:
            out["counters"][_render_key(c.key)] = c.value
        for g in gauges:
            out["gauges"][_render_key(g.key)] = g.value
        for h in histograms:
            out["histograms"][_render_key(h.key)] = {
                "count": h.count,
                "sum": h.sum,
                "min": h.min if h.count else None,
                "max": h.max if h.count else None,
                "mean": h.mean if h.count else None,
                "p50": h.percentile(50) if h.count else None,
                "p90": h.percentile(90) if h.count else None,
                "p99": h.percentile(99) if h.count else None,
            }
        return out

    def metric_names(self) -> List[str]:
        """Sorted, deduplicated bare metric names currently registered."""
        with self._lock:
            names = {key[0] for key in self._counters}
            names |= {key[0] for key in self._gauges}
            names |= {key[0] for key in self._histograms}
        return sorted(names)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters and histogram count/sum add; gauges take the other's
        value (last-write-wins); histogram reservoirs concatenate and are
        re-bounded.  Used to aggregate per-worker or per-run registries
        into one operator view.
        """
        snap_lock = other._lock
        with snap_lock:
            counters = list(other._counters.values())
            gauges = list(other._gauges.values())
            histograms = list(other._histograms.values())
        for c in counters:
            self.counter(c.key[0], **dict(c.key[1])).inc(c.value)
        for g in gauges:
            self.gauge(g.key[0], **dict(g.key[1])).set(g.value)
        for h in histograms:
            mine = self.histogram(h.key[0], **dict(h.key[1]))
            mine.count += h.count
            mine.sum += h.sum
            if h.count:
                mine.min = min(mine.min, h.min)
                mine.max = max(mine.max, h.max)
            merged = list(mine._reservoir) + list(h._reservoir)
            while len(merged) > mine._capacity:
                merged = merged[::2]
                mine._stride *= 2
            mine._reservoir = merged

    def reset(self) -> None:
        """Drop every instrument (tests and between-run isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def to_prometheus_text(self) -> str:
        """Render the registry in the Prometheus text exposition format.

        Histograms are rendered as the ``_count`` / ``_sum`` summary pair
        plus quantile series (``{quantile="0.5"}`` etc.), i.e. the
        Prometheus *summary* convention, which matches our
        reservoir-percentile model better than fixed buckets.
        """
        lines: List[str] = []
        snap = self.snapshot()
        with self._lock:
            counters = sorted(self._counters.values(), key=lambda i: i.key)
            gauges = sorted(self._gauges.values(), key=lambda i: i.key)
            histograms = sorted(self._histograms.values(), key=lambda i: i.key)
        seen_types: set = set()
        for c in counters:
            name, labels = c.key
            if name not in seen_types:
                lines.append(f"# TYPE {name} counter")
                seen_types.add(name)
            lines.append(f"{name}{_format_labels(labels)} {_num(c.value)}")
        for g in gauges:
            name, labels = g.key
            if name not in seen_types:
                lines.append(f"# TYPE {name} gauge")
                seen_types.add(name)
            lines.append(f"{name}{_format_labels(labels)} {_num(g.value)}")
        for h in histograms:
            name, labels = h.key
            if name not in seen_types:
                lines.append(f"# TYPE {name} summary")
                seen_types.add(name)
            for q in (0.5, 0.9, 0.99):
                value = h.percentile(q * 100) if h.count else float("nan")
                qlabels = tuple(labels) + (("quantile", str(q)),)
                lines.append(f"{name}{_format_labels(qlabels)} {_num(value)}")
            lines.append(f"{name}_sum{_format_labels(labels)} {_num(h.sum)}")
            lines.append(f"{name}_count{_format_labels(labels)} {_num(h.count)}")
        del snap
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Render :meth:`snapshot` as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def _render_key(key: MetricKey) -> str:
    name, labels = key
    return f"{name}{_format_labels(labels)}"


def _num(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 — no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared no-op instruments, nothing recorded.

    All accessors return the same singletons regardless of name/labels, so
    instrumented call sites stay valid while costing only an attribute
    lookup and an empty method call.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        null_key = _make_key("null", {})
        self._null_counter = _NullCounter(null_key)
        self._null_gauge = _NullGauge(null_key)
        self._null_histogram = _NullHistogram(null_key)

    def counter(self, name: str, **labels: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._null_histogram


#: The process-wide registry slot.  Starts disabled.
_REGISTRY: MetricsRegistry = NullRegistry()


def get_registry() -> MetricsRegistry:
    """The currently installed registry (a :class:`NullRegistry` when off)."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide registry; returns it."""
    global _REGISTRY
    _REGISTRY = registry
    return registry


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Turn instrumentation on (idempotent).

    Installs ``registry`` if given, else keeps the current real registry
    or creates a fresh :class:`MetricsRegistry`.
    """
    global _REGISTRY
    if registry is not None:
        _REGISTRY = registry
    elif not _REGISTRY.enabled:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def disable() -> None:
    """Turn instrumentation off (installs a :class:`NullRegistry`)."""
    global _REGISTRY
    _REGISTRY = NullRegistry()


@contextmanager
def enabled_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Context manager: enable a (fresh by default) registry, then restore.

    ::

        with enabled_registry() as reg:
            solver.solve(problem)
        print(reg.to_prometheus_text())
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry if registry is not None else MetricsRegistry()
    try:
        yield _REGISTRY
    finally:
        _REGISTRY = previous
