"""Timing spans: ``with span("kmr.knapsack"): ...`` wall-clock scopes.

A span measures one named scope of work.  Spans nest: entering a span
while another is active makes it a child, and the active stack is
**thread-local**, so concurrent benchmark workers or future multi-meeting
controllers do not interleave each other's timings.

Recording is two-fold:

* every span's wall-clock duration is observed into the registry
  histogram :data:`repro.obs.names.SPAN_SECONDS` under its own name
  (label ``span``), so percentile latency per scope is always available;
* the completed :class:`SpanRecord` tree of the most recent *root* span
  per thread is retained and can be inspected (``last_root_span()``) or
  pretty-printed (``format_span_tree()``) — the worked example in
  ``docs/OBSERVABILITY.md`` shows the output.

When the registry is disabled (the default), :func:`span` returns a
shared no-op context manager: entering and exiting costs two empty
method calls and records nothing, keeping instrumented hot paths free.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

from .names import SPAN_SECONDS
from .registry import get_registry


@dataclass
class SpanRecord:
    """One completed (or in-flight) span and its children.

    Attributes:
        name: the span name, dotted by convention (``"kmr.knapsack"``).
        start_s: ``time.perf_counter()`` at entry.
        duration_s: wall-clock seconds from entry to exit (0 while open).
        depth: nesting depth; 0 for a root span.
        children: spans entered while this one was active, in order.
    """

    name: str
    start_s: float
    duration_s: float = 0.0
    depth: int = 0
    children: List["SpanRecord"] = field(default_factory=list)

    def flatten(self) -> List["SpanRecord"]:
        """This span followed by all descendants, depth-first."""
        out = [self]
        for child in self.children:
            out.extend(child.flatten())
        return out


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: List[SpanRecord] = []
        self.last_root: Optional[SpanRecord] = None


_STATE = _ThreadState()


class _Span:
    """The live context manager behind :func:`span`."""

    __slots__ = ("_record",)

    def __init__(self, name: str) -> None:
        self._record = SpanRecord(name=name, start_s=0.0)

    def __enter__(self) -> SpanRecord:
        record = self._record
        record.start_s = time.perf_counter()
        stack = _STATE.stack
        record.depth = len(stack)
        if stack:
            stack[-1].children.append(record)
        stack.append(record)
        return record

    def __exit__(self, exc_type, exc, tb) -> None:
        record = self._record
        record.duration_s = time.perf_counter() - record.start_s
        stack = _STATE.stack
        # Tolerate a torn stack (an inner span leaked across threads or was
        # exited out of order) rather than corrupting sibling timings.
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:
            while stack and stack[-1] is not record:
                stack.pop()
            if stack:
                stack.pop()
        if record.depth == 0:
            _STATE.last_root = record
        get_registry().histogram(SPAN_SECONDS, span=record.name).observe(
            record.duration_s
        )


class _NullSpan:
    """Shared no-op span used while instrumentation is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str):
    """Open a timing span named ``name``.

    Usage::

        with span("kmr.knapsack"):
            requests = knapsack_step(...)

    Returns a context manager; entering it yields the live
    :class:`SpanRecord` (or ``None`` when instrumentation is disabled).
    """
    if not get_registry().enabled:
        return _NULL_SPAN
    return _Span(name)


def current_span() -> Optional[SpanRecord]:
    """The innermost open span on this thread, if any."""
    stack = _STATE.stack
    return stack[-1] if stack else None


def last_root_span() -> Optional[SpanRecord]:
    """The most recently completed root (depth-0) span on this thread."""
    return _STATE.last_root


def reset_spans() -> None:
    """Clear this thread's span state (test isolation)."""
    _STATE.stack = []
    _STATE.last_root = None


def context_token() -> dict:
    """A picklable token describing this thread's open span stack.

    Spans are thread-local, so work shipped to another thread or process
    (the multiprocessing solve pool) loses its ancestry.  Serialize a
    token with the job, have the worker time itself, and stitch the
    result back with :func:`stitch_child` — the worker's span then
    appears in the parent trace as if it had run inline.
    """
    return {"path": [record.name for record in _STATE.stack]}


def stitch_child(
    name: str,
    duration_s: float,
    token: Optional[dict] = None,
) -> SpanRecord:
    """Attach an externally timed span to this thread's open trace.

    Creates a completed :class:`SpanRecord` as a child of the innermost
    open span (or as a detached record when no span is open), and
    observes its duration into the :data:`SPAN_SECONDS` histogram so
    percentile latency includes pool work.  ``token`` is the
    :func:`context_token` that travelled with the job; it documents the
    ancestry the child was stitched under but the *current* stack wins —
    stitching happens where the results are joined.
    """
    record = SpanRecord(name=name, start_s=0.0, duration_s=duration_s)
    stack = _STATE.stack
    if stack:
        record.depth = len(stack)
        stack[-1].children.append(record)
    get_registry().histogram(SPAN_SECONDS, span=name).observe(duration_s)
    return record


def format_span_tree(root: SpanRecord) -> str:
    """Render a completed span tree as an indented ASCII timing report::

        kmr.solve                        12.42ms
          kmr.knapsack                    8.91ms
          kmr.merge                       0.33ms
          kmr.reduction                   2.80ms
    """
    lines = []
    for record in root.flatten():
        indent = "  " * (record.depth - root.depth)
        label = f"{indent}{record.name}"
        lines.append(f"{label:<40s} {record.duration_s * 1000:8.2f}ms")
    return "\n".join(lines)
