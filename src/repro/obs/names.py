"""Canonical metric and span names emitted by the repro instrumentation.

Every instrumented call site imports its metric name from here, and
``docs/OBSERVABILITY.md`` documents exactly these names — a unit test
(``tests/obs/test_docs_match.py``) fails if the two drift apart.  Add a
new metric by (1) defining the constant here, (2) recording through it,
and (3) documenting it in the operator guide.

Naming follows the Prometheus conventions: ``repro_`` namespace prefix,
``_total`` suffix for counters, base units in the name (``_seconds``,
``_kbps``), label dimensions kept low-cardinality (scheme, span, reason —
never per-client ids).
"""

from __future__ import annotations

from typing import Dict, Tuple

# --------------------------------------------------------------------- #
# KMR solver (repro.core.solver)
# --------------------------------------------------------------------- #

#: Counter — KMR solves started.
KMR_SOLVES = "repro_kmr_solves_total"
#: Counter — total KMR iterations across all solves.
KMR_ITERATIONS_TOTAL = "repro_kmr_iterations_total"
#: Histogram — iterations needed per solve (convergence speed, Fig. 6).
KMR_ITERATIONS = "repro_kmr_iterations"
#: Histogram — wall-clock seconds per solve (Fig. 9's CPU cost).
KMR_SOLVE_SECONDS = "repro_kmr_solve_seconds"
#: Counter — Step-3 deletion events (one feasible resolution removed).
KMR_REDUCTIONS = "repro_kmr_reductions_total"
#: Counter, label ``reason`` in {"solved", "iteration_cap"} — how solves end.
KMR_CONVERGENCE = "repro_kmr_convergence_total"
#: Counter — subscriber re-solves skipped by the dirty-set (incremental
#: Step 1 reused the previous iteration's requests for clean subscribers).
KMR_STEP1_SKIPPED = "repro_kmr_step1_skipped_total"
#: Histogram — dirty-set size per incremental iteration (subscribers
#: re-solved after a reduction; the full-subscriber first iteration is
#: not observed).
KMR_DIRTY_SET_SIZE = "repro_kmr_dirty_set_size"

# --------------------------------------------------------------------- #
# MCKP dynamic program (repro.core.mckp)
# --------------------------------------------------------------------- #

#: Counter — DP solves (one per subscriber per iteration, plus Step-3 fixes).
MCKP_SOLVES = "repro_mckp_dp_solves_total"
#: Histogram — DP table size in cells (classes x capacity slots).
MCKP_TABLE_CELLS = "repro_mckp_dp_table_cells"
#: Histogram — per-solve capacity lost to grid rounding, in kbps
#: (the granularity-induced conservatism of rounding weights up).
MCKP_GRID_SLACK_KBPS = "repro_mckp_grid_slack_kbps"
#: Counter, label ``kernel`` in {"numpy", "python"} — DP solves by the
#: execution kernel that ran them (see docs/SOLVER.md).
MCKP_KERNEL_SOLVES = "repro_mckp_kernel_solves_total"
#: Counter — instances solved through the batched entry point
#: (``solve_mckp_dp_batch``); a subset of ``repro_mckp_dp_solves_total``.
MCKP_BATCHED_SOLVES = "repro_mckp_batched_solves_total"
#: Histogram — instances per batched-solve call (how many cache-miss
#: instances one knapsack step handed the kernel at once).
MCKP_BATCH_SIZE = "repro_mckp_batch_size"

# --------------------------------------------------------------------- #
# Incremental solve engine (repro.core.engine)
# --------------------------------------------------------------------- #

#: Counter, label ``result`` in {"hit", "miss"} — process-wide MCKP
#: instance-cache lookups.
MCKP_CACHE = "repro_mckp_cache_total"
#: Counter — LRU evictions from the MCKP instance cache.
MCKP_CACHE_EVICTIONS = "repro_mckp_cache_evictions_total"
#: Gauge — solutions currently retained by the MCKP instance cache.
MCKP_CACHE_ENTRIES = "repro_mckp_cache_entries"
#: Counter — subscriber instances answered by another subscriber's solve
#: within the same knapsack step (intra-iteration dedup).
MCKP_INSTANCES_DEDUPED = "repro_mckp_instances_deduped_total"

# --------------------------------------------------------------------- #
# Spans (repro.obs.spans)
# --------------------------------------------------------------------- #

#: Histogram, label ``span`` — wall-clock seconds per span entry/exit.
SPAN_SECONDS = "repro_span_seconds"

#: Span names used by the built-in instrumentation (label values of
#: :data:`SPAN_SECONDS`).
SPAN_KMR_SOLVE = "kmr.solve"
SPAN_KMR_KNAPSACK = "kmr.knapsack"
SPAN_KMR_KNAPSACK_DIRTY = "kmr.knapsack_dirty"
SPAN_KMR_MERGE = "kmr.merge"
SPAN_KMR_REDUCTION = "kmr.reduction"
SPAN_CONTROLLER_TICK = "controller.tick"

# --------------------------------------------------------------------- #
# Controller runtime (repro.control.gso_controller)
# --------------------------------------------------------------------- #

#: Counter — control-loop solves triggered (time- or event-triggered).
CONTROLLER_SOLVES = "repro_controller_solves_total"
#: Histogram — end-to-end control-tick latency in seconds (snapshot +
#: solve + cooldown + feedback execution).
CONTROLLER_TICK_SECONDS = "repro_controller_tick_seconds"
#: Histogram — seconds between consecutive control events (Fig. 12).
CONTROLLER_CALL_INTERVAL_SECONDS = "repro_controller_call_interval_seconds"
#: Counter — Sec. 7 single-stream fallbacks engaged.
CONTROLLER_FALLBACKS = "repro_controller_fallbacks_total"
#: Counter — resolution upgrades suppressed by the cooldown.
CONTROLLER_UPGRADES_SUPPRESSED = "repro_controller_upgrades_suppressed_total"
#: Counter — dead-stream failure downgrades applied.
CONTROLLER_DOWNGRADES = "repro_controller_downgrades_total"

# --------------------------------------------------------------------- #
# Feedback executor (repro.control.feedback)
# --------------------------------------------------------------------- #

#: Counter — solutions pushed to the media/user planes.
FEEDBACK_EXECUTIONS = "repro_feedback_executions_total"
#: Counter — GSO TMMBR configuration messages sent to publishers.
FEEDBACK_TMMBR_SENT = "repro_feedback_tmmbr_sent_total"
#: Counter — per-(subscriber, publisher) forwarding-table rewrites.
FEEDBACK_FORWARDING_UPDATES = "repro_feedback_forwarding_updates_total"
#: Histogram — TMMBR fan-out per execution (publishers reconfigured).
FEEDBACK_FANOUT = "repro_feedback_fanout"

# --------------------------------------------------------------------- #
# RTP control-message codecs (repro.rtp)
# --------------------------------------------------------------------- #

#: Counter, label ``direction`` in {"encoded", "parsed"} — SEMB reports.
RTP_SEMB_MESSAGES = "repro_rtp_semb_messages_total"
#: Counter, labels ``kind`` in {"tmmbr", "tmmbn"} and ``direction`` in
#: {"encoded", "parsed"} — GSO TMMBR/TMMBN messages.
RTP_TMMBR_MESSAGES = "repro_rtp_tmmbr_messages_total"

# --------------------------------------------------------------------- #
# Meeting runner (repro.conference.runner)
# --------------------------------------------------------------------- #

#: Counter, label ``kind`` in {"semb", "tmmbn", "other"} — upstream RTCP
#: APP packets routed by the runner.
RUNNER_RTCP_APP = "repro_runner_rtcp_app_total"

# --------------------------------------------------------------------- #
# Fleet simulation (repro.deploy.fleet)
# --------------------------------------------------------------------- #

#: Counter, label ``scheme`` in {"gso", "nongso"} — conferences scored.
FLEET_CONFERENCES = "repro_fleet_conferences_total"
#: Histogram, label ``scheme`` — per-conference mean stream-satisfaction
#: ratio (views delivered / views subscribed, the Fig. 11 quantity).
FLEET_SATISFACTION = "repro_fleet_satisfaction_ratio"
#: Gauge, label ``scheme`` — satisfaction ratio of the most recently
#: scored conference.
FLEET_LAST_SATISFACTION = "repro_fleet_last_satisfaction_ratio"

# --------------------------------------------------------------------- #
# Controller cluster (repro.cluster)
# --------------------------------------------------------------------- #

#: Counter, label ``trigger`` in {"event", "time", "rehome", "sync"} —
#: solve requests entering the shard schedulers / solve service.
CLUSTER_SOLVE_REQUESTS = "repro_cluster_solve_requests_total"
#: Counter — event submissions folded into an already-pending request
#: (one queued solve per meeting, newest snapshot wins).
CLUSTER_COALESCED = "repro_cluster_coalesced_total"
#: Counter, label ``result`` in {"hit", "miss"} — fingerprint-cache lookups.
CLUSTER_CACHE = "repro_cluster_cache_total"
#: Counter — LRU evictions from the solution cache.
CLUSTER_CACHE_EVICTIONS = "repro_cluster_cache_evictions_total"
#: Gauge — solutions currently retained by the cache.
CLUSTER_CACHE_ENTRIES = "repro_cluster_cache_entries"
#: Counter — solve requests shed by admission control (served fallback).
CLUSTER_SHED = "repro_cluster_shed_total"
#: Histogram, label ``shard`` — due-queue depth per shard per round.
CLUSTER_QUEUE_DEPTH = "repro_cluster_queue_depth"
#: Gauge, label ``shard`` — meetings currently homed on each shard.
CLUSTER_MEETINGS = "repro_cluster_meetings"
#: Counter — meetings re-homed by shard death or ring growth.
CLUSTER_REHOMED = "repro_cluster_rehomed_meetings_total"
#: Counter — shard-death failovers executed.
CLUSTER_SHARD_FAILOVERS = "repro_cluster_shard_failovers_total"
#: Counter — Sec. 7 single-stream fallbacks served by the cluster
#: (shed requests, dead-shard handover, solver failures).
CLUSTER_FALLBACKS = "repro_cluster_fallbacks_total"
#: Histogram — wall-clock seconds per solve-service request (cache hits
#: and misses alike).
CLUSTER_SOLVE_SECONDS = "repro_cluster_solve_seconds"

#: Cluster span names.
SPAN_CLUSTER_TICK = "cluster.tick"
SPAN_CLUSTER_SOLVE = "cluster.solve"

# --------------------------------------------------------------------- #
# Fleet placement (repro.placement)
# --------------------------------------------------------------------- #

#: Counter, label ``policy`` in {"hash", "best_fit", "least_loaded"} —
#: placement decisions made when homing newly registered meetings.
PLACEMENT_DECISIONS = "repro_placement_decisions_total"
#: Gauge, label ``shard`` — deterministic assigned solve-cost per shard
#: (the load model's packing view; see docs/PLACEMENT.md).
PLACEMENT_SHARD_COST = "repro_placement_shard_cost"
#: Counter, label ``reason`` in {"hot_shard", "scale_in", "shard_killed",
#: "shard_added", "manual"} — meetings live-migrated between shards.
PLACEMENT_MIGRATIONS = "repro_placement_migrations_total"
#: Counter, label ``action`` in {"add", "remove"} — autoscaler decisions
#: executed (shards added on SLO burn / retired on sustained idle).
AUTOSCALE_ACTIONS = "repro_autoscale_actions_total"

#: Placement span names.
SPAN_PLACEMENT_REBALANCE = "placement.rebalance"

# --------------------------------------------------------------------- #
# Chaos & invariant checking (repro.chaos)
# --------------------------------------------------------------------- #

#: Counter, label ``kind`` — faults injected by chaos runs, by fault kind
#: (``kill_shard``, ``drop_report``, ``downlink_collapse``, ...).
CHAOS_FAULTS = "repro_chaos_faults_injected_total"
#: Counter, label ``invariant`` — invariant evaluations performed
#: (``constraints``, ``kmr_convergence``, ``fallback_availability``,
#: ``determinism``).
CHAOS_CHECKS = "repro_chaos_invariant_checks_total"
#: Counter, label ``invariant`` — invariant evaluations that FAILED.
#: Any non-zero value is a bug in the orchestration stack.
CHAOS_VIOLATIONS = "repro_chaos_invariant_violations_total"
#: Counter, label ``verdict`` in {"pass", "fail"} — chaos runs completed.
CHAOS_RUNS = "repro_chaos_runs_total"
#: Histogram — scheduler ticks a meeting spent degraded on the Sec. 7
#: single-stream fallback before re-converging to a full KMR solution.
CHAOS_RECOVERY_TICKS = "repro_chaos_fallback_recovery_ticks"

#: Chaos span names.
SPAN_CHAOS_RUN = "chaos.run"
SPAN_CHAOS_TICK = "chaos.tick"

# --------------------------------------------------------------------- #
# Event-driven ingress plane (repro.ingress)
# --------------------------------------------------------------------- #

#: Counter, label ``kind`` in {"semb", "link_estimate", "subscription",
#: "publisher_join", "publisher_leave"} — stream events offered to the
#: ingress dispatcher, by event kind.
INGRESS_EVENTS = "repro_ingress_events_total"
#: Counter — events folded into an already-open decision window (the
#: mailbox coalesce, mirroring ``repro_cluster_coalesced_total``).
INGRESS_COALESCED = "repro_ingress_coalesced_total"
#: Counter, label ``reason`` in {"overflow", "admission"} — decisions
#: shed to the Sec. 7 single-stream fallback by the backpressure ladder.
INGRESS_SHED = "repro_ingress_shed_total"
#: Counter — stream events dropped by an injected SEMB-loss fault.
INGRESS_DROPPED_EVENTS = "repro_ingress_dropped_events_total"
#: Counter — stream events held back by an injected SEMB-delay fault.
INGRESS_DELAYED_EVENTS = "repro_ingress_delayed_events_total"
#: Histogram — mailbox depth observed at each decision.
INGRESS_MAILBOX_DEPTH = "repro_ingress_mailbox_depth"
#: Histogram — virtual seconds from the oldest event of a decision
#: window to its TMMBR completion (the bounded p95 the benchmark gates).
INGRESS_DECISION_SECONDS = "repro_ingress_decision_latency_seconds"

#: Ingress span names.
SPAN_INGRESS_RUN = "ingress.run"
SPAN_INGRESS_DECIDE = "ingress.decide"

# --------------------------------------------------------------------- #
# Telemetry pipeline (repro.obs.events / timeseries / slo)
# --------------------------------------------------------------------- #

#: Counter, label ``kind`` — structured events appended to the active
#: event log, by event kind (``semb_report``, ``solve_served``, ...).
EVENTS_EMITTED = "repro_events_emitted_total"
#: Counter — events evicted from the bounded event-log ring on overflow.
EVENTS_DROPPED = "repro_events_dropped_total"
#: Counter — samples recorded into the active time-series store.
TIMESERIES_POINTS = "repro_timeseries_points_total"
#: Gauge — distinct series currently held by the time-series store.
TIMESERIES_SERIES = "repro_timeseries_series"
#: Counter, label ``slo`` — SLO objective evaluations performed.
SLO_EVALUATIONS = "repro_slo_evaluations_total"
#: Counter, label ``slo`` — SLO evaluations whose full-window verdict
#: breached the objective.
SLO_BREACHES = "repro_slo_breaches_total"

#: Telemetry span names.
SPAN_POOL_SOLVE = "pool.solve"
SPAN_SLO_EVALUATE = "slo.evaluate"

# --------------------------------------------------------------------- #
# Causal trace plane (repro.obs.tracing)
# --------------------------------------------------------------------- #

#: Counter — decision trace trees assembled from the event log (a tree
#: is counted when it is finalized: terminal event seen, or flushed).
TRACE_TREES_ASSEMBLED = "repro_trace_trees_assembled_total"
#: Counter — assembled trees evicted by the bounded per-meeting
#: retention reservoir (never retained, or dropped on a stride double).
TRACE_TREES_EVICTED = "repro_trace_trees_evicted_total"
#: Counter — retained trees drained by :meth:`TraceAssembler.export`.
TRACE_TREES_EXPORTED = "repro_trace_trees_exported_total"
#: Counter — events without a correlation id folded into ambient
#: singleton trees (faults, shard lifecycle).
TRACE_ORPHAN_EVENTS = "repro_trace_orphan_events_total"
#: Histogram, label ``stage`` — per-stage virtual seconds attributed by
#: critical-path extraction (``mailbox_dwell``, ``sched_wait``,
#: ``solve``, ``delivery``, ``shed``).
TRACE_STAGE_SECONDS = "repro_trace_stage_seconds"

#: Trace-plane span names.
SPAN_TRACE_ASSEMBLE = "trace.assemble"

# --------------------------------------------------------------------- #
# Benchmarks (benchmarks/_harness.py)
# --------------------------------------------------------------------- #

#: Histogram, label ``benchmark`` — wall-clock seconds per benchmark test.
BENCHMARK_SECONDS = "repro_benchmark_seconds"


#: Every canonical metric name, with (kind, labels) — consumed by the
#: docs-consistency test and the ``repro obs names`` CLI.
ALL_METRICS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    KMR_SOLVES: ("counter", ()),
    KMR_ITERATIONS_TOTAL: ("counter", ()),
    KMR_ITERATIONS: ("histogram", ()),
    KMR_SOLVE_SECONDS: ("histogram", ()),
    KMR_REDUCTIONS: ("counter", ()),
    KMR_CONVERGENCE: ("counter", ("reason",)),
    KMR_STEP1_SKIPPED: ("counter", ()),
    KMR_DIRTY_SET_SIZE: ("histogram", ()),
    MCKP_SOLVES: ("counter", ()),
    MCKP_TABLE_CELLS: ("histogram", ()),
    MCKP_GRID_SLACK_KBPS: ("histogram", ()),
    MCKP_KERNEL_SOLVES: ("counter", ("kernel",)),
    MCKP_BATCHED_SOLVES: ("counter", ()),
    MCKP_BATCH_SIZE: ("histogram", ()),
    MCKP_CACHE: ("counter", ("result",)),
    MCKP_CACHE_EVICTIONS: ("counter", ()),
    MCKP_CACHE_ENTRIES: ("gauge", ()),
    MCKP_INSTANCES_DEDUPED: ("counter", ()),
    SPAN_SECONDS: ("histogram", ("span",)),
    CONTROLLER_SOLVES: ("counter", ()),
    CONTROLLER_TICK_SECONDS: ("histogram", ()),
    CONTROLLER_CALL_INTERVAL_SECONDS: ("histogram", ()),
    CONTROLLER_FALLBACKS: ("counter", ()),
    CONTROLLER_UPGRADES_SUPPRESSED: ("counter", ()),
    CONTROLLER_DOWNGRADES: ("counter", ()),
    FEEDBACK_EXECUTIONS: ("counter", ()),
    FEEDBACK_TMMBR_SENT: ("counter", ()),
    FEEDBACK_FORWARDING_UPDATES: ("counter", ()),
    FEEDBACK_FANOUT: ("histogram", ()),
    RTP_SEMB_MESSAGES: ("counter", ("direction",)),
    RTP_TMMBR_MESSAGES: ("counter", ("kind", "direction")),
    RUNNER_RTCP_APP: ("counter", ("kind",)),
    FLEET_CONFERENCES: ("counter", ("scheme",)),
    FLEET_SATISFACTION: ("histogram", ("scheme",)),
    FLEET_LAST_SATISFACTION: ("gauge", ("scheme",)),
    CLUSTER_SOLVE_REQUESTS: ("counter", ("trigger",)),
    CLUSTER_COALESCED: ("counter", ()),
    CLUSTER_CACHE: ("counter", ("result",)),
    CLUSTER_CACHE_EVICTIONS: ("counter", ()),
    CLUSTER_CACHE_ENTRIES: ("gauge", ()),
    CLUSTER_SHED: ("counter", ()),
    CLUSTER_QUEUE_DEPTH: ("histogram", ("shard",)),
    CLUSTER_MEETINGS: ("gauge", ("shard",)),
    CLUSTER_REHOMED: ("counter", ()),
    CLUSTER_SHARD_FAILOVERS: ("counter", ()),
    CLUSTER_FALLBACKS: ("counter", ()),
    CLUSTER_SOLVE_SECONDS: ("histogram", ()),
    PLACEMENT_DECISIONS: ("counter", ("policy",)),
    PLACEMENT_SHARD_COST: ("gauge", ("shard",)),
    PLACEMENT_MIGRATIONS: ("counter", ("reason",)),
    AUTOSCALE_ACTIONS: ("counter", ("action",)),
    CHAOS_FAULTS: ("counter", ("kind",)),
    CHAOS_CHECKS: ("counter", ("invariant",)),
    CHAOS_VIOLATIONS: ("counter", ("invariant",)),
    CHAOS_RUNS: ("counter", ("verdict",)),
    CHAOS_RECOVERY_TICKS: ("histogram", ()),
    INGRESS_EVENTS: ("counter", ("kind",)),
    INGRESS_COALESCED: ("counter", ()),
    INGRESS_SHED: ("counter", ("reason",)),
    INGRESS_DROPPED_EVENTS: ("counter", ()),
    INGRESS_DELAYED_EVENTS: ("counter", ()),
    INGRESS_MAILBOX_DEPTH: ("histogram", ()),
    INGRESS_DECISION_SECONDS: ("histogram", ()),
    EVENTS_EMITTED: ("counter", ("kind",)),
    EVENTS_DROPPED: ("counter", ()),
    TIMESERIES_POINTS: ("counter", ()),
    TIMESERIES_SERIES: ("gauge", ()),
    SLO_EVALUATIONS: ("counter", ("slo",)),
    SLO_BREACHES: ("counter", ("slo",)),
    TRACE_TREES_ASSEMBLED: ("counter", ()),
    TRACE_TREES_EVICTED: ("counter", ()),
    TRACE_TREES_EXPORTED: ("counter", ()),
    TRACE_ORPHAN_EVENTS: ("counter", ()),
    TRACE_STAGE_SECONDS: ("histogram", ("stage",)),
    BENCHMARK_SECONDS: ("histogram", ("benchmark",)),
}

#: Every built-in span name — label values of :data:`SPAN_SECONDS`.
ALL_SPANS: Tuple[str, ...] = (
    SPAN_KMR_SOLVE,
    SPAN_KMR_KNAPSACK,
    SPAN_KMR_KNAPSACK_DIRTY,
    SPAN_KMR_MERGE,
    SPAN_KMR_REDUCTION,
    SPAN_CONTROLLER_TICK,
    SPAN_CLUSTER_TICK,
    SPAN_CLUSTER_SOLVE,
    SPAN_PLACEMENT_REBALANCE,
    SPAN_CHAOS_RUN,
    SPAN_CHAOS_TICK,
    SPAN_INGRESS_RUN,
    SPAN_INGRESS_DECIDE,
    SPAN_POOL_SOLVE,
    SPAN_SLO_EVALUATE,
    SPAN_TRACE_ASSEMBLE,
)
