"""Structured KMR solver traces: one record per Knapsack-Merge-Reduction
iteration, emitted as in-memory objects or JSONL.

While the metrics registry answers "how fast / how often", the trace
answers "*what did the solver decide and why*": for every iteration it
captures the per-subscriber knapsack value, the merged ladder installed
per publisher, any Step-3 deletion, and finally the convergence reason.
``docs/OBSERVABILITY.md`` walks one trace end-to-end.

Collection is pull-based and off by default: the solver asks
:func:`active_collector` once per solve and records nothing when no
collector is installed (an ``is None`` check per iteration).  Install one
with::

    with collect_traces() as collector:
        solver.solve(problem)
    collector.traces[0].write_jsonl(path)

The JSONL schema (``repro.kmr_trace/v1``) is one object per line:

* a ``{"record": "solve", ...}`` header with problem shape and config;
* one ``{"record": "iteration", ...}`` object per KMR iteration;
* a ``{"record": "result", ...}`` trailer with the convergence reason,
  iteration count and wall time.

The schema is pinned by a golden-file test
(``tests/obs/test_trace.py``); bump :data:`TRACE_SCHEMA` when changing it.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

#: Schema identifier stamped into every trace header.
TRACE_SCHEMA = "repro.kmr_trace/v1"

#: Convergence reasons recorded in the trace trailer.
REASON_SOLVED = "solved"
REASON_ITERATION_CAP = "iteration_cap"


@dataclass
class IterationRecord:
    """One KMR iteration, as decided by the three steps.

    Attributes:
        iteration: 1-based iteration index.
        knapsack_values: per subscriber, the total QoE utility of the
            streams requested in Step 1 (the Eq. 1 objective attained).
        requests_total: number of (subscriber, publisher) stream requests.
        merged_ladders: per publisher after Step 2's ``Meg()``, the merged
            ladder as ``{resolution_name: bitrate_kbps}``.
        deletion: the Step-3 ``(publisher, resolution_name)`` deletion, or
            ``None`` when the iteration terminated the loop.
        step_seconds: wall-clock seconds per step
            (``{"knapsack": ..., "merge": ..., "reduction": ...}``).
    """

    iteration: int
    knapsack_values: Dict[str, float] = field(default_factory=dict)
    requests_total: int = 0
    merged_ladders: Dict[str, Dict[str, int]] = field(default_factory=dict)
    deletion: Optional[Tuple[str, str]] = None
    step_seconds: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The JSONL object for this iteration."""
        return {
            "record": "iteration",
            "iteration": self.iteration,
            "knapsack_values": {
                k: round(v, 6) for k, v in sorted(self.knapsack_values.items())
            },
            "requests_total": self.requests_total,
            "merged_ladders": {
                pub: dict(sorted(ladder.items()))
                for pub, ladder in sorted(self.merged_ladders.items())
            },
            "deletion": list(self.deletion) if self.deletion else None,
            "step_seconds": {
                k: round(v, 6) for k, v in sorted(self.step_seconds.items())
            },
        }


@dataclass
class SolveTrace:
    """A full KMR solve: header metadata + per-iteration records + result.

    Attributes:
        publishers: publisher entity count of the problem.
        subscribers: subscriber count of the problem.
        granularity_kbps: the solver's DP grid step.
        iterations: the per-iteration records, in order.
        convergence_reason: :data:`REASON_SOLVED` or
            :data:`REASON_ITERATION_CAP`.
        total_iterations: number of KMR iterations executed.
        reductions: every Step-3 deletion, in order, as
            ``(publisher, resolution_name)``.
        wall_time_s: end-to-end solve wall clock.
    """

    publishers: int = 0
    subscribers: int = 0
    granularity_kbps: int = 1
    iterations: List[IterationRecord] = field(default_factory=list)
    convergence_reason: str = ""
    total_iterations: int = 0
    reductions: List[Tuple[str, str]] = field(default_factory=list)
    wall_time_s: float = 0.0

    def header_dict(self) -> Dict[str, object]:
        return {
            "record": "solve",
            "schema": TRACE_SCHEMA,
            "publishers": self.publishers,
            "subscribers": self.subscribers,
            "granularity_kbps": self.granularity_kbps,
        }

    def result_dict(self) -> Dict[str, object]:
        return {
            "record": "result",
            "convergence_reason": self.convergence_reason,
            "total_iterations": self.total_iterations,
            "reductions": [list(r) for r in self.reductions],
            "wall_time_s": round(self.wall_time_s, 6),
        }

    def to_jsonl_lines(self) -> List[str]:
        """The trace as JSONL: header, iterations, result trailer."""
        rows = (
            [self.header_dict()]
            + [it.to_dict() for it in self.iterations]
            + [self.result_dict()]
        )
        return [json.dumps(row, sort_keys=True) for row in rows]

    def to_jsonl(self) -> str:
        return "\n".join(self.to_jsonl_lines()) + "\n"

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the trace to ``path``; returns the path written."""
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def from_jsonl_lines(cls, lines: List[str]) -> "SolveTrace":
        """Parse one trace back from its JSONL encoding.

        The inverse of :meth:`to_jsonl_lines`: re-encoding the parsed
        trace reproduces the input byte-for-byte (the golden-file test
        pins this).  Raises ``ValueError`` on a wrong schema or a
        malformed record sequence.
        """
        trace = cls()
        saw_header = saw_result = False
        for line in lines:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            record = row.get("record")
            if record == "solve":
                if row.get("schema") != TRACE_SCHEMA:
                    raise ValueError(
                        f"unsupported trace schema {row.get('schema')!r}"
                    )
                trace.publishers = int(row["publishers"])
                trace.subscribers = int(row["subscribers"])
                trace.granularity_kbps = int(row["granularity_kbps"])
                saw_header = True
            elif record == "iteration":
                deletion = row.get("deletion")
                trace.iterations.append(IterationRecord(
                    iteration=int(row["iteration"]),
                    knapsack_values={
                        k: float(v)
                        for k, v in row.get("knapsack_values", {}).items()
                    },
                    requests_total=int(row.get("requests_total", 0)),
                    merged_ladders={
                        pub: {res: int(kbps) for res, kbps in ladder.items()}
                        for pub, ladder in row.get(
                            "merged_ladders", {}
                        ).items()
                    },
                    deletion=tuple(deletion) if deletion else None,
                    step_seconds={
                        k: float(v)
                        for k, v in row.get("step_seconds", {}).items()
                    },
                ))
            elif record == "result":
                trace.convergence_reason = str(row["convergence_reason"])
                trace.total_iterations = int(row["total_iterations"])
                trace.reductions = [
                    (str(pub), str(res)) for pub, res in row["reductions"]
                ]
                trace.wall_time_s = float(row["wall_time_s"])
                saw_result = True
            else:
                raise ValueError(f"unknown trace record kind {record!r}")
        if not saw_header or not saw_result:
            raise ValueError("trace is missing its header or result record")
        return trace

    @classmethod
    def from_jsonl(cls, text: str) -> "SolveTrace":
        return cls.from_jsonl_lines(text.splitlines())

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "SolveTrace":
        return cls.from_jsonl(Path(path).read_text())


class TraceCollector:
    """Accumulates the :class:`SolveTrace` of every solve while installed."""

    def __init__(self) -> None:
        self.traces: List[SolveTrace] = []

    def begin_solve(
        self, publishers: int, subscribers: int, granularity_kbps: int
    ) -> SolveTrace:
        """Start (and retain) a new trace; the solver fills it in."""
        trace = SolveTrace(
            publishers=publishers,
            subscribers=subscribers,
            granularity_kbps=granularity_kbps,
        )
        self.traces.append(trace)
        return trace

    @property
    def last(self) -> Optional[SolveTrace]:
        """The most recent trace, if any."""
        return self.traces[-1] if self.traces else None

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write every collected trace, concatenated, as one JSONL file."""
        path = Path(path)
        lines: List[str] = []
        for trace in self.traces:
            lines.extend(trace.to_jsonl_lines())
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path


#: The installed collector; ``None`` keeps solver tracing disabled.
_COLLECTOR: Optional[TraceCollector] = None


def active_collector() -> Optional[TraceCollector]:
    """The installed :class:`TraceCollector`, or ``None`` (tracing off)."""
    return _COLLECTOR


def set_collector(collector: Optional[TraceCollector]) -> None:
    """Install (or, with ``None``, remove) the process-wide collector."""
    global _COLLECTOR
    _COLLECTOR = collector


@contextmanager
def collect_traces(
    collector: Optional[TraceCollector] = None,
) -> Iterator[TraceCollector]:
    """Context manager: collect solver traces, then restore the previous
    collector.  Yields the active collector."""
    global _COLLECTOR
    previous = _COLLECTOR
    _COLLECTOR = collector if collector is not None else TraceCollector()
    try:
        yield _COLLECTOR
    finally:
        _COLLECTOR = previous
