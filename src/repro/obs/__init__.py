"""Observability for the GSO reproduction: metrics, spans, solver traces.

The package has three cooperating parts, all zero-dependency and all
off-by-default-cheap (a disabled run records nothing and pays only no-op
calls on instrumented paths):

* :mod:`repro.obs.registry` — counters, gauges and bounded-reservoir
  histograms with labels; snapshot, merge, Prometheus-text and JSON
  export.  Enable with :func:`enable` / :func:`enabled_registry`.
* :mod:`repro.obs.spans` — ``with span("kmr.knapsack"):`` wall-clock
  scopes with thread-local nesting, recorded into the registry.
* :mod:`repro.obs.trace` — structured per-iteration KMR solver traces
  (JSONL or in-memory), installed with :func:`collect_traces`.

Canonical metric/span names live in :mod:`repro.obs.names` and are
documented for operators in ``docs/OBSERVABILITY.md``.  The CLI surface
is ``python -m repro obs ...``.

Quick start::

    from repro import obs

    with obs.enabled_registry() as reg, obs.collect_traces() as traces:
        solution = solver.solve(problem)
    print(reg.to_prometheus_text())
    print(traces.last.to_jsonl())
"""

from . import names
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    enabled_registry,
    get_registry,
    set_registry,
)
from .spans import (
    SpanRecord,
    current_span,
    format_span_tree,
    last_root_span,
    reset_spans,
    span,
)
from .trace import (
    IterationRecord,
    SolveTrace,
    TraceCollector,
    active_collector,
    collect_traces,
    set_collector,
)

__all__ = [
    "names",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "disable",
    "enable",
    "enabled_registry",
    "get_registry",
    "set_registry",
    "SpanRecord",
    "current_span",
    "format_span_tree",
    "last_root_span",
    "reset_spans",
    "span",
    "IterationRecord",
    "SolveTrace",
    "TraceCollector",
    "active_collector",
    "collect_traces",
    "set_collector",
]
