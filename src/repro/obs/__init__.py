"""Observability for the GSO reproduction: metrics, spans, traces, events.

The package has six cooperating parts, all zero-dependency and all
off-by-default-cheap (a disabled run records nothing and pays only no-op
calls on instrumented paths):

* :mod:`repro.obs.registry` — counters, gauges and bounded-reservoir
  histograms with labels; snapshot, merge, Prometheus-text and JSON
  export.  Enable with :func:`enable` / :func:`enabled_registry`.
* :mod:`repro.obs.spans` — ``with span("kmr.knapsack"):`` wall-clock
  scopes with thread-local nesting, recorded into the registry; span
  context tokens stitch solve-pool work into the parent trace.
* :mod:`repro.obs.trace` — structured per-iteration KMR solver traces
  (JSONL or in-memory), installed with :func:`collect_traces`.
* :mod:`repro.obs.events` — correlated structured event log
  (``repro.events/v1`` JSONL): correlation ids minted at cluster
  ingress reconstruct causal per-meeting timelines.  Install with
  :func:`record_events`.
* :mod:`repro.obs.timeseries` — bounded ring-buffer time series with
  windowed p50/p95/p99 and rates, sampled from the registry.  Install
  with :func:`record_timeseries`.
* :mod:`repro.obs.slo` — declarative paper-pinned SLOs (Fig. 12 solve
  latency, KMR iteration bound, fallback rate, Sec. 7 interruption
  duration) with burn-rate style verdicts.

Canonical metric/span names live in :mod:`repro.obs.names` and are
documented for operators in ``docs/OBSERVABILITY.md``.  The CLI surface
is ``python -m repro obs ...`` (including ``obs report`` and
``obs timeline <meeting>``).

Quick start::

    from repro import obs

    with obs.enabled_registry() as reg, obs.record_events() as log:
        served = cluster.solve_conference("m-1", problem)
    print(reg.to_prometheus_text())
    print(obs.format_timeline(log.events, "m-1"))
"""

from . import names
from .events import (
    Event,
    EventLog,
    active_event_log,
    correlation_scope,
    current_correlation,
    record_events,
    set_event_log,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    enabled_registry,
    get_registry,
    set_registry,
)
from .report import (
    correlation_chains,
    format_report,
    format_slo_verdicts,
    format_timeline,
    meeting_timeline,
    report_dict,
    timeline_dict,
)
from .slo import (
    DEFAULT_SLOS,
    Slo,
    SloContext,
    SloEngine,
    SloVerdict,
    default_slos,
)
from .spans import (
    SpanRecord,
    context_token,
    current_span,
    format_span_tree,
    last_root_span,
    reset_spans,
    span,
    stitch_child,
)
from .timeseries import (
    Series,
    TimeSeriesStore,
    WindowStats,
    active_store,
    record_timeseries,
    set_store,
)
from .trace import (
    IterationRecord,
    SolveTrace,
    TraceCollector,
    active_collector,
    collect_traces,
    set_collector,
)

__all__ = [
    "names",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "disable",
    "enable",
    "enabled_registry",
    "get_registry",
    "set_registry",
    "SpanRecord",
    "context_token",
    "current_span",
    "format_span_tree",
    "last_root_span",
    "reset_spans",
    "span",
    "stitch_child",
    "IterationRecord",
    "SolveTrace",
    "TraceCollector",
    "active_collector",
    "collect_traces",
    "set_collector",
    "Event",
    "EventLog",
    "active_event_log",
    "correlation_scope",
    "current_correlation",
    "record_events",
    "set_event_log",
    "Series",
    "TimeSeriesStore",
    "WindowStats",
    "active_store",
    "record_timeseries",
    "set_store",
    "Slo",
    "SloContext",
    "SloEngine",
    "SloVerdict",
    "DEFAULT_SLOS",
    "default_slos",
    "correlation_chains",
    "format_report",
    "format_slo_verdicts",
    "format_timeline",
    "meeting_timeline",
    "report_dict",
    "timeline_dict",
]
