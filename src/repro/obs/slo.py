"""Declarative SLO engine: paper-pinned objectives with burn-rate verdicts.

Each :class:`Slo` binds one *measure* (computed from a run's serves,
events, derived stats, or the live registry) to a threshold taken from
the paper's operational evaluation:

* **solve latency** must sit well inside the Fig. 12 control-latency
  envelope (the scheduler already debounces to the 1–3 s window, so the
  solve itself must be a small fraction of the 1 s floor);
* **KMR iterations** must respect the |publishers| x |resolutions| + 1
  convergence bound (Sec. 5 / Fig. 6) — expressed as a ratio so one
  verdict covers meetings of any size;
* **fallback/shed rate** bounds how often the cluster degrades to the
  Sec. 7 single-stream fallback instead of serving a KMR solution;
* **stream-interruption duration** bounds how long any one meeting stays
  degraded before re-converging (Sec. 7's recovery story).

Verdicts are **burn-rate style**: every measure is evaluated over the
full run window *and* over the trailing fraction of it (default the last
25%).  ``ok`` reflects the full window; a breach that also burns in the
recent window (``fast_burn``) means the violation is ongoing rather than
a transient from early in the run.

Determinism: measures over serves/events/stats derive from simulated
time only and are exactly reproducible for a seeded run — those verdicts
are embedded in the chaos :class:`~repro.chaos.report.RunReport` (and
hence its digest).  Wall-clock measures (registry latency histograms)
are marked ``deterministic=False`` and are *reported but never digested*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from . import names as obs_names
from .registry import MetricsRegistry
from .spans import span

#: Comparators an :class:`Slo` may use.
_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
}

#: Serve sources that count as degraded service (Sec. 7).
DEGRADED_SOURCES = ("fallback", "shed")


@dataclass(frozen=True)
class Slo:
    """One declarative objective.

    Attributes:
        name: short stable identifier (``solve_latency_p95``).
        description: one-line operator-facing objective statement.
        measure: measure key dispatched by the engine — one of
            ``serves_degraded_fraction``, ``serves_max_interruption_s``,
            ``stat:<key>``, ``histogram_p95:<metric>`` or
            ``histogram_max:<metric>``.
        threshold: the objective's bound.
        comparator: ``"<="`` (value must stay under) or ``">="``.
        unit: unit string for rendering ("s", "ratio", ...).
        deterministic: True when the measure derives only from simulated
            time (safe to embed in digested reports).
        paper_ref: where in the paper the objective comes from.
    """

    name: str
    description: str
    measure: str
    threshold: float
    comparator: str = "<="
    unit: str = ""
    deterministic: bool = True
    paper_ref: str = ""

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise ValueError(f"unknown comparator {self.comparator!r}")


@dataclass
class SloVerdict:
    """The outcome of evaluating one :class:`Slo` over a run."""

    name: str
    description: str
    measure: str
    threshold: float
    comparator: str
    unit: str
    deterministic: bool
    paper_ref: str
    #: Full-window measured value (None when the measure had no data).
    value: Optional[float]
    #: Trailing-window measured value (None when no data).
    recent_value: Optional[float]
    #: True when the full-window value meets the objective (vacuously
    #: true with no data).
    ok: bool
    #: True when BOTH windows breach — the violation is ongoing.
    fast_burn: bool
    windows: Dict[str, Optional[float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "measure": self.measure,
            "threshold": round(self.threshold, 6),
            "comparator": self.comparator,
            "unit": self.unit,
            "deterministic": self.deterministic,
            "value": None if self.value is None else round(self.value, 6),
            "recent_value": (
                None if self.recent_value is None
                else round(self.recent_value, 6)
            ),
            "ok": self.ok,
            "fast_burn": self.fast_burn,
        }

    def verdict_word(self) -> str:
        if self.value is None:
            return "SKIP"
        if self.ok:
            return "PASS"
        return "BURN" if self.fast_burn else "FAIL"


@dataclass
class SloContext:
    """Inputs a measure may draw from.  All optional; a measure whose
    input is missing yields a SKIP verdict rather than an error.

    Attributes:
        serves: chaos-report serve rows (dicts with ``t``/``meeting``/
            ``source``/``delivered``), ordered by time.
        duration_s: run length in simulated seconds.
        tick_interval_s: solve-loop cadence (interruption granularity).
        stats: pre-computed scalar measures (``stat:<key>`` lookups),
            e.g. ``kmr_iteration_ratio_max``.
        registry: live registry for wall-clock latency measures.
        stage_latencies: per-stage ``(start_s, duration_s)`` samples from
            the trace plane (``TraceAssembler.stage_latencies``), for
            ``stage_p95:<stage>`` budget objectives.
    """

    serves: Sequence[Mapping[str, object]] = ()
    duration_s: float = 0.0
    tick_interval_s: float = 1.0
    stats: Mapping[str, float] = field(default_factory=dict)
    registry: Optional[MetricsRegistry] = None
    stage_latencies: Mapping[str, Sequence[Tuple[float, float]]] = field(
        default_factory=dict
    )


#: The default catalog, pinned to the paper.
DEFAULT_SLOS: Tuple[Slo, ...] = (
    Slo(
        name="solve_latency_p95",
        description="p95 solve-service latency stays well inside the "
                    "Fig. 12 control envelope",
        measure=f"histogram_p95:{obs_names.CLUSTER_SOLVE_SECONDS}",
        threshold=0.25,
        comparator="<=",
        unit="s",
        deterministic=False,
        paper_ref="Fig. 12",
    ),
    Slo(
        name="kmr_iteration_bound",
        description="every solve converges within the "
                    "|publishers| x |resolutions| + 1 iteration bound",
        measure="stat:kmr_iteration_ratio_max",
        threshold=1.0,
        comparator="<=",
        unit="ratio",
        deterministic=True,
        paper_ref="Sec. 5 / Fig. 6",
    ),
    Slo(
        name="degraded_serve_rate",
        description="fraction of serves degraded to the single-stream "
                    "fallback (or shed) stays bounded",
        measure="serves_degraded_fraction",
        threshold=0.5,
        comparator="<=",
        unit="ratio",
        deterministic=True,
        paper_ref="Sec. 7",
    ),
    Slo(
        name="stream_interruption_s",
        description="no meeting stays degraded longer than the recovery "
                    "budget before re-converging",
        measure="serves_max_interruption_s",
        threshold=6.0,
        comparator="<=",
        unit="s",
        deterministic=True,
        paper_ref="Sec. 7",
    ),
)


#: Per-stage p95 latency budgets (virtual seconds) for the trace plane's
#: critical-path stages.  Budgets bound each stage's share of the Fig. 12
#: control envelope: mailbox dwell and scheduler wait may consume the
#: debounce window (the paper's 1-3 s coalescing ceiling plus slack for
#: backpressure bursts), while solve and delivery must stay small.  A
#: BURN on one of these names the offending stage directly.
STAGE_BUDGETS_S: Dict[str, float] = {
    "mailbox_dwell": 3.0,
    "sched_wait": 4.0,
    "solve": 1.0,
    "delivery": 1.0,
    "shed": 1.0,
}


def stage_budget_slos(**overrides: float) -> List[Slo]:
    """Per-stage latency-budget objectives over trace-plane attribution.

    One ``stage_<stage>_p95`` objective per critical-path stage, measured
    from :attr:`SloContext.stage_latencies` (virtual clock — verdicts are
    deterministic and digest-safe).  Per-stage threshold overrides:
    ``stage_budget_slos(solve=0.5)``.
    """
    unknown = set(overrides) - set(STAGE_BUDGETS_S)
    if unknown:
        raise ValueError(f"unknown stage name(s): {sorted(unknown)}")
    out: List[Slo] = []
    for stage in sorted(STAGE_BUDGETS_S):
        threshold = float(overrides.get(stage, STAGE_BUDGETS_S[stage]))
        out.append(Slo(
            name=f"stage_{stage}_p95",
            description=f"p95 {stage} stage latency stays within its "
                        "share of the control-latency envelope",
            measure=f"stage_p95:{stage}",
            threshold=threshold,
            comparator="<=",
            unit="s",
            deterministic=True,
            paper_ref="Fig. 12",
        ))
    return out


def default_slos(**overrides: float) -> List[Slo]:
    """The default catalog, with per-name threshold overrides applied:
    ``default_slos(stream_interruption_s=10.0)``."""
    out: List[Slo] = []
    unknown = set(overrides)
    for slo in DEFAULT_SLOS:
        if slo.name in overrides:
            slo = replace(slo, threshold=float(overrides[slo.name]))
            unknown.discard(slo.name)
        out.append(slo)
    if unknown:
        raise ValueError(f"unknown SLO name(s): {sorted(unknown)}")
    return out


class SloEngine:
    """Evaluates a catalog of objectives against one run's context."""

    def __init__(
        self,
        objectives: Optional[Sequence[Slo]] = None,
        recent_fraction: float = 0.25,
    ) -> None:
        if not 0.0 < recent_fraction <= 1.0:
            raise ValueError("recent_fraction must be in (0, 1]")
        self.objectives: List[Slo] = list(
            objectives if objectives is not None else DEFAULT_SLOS
        )
        self.recent_fraction = recent_fraction

    def evaluate(self, ctx: SloContext) -> List[SloVerdict]:
        """One verdict per objective, in catalog order."""
        from .registry import get_registry

        verdicts: List[SloVerdict] = []
        with span(obs_names.SPAN_SLO_EVALUATE):
            recent_t0 = ctx.duration_s * (1.0 - self.recent_fraction)
            for slo in self.objectives:
                full = self._measure(slo.measure, ctx, t0=float("-inf"))
                recent = self._measure(slo.measure, ctx, t0=recent_t0)
                compare = _COMPARATORS[slo.comparator]
                ok = full is None or compare(full, slo.threshold)
                recent_breach = (
                    recent is not None and not compare(recent, slo.threshold)
                )
                verdicts.append(SloVerdict(
                    name=slo.name,
                    description=slo.description,
                    measure=slo.measure,
                    threshold=slo.threshold,
                    comparator=slo.comparator,
                    unit=slo.unit,
                    deterministic=slo.deterministic,
                    paper_ref=slo.paper_ref,
                    value=full,
                    recent_value=recent,
                    ok=ok,
                    fast_burn=(not ok) and recent_breach,
                    windows={"full": full, "recent": recent},
                ))
            reg = get_registry()
            if reg.enabled:
                for verdict in verdicts:
                    reg.counter(
                        obs_names.SLO_EVALUATIONS, slo=verdict.name
                    ).inc()
                    if not verdict.ok:
                        reg.counter(
                            obs_names.SLO_BREACHES, slo=verdict.name
                        ).inc()
        return verdicts

    # -- measures ---------------------------------------------------------- #

    def _measure(
        self, measure: str, ctx: SloContext, t0: float
    ) -> Optional[float]:
        if measure == "serves_degraded_fraction":
            return _degraded_fraction(ctx.serves, t0)
        if measure == "serves_max_interruption_s":
            return _max_interruption_s(ctx, t0)
        if measure.startswith("stat:"):
            # Scalars are whole-run quantities; no trailing-window view.
            if t0 > float("-inf"):
                return None
            key = measure.split(":", 1)[1]
            value = ctx.stats.get(key)
            return None if value is None else float(value)
        if measure.startswith("histogram_p95:") or measure.startswith(
            "histogram_max:"
        ):
            return _histogram_measure(measure, ctx.registry, t0)
        if measure.startswith("stage_p95:"):
            stage = measure.split(":", 1)[1]
            samples = ctx.stage_latencies.get(stage, ())
            values = sorted(d for (t, d) in samples if t >= t0)
            return _quantile(values, 0.95)
        raise ValueError(f"unknown SLO measure {measure!r}")


def _quantile(ordered: List[float], q: float) -> Optional[float]:
    """Linear-interpolated quantile of pre-sorted values (None if empty)."""
    if not ordered:
        return None
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _degraded_fraction(
    serves: Sequence[Mapping[str, object]], t0: float
) -> Optional[float]:
    rows = [s for s in serves if float(s.get("t", 0.0)) >= t0]
    if not rows:
        return None
    degraded = sum(1 for s in rows if s.get("source") in DEGRADED_SOURCES)
    return degraded / len(rows)


def _max_interruption_s(ctx: SloContext, t0: float) -> Optional[float]:
    """Longest span any single meeting spent continuously degraded.

    A meeting's interruption starts at its first degraded serve and ends
    at its next full-solution serve; a meeting still degraded when the
    run ends is charged through ``duration_s`` (it never recovered).
    """
    rows = [s for s in ctx.serves if float(s.get("t", 0.0)) >= t0]
    if not rows:
        return None
    per_meeting: Dict[str, List[Tuple[float, bool]]] = {}
    for row in rows:
        meeting = str(row.get("meeting", ""))
        degraded = row.get("source") in DEGRADED_SOURCES
        per_meeting.setdefault(meeting, []).append(
            (float(row.get("t", 0.0)), degraded)
        )
    worst = 0.0
    for entries in per_meeting.values():
        start: Optional[float] = None
        for t, degraded in entries:
            if degraded and start is None:
                start = t
            elif not degraded and start is not None:
                worst = max(worst, t - start)
                start = None
        if start is not None:
            worst = max(worst, ctx.duration_s - start)
    return worst


def _histogram_measure(
    measure: str, registry: Optional[MetricsRegistry], t0: float
) -> Optional[float]:
    if registry is None or not registry.enabled:
        return None
    # Registry histograms pool the whole run; no trailing-window view.
    if t0 > float("-inf"):
        return None
    kind, name = measure.split(":", 1)
    with registry._lock:
        histograms = [
            h for h in registry._histograms.values() if h.key[0] == name
        ]
    values: List[float] = []
    for h in histograms:
        if not h.count:
            continue
        values.append(h.max if kind == "histogram_max" else h.percentile(95))
    if not values:
        return None
    return max(values)
