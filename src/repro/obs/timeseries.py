"""In-memory time-series store: bounded rings of (t, value) samples.

The metrics registry (`repro.obs.registry`) holds *cumulative* state —
counters only go up, histograms pool all observations since enable.  The
paper's operational evaluation (Figs. 7/8 timelines, Fig. 12 latency
envelope) instead needs *windowed* views: "what was the solve-latency
p95 over the last 30 simulated seconds", "how fast were fallbacks
engaging between t=10 and t=20".  This module stores periodic samples in
bounded per-series ring buffers and answers windowed percentile / rate
queries over them.

Determinism: samples are keyed by *simulated* time supplied by the
caller, values come from the deterministic registry state, and window
statistics use the same nearest-rank percentile rule as the registry's
histograms — so two seeded runs produce identical stores.

Like the registry and the event log, the store is **off by default**:
install one with :func:`record_timeseries` / :func:`set_store`, and call
sites pay a single ``active_store() is None`` check when no store is
installed.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from . import names as obs_names
from .registry import MetricsRegistry, get_registry

#: Default per-series ring capacity (samples, not seconds).
DEFAULT_SERIES_CAPACITY = 2048

#: Key type mirroring the registry's: (name, sorted label pairs).
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile over a sorted copy (same rule as Histogram)."""
    if not values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if p == 0.0:
        return ordered[0]
    rank = max(1, int(round(p / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class WindowStats:
    """Summary of one series over a ``[t0, t1]`` window."""

    count: int
    min: float
    max: float
    mean: float
    p50: float
    p95: float
    p99: float
    #: (last - first) / (t_last - t_first) — the average slope across the
    #: window; for sampled cumulative counters this is the event rate.
    rate_per_s: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "mean": round(self.mean, 6),
            "p50": round(self.p50, 6),
            "p95": round(self.p95, 6),
            "p99": round(self.p99, 6),
            "rate_per_s": round(self.rate_per_s, 6),
        }


_EMPTY = WindowStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class Series:
    """One bounded ring of (t, value) samples."""

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 capacity: int) -> None:
        self.name = name
        self.labels = labels
        self._points: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def record(self, t: float, value: float) -> None:
        self._points.append((t, value))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def window(self, t0: float = float("-inf"),
               t1: float = float("inf")) -> WindowStats:
        """Statistics over samples with ``t0 <= t <= t1``."""
        selected = [(t, v) for t, v in self._points if t0 <= t <= t1]
        if not selected:
            return _EMPTY
        values = [v for _, v in selected]
        t_first, v_first = selected[0]
        t_last, v_last = selected[-1]
        span = t_last - t_first
        rate = (v_last - v_first) / span if span > 0 else 0.0
        return WindowStats(
            count=len(values),
            min=min(values),
            max=max(values),
            mean=sum(values) / len(values),
            p50=_percentile(values, 50.0),
            p95=_percentile(values, 95.0),
            p99=_percentile(values, 99.0),
            rate_per_s=rate,
        )


class TimeSeriesStore:
    """Bounded per-series ring buffers with windowed queries.

    Series are created on first :meth:`record`, keyed exactly like the
    registry's instruments: ``(name, sorted label pairs)``.
    """

    def __init__(self, capacity: int = DEFAULT_SERIES_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._series: Dict[SeriesKey, Series] = {}
        self._lock = threading.Lock()
        self.points_recorded = 0

    @staticmethod
    def _key(name: str, labels: Dict[str, str]) -> SeriesKey:
        return (name, tuple(sorted(labels.items())))

    def series(self, name: str, **labels: str) -> Series:
        key = self._key(name, labels)
        found = self._series.get(key)
        if found is not None:
            return found
        with self._lock:
            found = self._series.get(key)
            if found is None:
                found = Series(name, key[1], self.capacity)
                self._series[key] = found
            return found

    def record(self, name: str, t: float, value: float, **labels: str) -> None:
        self.series(name, **labels).record(t, float(value))
        self.points_recorded += 1

    def window(self, name: str, t0: float = float("-inf"),
               t1: float = float("inf"), **labels: str) -> WindowStats:
        key = self._key(name, labels)
        found = self._series.get(key)
        return found.window(t0, t1) if found is not None else _EMPTY

    def series_keys(self) -> List[SeriesKey]:
        return sorted(self._series.keys())

    def __len__(self) -> int:
        return len(self._series)

    # -- registry bridge -------------------------------------------------- #

    def sample_registry(self, registry: Optional[MetricsRegistry],
                        t: float) -> int:
        """Sample every counter/gauge (and histogram count) at time ``t``.

        Counters sample their cumulative value (use :meth:`window`'s
        ``rate_per_s`` for rates); gauges their current value; histograms
        contribute ``<name>:count`` sampled-count series.  Returns the
        number of points recorded.
        """
        if registry is None or not registry.enabled:
            return 0
        with registry._lock:
            counters = list(registry._counters.values())
            gauges = list(registry._gauges.values())
            histograms = list(registry._histograms.values())
        before = self.points_recorded
        for c in counters:
            self.record(c.key[0], t, c.value, **dict(c.key[1]))
        for g in gauges:
            self.record(g.key[0], t, g.value, **dict(g.key[1]))
        for h in histograms:
            self.record(f"{h.key[0]}:count", t, h.count, **dict(h.key[1]))
        recorded = self.points_recorded - before
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.TIMESERIES_POINTS).inc(recorded)
            reg.gauge(obs_names.TIMESERIES_SERIES).set(len(self._series))
        return recorded

    def to_dict(self) -> Dict[str, object]:
        """Deterministic summary (per-series full-window stats)."""
        out = []
        for key in self.series_keys():
            series = self._series[key]
            out.append({
                "name": key[0],
                "labels": dict(key[1]),
                "points": len(series),
                "window": series.window().to_dict(),
            })
        return {"series": out, "points_recorded": self.points_recorded}


# --------------------------------------------------------------------- #
# The process-wide slot (off by default)
# --------------------------------------------------------------------- #

_STORE: Optional[TimeSeriesStore] = None


def active_store() -> Optional[TimeSeriesStore]:
    """The installed :class:`TimeSeriesStore`, or ``None`` (off)."""
    return _STORE


def set_store(store: Optional[TimeSeriesStore]) -> None:
    """Install (or, with ``None``, remove) the process-wide store."""
    global _STORE
    _STORE = store


@contextmanager
def record_timeseries(
    store: Optional[TimeSeriesStore] = None,
    capacity: int = DEFAULT_SERIES_CAPACITY,
) -> Iterator[TimeSeriesStore]:
    """Context manager: install a store, then restore the previous one."""
    global _STORE
    previous = _STORE
    _STORE = store if store is not None else TimeSeriesStore(capacity=capacity)
    try:
        yield _STORE
    finally:
        _STORE = previous
