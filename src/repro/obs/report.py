"""Timeline reconstruction and run-report rendering.

Turns the raw telemetry of one run — the event log, the SLO verdicts,
the time-series store, the registry — into the operator-facing views
behind ``repro obs report`` and ``repro obs timeline <meeting>``:

* :func:`meeting_timeline` / :func:`format_timeline` reconstruct the
  causal per-meeting timeline (SEMB report → re-solve → TMMBR push →
  subscription change), grouping events by correlation id so one chain
  reads top-to-bottom even when it crossed shards and pool workers;
* :func:`format_slo_verdicts` renders the SLO engine's burn-rate
  verdicts as a PASS/FAIL/BURN table;
* :func:`report_dict` / :func:`format_report` assemble the full report
  (text and JSON) for a run.

Pure functions over already-collected data — nothing here records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .events import Event, EventLog
from .slo import SloVerdict

#: Attribute keys surfaced inline in timeline rows, in render order.
_TIMELINE_ATTRS = (
    "trigger", "source", "fault", "reason", "coalesced", "folded_into",
    "previous_shard", "changed", "changes", "publishers", "delivered",
    "iterations", "idle_s",
)


def meeting_timeline(
    events: Sequence[Event], meeting: str
) -> List[Event]:
    """Events concerning ``meeting``, in causal order (t, then seq)."""
    rows = [e for e in events if e.meeting == meeting]
    rows.sort(key=lambda e: (e.t, e.seq))
    return rows


def correlation_chains(events: Sequence[Event]) -> Dict[str, List[Event]]:
    """Group events by correlation id, each chain in causal order.

    Events without a cid are grouped under ``""``.
    """
    chains: Dict[str, List[Event]] = {}
    for event in sorted(events, key=lambda e: (e.t, e.seq)):
        chains.setdefault(event.cid, []).append(event)
    return chains


def _attr_text(event: Event) -> str:
    parts: List[str] = []
    for key in _TIMELINE_ATTRS:
        if key in event.attrs:
            parts.append(f"{key}={event.attrs[key]}")
    for key in sorted(event.attrs):
        if key not in _TIMELINE_ATTRS:
            parts.append(f"{key}={event.attrs[key]}")
    return " ".join(parts)


def format_timeline(
    events: Sequence[Event], meeting: str, title: str = ""
) -> str:
    """Render one meeting's causal timeline as aligned text.

    New correlation chains are separated by a blank line, so each
    SEMB-report → solve → TMMBR → subscription-change causal unit reads
    as one block::

        t=3.250s  [chaos-0#2] semb_report          shard=s0 trigger=event
        t=3.500s  [chaos-0#2] solve_served         shard=s0 source=solve
        t=3.500s  [chaos-0#2] tmmbr_push           publishers=3
        t=3.500s  [chaos-0#2] subscription_change  changed=2
    """
    rows = meeting_timeline(events, meeting)
    header = title or f"timeline for {meeting}"
    if not rows:
        return f"{header}: no events"
    lines = [f"{header} — {len(rows)} events"]
    cid_width = max(len(e.cid) for e in rows)
    previous_cid: Optional[str] = None
    for event in rows:
        if previous_cid is not None and event.cid != previous_cid:
            lines.append("")
        previous_cid = event.cid
        cid = f"[{event.cid}]".ljust(cid_width + 2) if event.cid else " " * (
            cid_width + 2
        )
        shard = f"shard={event.shard} " if event.shard else ""
        attrs = _attr_text(event)
        line = f"t={event.t:8.3f}s  {cid} {event.kind:<20s} {shard}{attrs}"
        lines.append(line.rstrip())
    return "\n".join(lines)


def timeline_dict(events: Sequence[Event], meeting: str) -> Dict[str, object]:
    """JSON form of one meeting's timeline, chains included."""
    rows = meeting_timeline(events, meeting)
    chains = correlation_chains(rows)
    return {
        "meeting": meeting,
        "events": [e.to_dict() for e in rows],
        "chains": [
            {
                "cid": cid,
                "kinds": [e.kind for e in chain],
                "t_first": round(chain[0].t, 6),
                "t_last": round(chain[-1].t, 6),
            }
            for cid, chain in sorted(chains.items())
            if cid
        ],
    }


def format_slo_verdicts(verdicts: Sequence[SloVerdict]) -> str:
    """Render SLO verdicts as a PASS/FAIL/BURN table::

        PASS kmr_iteration_bound      0.600 <= 1.000 ratio   (Sec. 5 / Fig. 6)
        FAIL stream_interruption_s    8.000 <= 6.000 s       (Sec. 7)
    """
    if not verdicts:
        return "no SLOs evaluated"
    lines = []
    for v in verdicts:
        word = v.verdict_word()
        if v.value is None:
            body = f"{v.name:<24s} no data ({v.measure})"
        else:
            body = (
                f"{v.name:<24s} {v.value:.3f} {v.comparator} "
                f"{v.threshold:.3f} {v.unit}"
            )
        ref = f"  ({v.paper_ref})" if v.paper_ref else ""
        lines.append(f"{word:<5s}{body}{ref}".rstrip())
    return "\n".join(lines)


def report_dict(
    scenario: str,
    seed: int,
    verdicts: Sequence[SloVerdict],
    log: Optional[EventLog] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the machine-readable ``repro obs report`` payload."""
    out: Dict[str, object] = {
        "scenario": scenario,
        "seed": seed,
        "slo": [v.to_dict() for v in verdicts],
        "slo_ok": all(v.ok for v in verdicts),
    }
    if log is not None:
        out["events"] = {
            "schema": log.header_dict()["schema"],
            "emitted": log.emitted,
            "retained": len(log),
            "dropped": log.dropped,
            "kinds": log.kinds(),
            "digest": log.digest(),
        }
    if extra:
        out.update(extra)
    return out


def format_report(
    scenario: str,
    seed: int,
    verdicts: Sequence[SloVerdict],
    log: Optional[EventLog] = None,
    summary: str = "",
) -> str:
    """Assemble the human-readable ``repro obs report`` text."""
    sections: List[str] = []
    if summary:
        sections.append(summary.rstrip())
    sections.append("slo verdicts:\n" + format_slo_verdicts(verdicts))
    if log is not None:
        kinds = "  ".join(f"{k}={n}" for k, n in log.kinds().items())
        sections.append(
            f"events: emitted={log.emitted} retained={len(log)} "
            f"dropped={log.dropped}\n  {kinds}"
        )
    return "\n\n".join(sections)
