"""Structured event log: the causal record of "what happened to whom".

While the metrics registry answers "how fast / how often" and the KMR
trace answers "what did the solver decide", the event log answers *"why
did subscriber S drop to 360p at t=12.4s"*: every configuration change is
recorded as a small structured event carrying a **correlation id** minted
at cluster ingress (the SEMB/global-picture report) and propagated through
the shard scheduler, the solve service, the solution cache and the
TMMBR/feedback delivery — so one chain of events reconstructs into a
causal per-meeting timeline (``repro obs timeline <meeting>``).

Design constraints mirror the registry's:

1. **Off-by-default-cheap.**  No log is installed by default;
   instrumented call sites pay one ``active_event_log() is None`` check.
   Install one with :func:`record_events` (context manager) or
   :func:`set_event_log`.
2. **Deterministic.**  Events carry *simulated* time only, a per-log
   monotonic sequence number, and correlation ids minted from per-meeting
   counters — two runs of the same seeded scenario produce byte-identical
   JSONL (the chaos subsystem enforces this).
3. **Bounded.**  The log is a ring buffer; overflow evicts the oldest
   events and counts them in ``dropped``.

The JSONL schema (``repro.events/v1``) is one object per line: a
``{"record": "meta", ...}`` header, then one ``{"record": "event", ...}``
object per retained event.  ``docs/OBSERVABILITY.md`` documents the
schema and every built-in event kind.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Union

from . import names as obs_names
from .registry import get_registry

#: Schema identifier stamped into every event-log header.
EVENTS_SCHEMA = "repro.events/v1"

#: Default ring-buffer capacity.
DEFAULT_CAPACITY = 8192

# --------------------------------------------------------------------- #
# Built-in event kinds (the causal vocabulary)
# --------------------------------------------------------------------- #

#: A SEMB/global-picture report reached cluster ingress (mints the cid).
SEMB_REPORT = "semb_report"
#: A report was folded into an already-pending solve request.
REPORT_COALESCED = "report_coalesced"
#: The scheduler synthesized a max-interval refresh (Fig. 12 ceiling).
TIME_TRIGGER = "time_trigger"
#: The solve service committed a configuration (source: solve / cache /
#: fallback / shed).
SOLVE_SERVED = "solve_served"
#: A TMMBR configuration push reached the meeting's clients.
TMMBR_PUSH = "tmmbr_push"
#: A TMMBR push was lost in flight (clients keep the previous config).
TMMBR_LOST = "tmmbr_lost"
#: The applied configuration changed at least one (subscriber, publisher)
#: stream assignment.
SUBSCRIPTION_CHANGE = "subscription_change"
#: A chaos fault was applied.
FAULT_INJECTED = "fault_injected"
#: A controller shard was taken down (Sec. 7 handover).
SHARD_KILLED = "shard_killed"
#: A controller shard joined the ring.
SHARD_ADDED = "shard_added"
#: A meeting was re-homed onto another shard.
MEETING_REHOMED = "meeting_rehomed"
#: A stream event entered a meeting's ingress mailbox (mints the cid of
#: the decision window it opens).
INGRESS_ENQUEUED = "ingress_enqueued"
#: A decision window closed: its mailbox batch was drained for a solve.
INGRESS_DEQUEUED = "ingress_dequeued"
#: The backpressure ladder shed a decision to the single-stream fallback.
INGRESS_SHED = "ingress_shed"

#: Every built-in event kind, for docs and validation.
ALL_EVENT_KINDS = (
    SEMB_REPORT,
    REPORT_COALESCED,
    TIME_TRIGGER,
    SOLVE_SERVED,
    TMMBR_PUSH,
    TMMBR_LOST,
    SUBSCRIPTION_CHANGE,
    FAULT_INJECTED,
    SHARD_KILLED,
    SHARD_ADDED,
    MEETING_REHOMED,
    INGRESS_ENQUEUED,
    INGRESS_DEQUEUED,
    INGRESS_SHED,
)


@dataclass
class Event:
    """One structured event.

    Attributes:
        t: simulated seconds (never wall clock — determinism).
        seq: per-log monotonic sequence number (total order at equal t).
        kind: event kind (see the built-in vocabulary above).
        meeting: meeting id the event concerns ("" for cluster-wide).
        cid: correlation id linking this event to its causal chain.
        shard: shard the event happened on ("" when not shard-scoped).
        attrs: small JSON-friendly payload (sorted on encode).
    """

    t: float
    seq: int
    kind: str
    meeting: str = ""
    cid: str = ""
    shard: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "record": "event",
            "t": round(self.t, 6),
            "seq": self.seq,
            "kind": self.kind,
            "meeting": self.meeting,
            "cid": self.cid,
            "shard": self.shard,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "Event":
        return cls(
            t=float(row["t"]),
            seq=int(row["seq"]),
            kind=str(row["kind"]),
            meeting=str(row.get("meeting", "")),
            cid=str(row.get("cid", "")),
            shard=str(row.get("shard", "")),
            attrs=dict(row.get("attrs", {})),
        )


class EventLog:
    """A bounded, deterministic, in-memory event log.

    Thread-safe enough for the repo's GIL-bound workloads: emission takes
    a lock only for the sequence counter and ring append.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.emitted = 0
        self.dropped = 0
        self._cid_counters: Dict[str, int] = {}

    # -- emission -------------------------------------------------------- #

    def mint(self, meeting: str) -> str:
        """Mint a deterministic correlation id for one meeting.

        Ids are ``<meeting>#<n>`` with a per-meeting counter, so replayed
        seeded runs mint identical ids in identical order.
        """
        with self._lock:
            n = self._cid_counters.get(meeting, 0) + 1
            self._cid_counters[meeting] = n
        return f"{meeting}#{n}"

    def last_cid(self, meeting: str) -> str:
        """The most recently minted cid for ``meeting`` ("" before any).

        Lets chains that mint a *successor* cid (time-trigger refreshes,
        re-home degradations) stamp a ``parent_cid`` attribute linking to
        their predecessor, so trace trees keep lineage instead of
        orphaning the new chain.
        """
        with self._lock:
            n = self._cid_counters.get(meeting, 0)
        return f"{meeting}#{n}" if n else ""

    def emit(
        self,
        kind: str,
        t: float,
        meeting: str = "",
        cid: str = "",
        shard: str = "",
        **attrs: object,
    ) -> Event:
        """Append one event; evicts the oldest on overflow."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            event = Event(
                t=t,
                seq=seq,
                kind=kind,
                meeting=meeting,
                cid=cid,
                shard=shard,
                attrs=attrs,
            )
            evicted = len(self._events) >= self.capacity
            if evicted:
                self.dropped += 1
            self._events.append(event)
            self.emitted += 1
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.EVENTS_EMITTED, kind=kind).inc()
            if evicted:
                reg.counter(obs_names.EVENTS_DROPPED).inc()
        return event

    # -- access ---------------------------------------------------------- #

    @property
    def events(self) -> List[Event]:
        """Retained events, in emission order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def for_meeting(self, meeting: str) -> List[Event]:
        """Retained events concerning one meeting, in order."""
        return [e for e in self.events if e.meeting == meeting]

    def kinds(self) -> Dict[str, int]:
        """Event counts per kind (sorted)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    # -- serialization ---------------------------------------------------- #

    def header_dict(self) -> Dict[str, object]:
        return {
            "record": "meta",
            "schema": EVENTS_SCHEMA,
            "events": len(self._events),
            "emitted": self.emitted,
            "dropped": self.dropped,
        }

    def to_jsonl_lines(self) -> List[str]:
        rows = [self.header_dict()] + [e.to_dict() for e in self.events]
        return [
            json.dumps(row, sort_keys=True, separators=(",", ":"))
            for row in rows
        ]

    def to_jsonl(self) -> str:
        return "\n".join(self.to_jsonl_lines()) + "\n"

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the log (header + events) to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    def digest(self) -> str:
        """SHA-256 over the canonical JSONL encoding (determinism checks)."""
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()

    @classmethod
    def from_jsonl_lines(cls, lines: Iterable[str]) -> "EventLog":
        """Reconstruct a log from its JSONL encoding (round-trips)."""
        header: Optional[Dict[str, object]] = None
        events: List[Event] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("record") == "meta":
                if row.get("schema") != EVENTS_SCHEMA:
                    raise ValueError(
                        f"unsupported event schema {row.get('schema')!r}"
                    )
                header = row
            elif row.get("record") == "event":
                events.append(Event.from_dict(row))
        log = cls(capacity=max(DEFAULT_CAPACITY, len(events) or 1))
        for event in events:
            log._events.append(event)
        log._seq = (events[-1].seq + 1) if events else 0
        log.emitted = int(header.get("emitted", len(events))) if header else len(events)
        log.dropped = int(header.get("dropped", 0)) if header else 0
        return log

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "EventLog":
        return cls.from_jsonl_lines(Path(path).read_text().splitlines())


# --------------------------------------------------------------------- #
# The process-wide slot (off by default)
# --------------------------------------------------------------------- #

_LOG: Optional[EventLog] = None


def active_event_log() -> Optional[EventLog]:
    """The installed :class:`EventLog`, or ``None`` (events off)."""
    return _LOG


def set_event_log(log: Optional[EventLog]) -> None:
    """Install (or, with ``None``, remove) the process-wide event log."""
    global _LOG
    _LOG = log


@contextmanager
def record_events(
    log: Optional[EventLog] = None, capacity: int = DEFAULT_CAPACITY
) -> Iterator[EventLog]:
    """Context manager: record events, then restore the previous log.

    ::

        with record_events() as log:
            cluster.tick(now_s=1.0)
        log.write_jsonl("events.jsonl")
    """
    global _LOG
    previous = _LOG
    _LOG = log if log is not None else EventLog(capacity=capacity)
    try:
        yield _LOG
    finally:
        _LOG = previous


# --------------------------------------------------------------------- #
# Correlation context (for call sites not threaded with explicit cids)
# --------------------------------------------------------------------- #


class _CidState(threading.local):
    def __init__(self) -> None:
        self.cid = ""


_CID = _CidState()


def current_correlation() -> str:
    """The correlation id of the innermost open scope ("" when none)."""
    return _CID.cid


@contextmanager
def correlation_scope(cid: str) -> Iterator[str]:
    """Bind a correlation id to this thread for the scope's duration."""
    previous = _CID.cid
    _CID.cid = cid
    try:
        yield cid
    finally:
        _CID.cid = previous
