"""Empirical per-stage latency profiles (``repro.latency_profile/v1``).

A :class:`LatencyProfile` summarizes the measured stage durations of a
set of trace trees into bounded per-stage sample reservoirs, and exports
them as a canonical JSON artifact.  The profile closes the ROADMAP loop
on ``deploy/ingress_stream.ModeledBackend``: instead of the analytic
M/M/1 closed form, the modeled fleet can **sample solve service times
from a recorded profile** — seeded, byte-deterministic, and traceable
back to the run that produced it.

Determinism contract:

* ``observe`` order is the only input; reservoirs use the registry's
  stride-doubling subsample, no RNG.
* :meth:`sample` hashes ``(seed, stage, key)`` into a uniform in
  ``[0, 1)`` and inverts the empirical CDF — the same draw for the same
  key regardless of call order, so modeled fleets stay byte-identical
  across runs and across concurrency (the fleet benchmark double-run
  test enforces this).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .tree import TraceTree

#: Schema identifier stamped into every profile artifact.
PROFILE_SCHEMA = "repro.latency_profile/v1"

#: Per-stage reservoir capacity (stride-doubling beyond this).
DEFAULT_SAMPLES = 2048


class _StageStats:
    """Bounded duration samples + exact count/sum/min/max for one stage."""

    __slots__ = (
        "count",
        "sum_s",
        "min_s",
        "max_s",
        "samples",
        "capacity",
        "_stride",
        "_next_sample",
    )

    def __init__(self, capacity: int) -> None:
        self.count = 0
        self.sum_s = 0.0
        self.min_s = float("inf")
        self.max_s = float("-inf")
        self.samples: List[float] = []
        self.capacity = max(1, capacity)
        self._stride = 1
        self._next_sample = 0

    def observe(self, value: float) -> None:
        index = self.count
        self.count += 1
        self.sum_s += value
        self.min_s = min(self.min_s, value)
        self.max_s = max(self.max_s, value)
        if index != self._next_sample:
            return
        self._next_sample = index + self._stride
        if len(self.samples) >= self.capacity:
            self.samples = self.samples[::2]
            self._stride *= 2
            self._next_sample = index + self._stride
        self.samples.append(value)


class LatencyProfile:
    """Empirical per-stage latency distributions with seeded sampling."""

    def __init__(
        self, source: str = "", samples_per_stage: int = DEFAULT_SAMPLES
    ) -> None:
        self.source = source
        self.samples_per_stage = samples_per_stage
        self._stages: Dict[str, _StageStats] = {}

    # -- building ---------------------------------------------------------- #

    def observe(self, stage: str, duration_s: float) -> None:
        stats = self._stages.get(stage)
        if stats is None:
            stats = self._stages[stage] = _StageStats(
                self.samples_per_stage
            )
        stats.observe(duration_s)

    def observe_tree(self, tree: TraceTree) -> None:
        """Fold every critical-path span of ``tree`` (and its attached
        subtrees) into the profile."""
        for node in tree.walk():
            for span in node.critical_path():
                self.observe(span.stage, span.duration_s)

    # -- reading ------------------------------------------------------------ #

    def stages(self) -> List[str]:
        return sorted(self._stages)

    def count(self, stage: str) -> int:
        stats = self._stages.get(stage)
        return stats.count if stats else 0

    def mean(self, stage: str) -> float:
        stats = self._stages.get(stage)
        if not stats or not stats.count:
            return 0.0
        return stats.sum_s / stats.count

    def quantile(self, stage: str, q: float) -> float:
        """Empirical ``q``-quantile of a stage's retained samples
        (linear interpolation between order statistics)."""
        stats = self._stages.get(stage)
        if not stats or not stats.samples:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        ordered = sorted(stats.samples)
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def sample(self, stage: str, key: str, seed: int = 0) -> float:
        """A deterministic draw from a stage's empirical distribution.

        Hashes ``(seed, stage, key)`` into a uniform and inverts the
        CDF, so a given key always draws the same value — independent of
        call order, thread, or how many other draws happened.
        """
        payload = f"{seed}|{stage}|{key}".encode("utf-8")
        u = (
            int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")
            / 2.0**64
        )
        return self.quantile(stage, u)

    # -- canonical encoding --------------------------------------------------- #

    def to_dict(self) -> Dict[str, object]:
        stages: Dict[str, object] = {}
        for name in self.stages():
            stats = self._stages[name]
            stages[name] = {
                "count": stats.count,
                "sum_s": round(stats.sum_s, 9),
                "min_s": round(stats.min_s, 9),
                "max_s": round(stats.max_s, 9),
                "samples": [round(v, 9) for v in sorted(stats.samples)],
            }
        return {
            "schema": PROFILE_SCHEMA,
            "source": self.source,
            "samples_per_stage": self.samples_per_stage,
            "stages": stages,
        }

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "LatencyProfile":
        if row.get("schema") != PROFILE_SCHEMA:
            raise ValueError(
                f"unsupported profile schema {row.get('schema')!r}"
            )
        profile = cls(
            source=str(row.get("source", "")),
            samples_per_stage=int(
                row.get("samples_per_stage", DEFAULT_SAMPLES)
            ),
        )
        for name, payload in dict(row.get("stages", {})).items():
            stats = _StageStats(profile.samples_per_stage)
            stats.count = int(payload["count"])
            stats.sum_s = float(payload["sum_s"])
            stats.min_s = float(payload["min_s"])
            stats.max_s = float(payload["max_s"])
            stats.samples = [float(v) for v in payload["samples"]]
            profile._stages[name] = stats
        return profile

    @classmethod
    def read_json(cls, path: Union[str, Path]) -> "LatencyProfile":
        return cls.from_dict(json.loads(Path(path).read_text()))


def build_profile(
    trees: Iterable[TraceTree],
    source: str = "",
    samples_per_stage: Optional[int] = None,
) -> LatencyProfile:
    """Build a profile from assembled trace trees."""
    profile = LatencyProfile(
        source=source,
        samples_per_stage=samples_per_stage or DEFAULT_SAMPLES,
    )
    for tree in trees:
        profile.observe_tree(tree)
    return profile
