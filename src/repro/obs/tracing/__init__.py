"""Causal trace plane: per-decision trace trees assembled from the
cid-threaded event log, critical-path latency attribution, measured
latency profiles, and Perfetto/waterfall exports.

See ``docs/TRACING.md`` for the trace model and stage vocabulary.
"""

from .assembler import (
    DEFAULT_MAX_OPEN,
    DEFAULT_RETENTION,
    TraceAssembler,
    assemble_trees,
)
from .export import (
    chrome_trace,
    format_waterfall,
    waterfall,
    write_chrome_trace,
)
from .profile import (
    DEFAULT_SAMPLES,
    PROFILE_SCHEMA,
    LatencyProfile,
    build_profile,
)
from .tree import (
    ALL_STAGES,
    LINK_COALESCED,
    LINK_LINEAGE,
    STAGE_DELIVERY,
    STAGE_MAILBOX_DWELL,
    STAGE_SCHED_WAIT,
    STAGE_SHED,
    STAGE_SOLVE,
    TRACE_SCHEMA,
    StageSpan,
    TraceTree,
)

__all__ = [
    "ALL_STAGES",
    "DEFAULT_MAX_OPEN",
    "DEFAULT_RETENTION",
    "DEFAULT_SAMPLES",
    "LINK_COALESCED",
    "LINK_LINEAGE",
    "LatencyProfile",
    "PROFILE_SCHEMA",
    "STAGE_DELIVERY",
    "STAGE_MAILBOX_DWELL",
    "STAGE_SCHED_WAIT",
    "STAGE_SHED",
    "STAGE_SOLVE",
    "StageSpan",
    "TRACE_SCHEMA",
    "TraceAssembler",
    "TraceTree",
    "assemble_trees",
    "build_profile",
    "chrome_trace",
    "format_waterfall",
    "waterfall",
    "write_chrome_trace",
]
