"""Per-decision trace trees and critical-path stage attribution.

A **trace tree** is the causal record of one orchestration decision,
reassembled offline from the cid-threaded ``repro.events/v1`` log.  Its
*primary chain* is the ordered list of events carrying the decision's
correlation id — minted at ingress (``ingress_enqueued`` /
``semb_report``), by a time-trigger refresh, or by a re-home — through
the mailbox/scheduler dwell, the solve service, and the terminal
``tmmbr_push``/``tmmbr_lost`` delivery.  *Children* hang off the chain:

* **coalesced fan-in** — envelopes folded into the same decision window
  carry their own cids; their ``ingress_enqueued`` trees attach under
  the decision that absorbed them (``link="coalesced"``);
* **lineage** — a chain whose root event carries a ``parent_cid``
  attribute (time-trigger refreshes, re-home degradations) attaches
  under its predecessor's tree (``link="lineage"``).

**Critical-path extraction** walks the primary chain and attributes the
decision's end-to-end virtual latency to named stages.  Stages are the
*gaps between consecutive chain events*, so by construction the stage
durations telescope: they sum exactly to the root's end-to-end latency
(``closed_at_s - opened_at_s``) on the virtual clock — the property the
perf gate and the hypothesis suite verify.

Everything here is pure data + arithmetic over recorded events: two
identical event logs assemble into byte-identical trees
(``docs/TRACING.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..events import (
    INGRESS_DEQUEUED,
    INGRESS_ENQUEUED,
    INGRESS_SHED,
    MEETING_REHOMED,
    SEMB_REPORT,
    SOLVE_SERVED,
    TIME_TRIGGER,
    TMMBR_LOST,
    TMMBR_PUSH,
    Event,
)

#: Schema identifier stamped into canonical trace encodings.
TRACE_SCHEMA = "repro.trace/v1"

# --------------------------------------------------------------------- #
# Stage vocabulary (the named rungs of the latency attribution)
# --------------------------------------------------------------------- #

#: Mailbox dwell: ingress enqueue -> decision-window drain (the
#: backpressure/coalesce window of the event-driven plane).
STAGE_MAILBOX_DWELL = "mailbox_dwell"
#: Scheduler wait: SEMB report -> its debounced due time (the Fig. 12
#: min-interval coalesce window of the round-based scheduler).
STAGE_SCHED_WAIT = "sched_wait"
#: Solve: from the last wait boundary to the committed solve service
#: (cache hit, pool solve, or modeled virtual service time).
STAGE_SOLVE = "solve"
#: Delivery: committed solve -> TMMBR push/loss at the clients.
STAGE_DELIVERY = "delivery"
#: Shed: the backpressure ladder degraded the decision to the Sec. 7
#: single-stream fallback.
STAGE_SHED = "shed"

#: Every stage name, for docs and validation (docs/TRACING.md).
ALL_STAGES = (
    STAGE_MAILBOX_DWELL,
    STAGE_SCHED_WAIT,
    STAGE_SOLVE,
    STAGE_DELIVERY,
    STAGE_SHED,
)

#: Event kinds that terminate a primary chain.
TERMINAL_KINDS = frozenset({TMMBR_PUSH, TMMBR_LOST})

#: Event kinds that sit on the primary chain (everything else attached
#: to a tree — coalesce markers, subscription changes — is context).
CHAIN_KINDS = frozenset({
    INGRESS_ENQUEUED,
    SEMB_REPORT,
    TIME_TRIGGER,
    MEETING_REHOMED,
    INGRESS_DEQUEUED,
    INGRESS_SHED,
    SOLVE_SERVED,
    TMMBR_PUSH,
    TMMBR_LOST,
})

#: Child-link kinds.
LINK_COALESCED = "coalesced"
LINK_LINEAGE = "lineage"


@dataclass
class StageSpan:
    """One critical-path stage: a named slice of virtual time."""

    stage: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "start_s": round(self.start_s, 6),
            "end_s": round(self.end_s, 6),
            "duration_s": round(self.duration_s, 9),
        }


@dataclass
class TraceTree:
    """One decision's causal trace: primary chain + attached children."""

    cid: str
    meeting: str
    #: Events carrying this chain's cid, in arrival order.
    events: List[Event] = field(default_factory=list)
    #: Attached subtrees (coalesced fan-in and lineage successors).
    children: List["TraceTree"] = field(default_factory=list)
    #: The cid this tree is attached under ("" for roots).
    parent_cid: str = ""
    #: "" (root) | "coalesced" | "lineage".
    link: str = ""
    #: True when a terminal delivery event closed the chain.
    complete: bool = False

    # -- chain geometry ------------------------------------------------- #

    def chain(self) -> List[Event]:
        """The primary chain: own events of chain kinds, time-ordered,
        truncated at (and including) the first terminal event."""
        ordered = sorted(
            (e for e in self.events if e.kind in CHAIN_KINDS),
            key=lambda e: (e.t, e.seq),
        )
        out: List[Event] = []
        for event in ordered:
            out.append(event)
            if event.kind in TERMINAL_KINDS:
                break
        return out

    @property
    def root(self) -> Event:
        """The chain-opening event (falls back to the earliest event)."""
        chain = self.chain()
        if chain:
            return chain[0]
        return min(self.events, key=lambda e: (e.t, e.seq))

    @property
    def opened_at_s(self) -> float:
        return self.root.t

    @property
    def closed_at_s(self) -> float:
        chain = self.chain()
        return chain[-1].t if chain else self.root.t

    @property
    def latency_s(self) -> float:
        """End-to-end virtual latency of the primary chain."""
        return self.closed_at_s - self.opened_at_s

    # -- critical path --------------------------------------------------- #

    def critical_path(self) -> List[StageSpan]:
        """Stage spans covering the chain end-to-end.

        The spans partition ``[opened_at_s, closed_at_s]`` with no gaps
        or overlaps, so their durations sum exactly to
        :attr:`latency_s` — the attribution-exactness invariant.
        """
        chain = self.chain()
        if len(chain) < 2:
            return []
        spans: List[StageSpan] = []
        prev = chain[0]
        for event in chain[1:]:
            spans.extend(_stages_between(chain[0], prev, event))
            prev = event
        return spans

    def stage_durations(self) -> Dict[str, float]:
        """Total attributed seconds per stage (sorted by stage name)."""
        out: Dict[str, float] = {}
        for span in self.critical_path():
            out[span.stage] = out.get(span.stage, 0.0) + span.duration_s
        return dict(sorted(out.items()))

    # -- tree walks ------------------------------------------------------- #

    def walk(self) -> List["TraceTree"]:
        """This tree then every attached subtree, depth-first."""
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out

    def event_count(self) -> int:
        """Events held by this tree and every attached subtree."""
        return sum(len(node.events) for node in self.walk())

    # -- canonical encoding ----------------------------------------------- #

    def to_dict(self) -> Dict[str, object]:
        """Canonical encoding (sorted children; recursion bottoms out
        because child links never cycle — see the assembler)."""
        return {
            "cid": self.cid,
            "meeting": self.meeting,
            "parent_cid": self.parent_cid,
            "link": self.link,
            "complete": self.complete,
            "opened_at_s": round(self.opened_at_s, 6),
            "closed_at_s": round(self.closed_at_s, 6),
            "latency_s": round(self.latency_s, 9),
            "events": [
                {"t": round(e.t, 6), "seq": e.seq, "kind": e.kind}
                for e in sorted(self.events, key=lambda e: (e.t, e.seq))
            ],
            "stages": [span.to_dict() for span in self.critical_path()],
            "children": [
                child.to_dict()
                for child in sorted(
                    self.children,
                    key=lambda c: (c.opened_at_s, c.root.seq, c.cid),
                )
            ],
        }


def _stages_between(
    root: Event, prev: Event, nxt: Event
) -> List[StageSpan]:
    """Name the stage(s) covering the gap ``prev -> nxt``.

    The SEMB-report -> solve gap is split at the request's recorded
    debounce deadline (``due_at_s``) into scheduler wait + solve, so the
    coalesce window and the serve delay are attributed separately; the
    split boundary is clamped into the gap, preserving the telescoping
    sum.
    """
    t0, t1 = prev.t, nxt.t
    if nxt.kind == INGRESS_DEQUEUED:
        return [StageSpan(STAGE_MAILBOX_DWELL, t0, t1)]
    if nxt.kind == INGRESS_SHED:
        return [StageSpan(STAGE_SHED, t0, t1)]
    if nxt.kind == SOLVE_SERVED:
        if prev is root and prev.kind == SEMB_REPORT and (
            "due_at_s" in prev.attrs
        ):
            due = min(max(float(prev.attrs["due_at_s"]), t0), t1)
            return [
                StageSpan(STAGE_SCHED_WAIT, t0, due),
                StageSpan(STAGE_SOLVE, due, t1),
            ]
        return [StageSpan(STAGE_SOLVE, t0, t1)]
    if nxt.kind in TERMINAL_KINDS:
        if prev.kind in (SOLVE_SERVED, INGRESS_SHED):
            return [StageSpan(STAGE_DELIVERY, t0, t1)]
        # No explicit solve event on this chain (modeled backends): the
        # whole remaining gap is the service time.
        return [StageSpan(STAGE_SOLVE, t0, t1)]
    return [StageSpan(STAGE_SOLVE, t0, t1)]
