"""Trace exports: Chrome trace-event JSON (Perfetto) and text waterfalls.

``chrome_trace`` renders assembled trace trees into the Chrome
trace-event format — open the file at https://ui.perfetto.dev (or
``chrome://tracing``) to see per-meeting swim-lanes of decision
pipelines, one complete "X" slice per critical-path stage.  Process ids
map to meetings and thread ids to decisions, assigned in sorted order so
the export is byte-deterministic.

``format_waterfall`` renders the same trees as a terminal-friendly
waterfall: one bar per stage scaled to the tree's end-to-end latency,
with coalesced fan-in and lineage children indented under their parent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from .tree import TraceTree

#: Bar width of the waterfall renderer.
_BAR_WIDTH = 40


def chrome_trace(trees: Iterable[TraceTree]) -> Dict[str, object]:
    """Encode trees as a Chrome trace-event JSON object.

    Timestamps are virtual seconds scaled to microseconds (the format's
    native unit); deterministic pid/tid assignment follows sorted
    meeting order then tree order.
    """
    roots = sorted(
        trees, key=lambda tr: (tr.meeting, tr.opened_at_s, tr.root.seq)
    )
    pids: Dict[str, int] = {}
    for tree in roots:
        pids.setdefault(tree.meeting or "(cluster)", len(pids) + 1)
    events: List[Dict[str, object]] = []
    for name, pid in pids.items():
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"meeting {name}"},
            }
        )
    tid_by_pid: Dict[int, int] = {}
    for tree in roots:
        pid = pids[tree.meeting or "(cluster)"]
        tid = tid_by_pid.get(pid, 0) + 1
        tid_by_pid[pid] = tid
        _emit_tree(events, tree, pid, tid)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _emit_tree(
    events: List[Dict[str, object]],
    tree: TraceTree,
    pid: int,
    tid: int,
) -> None:
    label = tree.cid or f"{tree.meeting}/ambient"
    if tree.latency_s > 0 or tree.critical_path():
        events.append(
            {
                "ph": "X",
                "name": f"decision {label}",
                "cat": "decision",
                "pid": pid,
                "tid": tid,
                "ts": round(tree.opened_at_s * 1e6, 3),
                "dur": round(tree.latency_s * 1e6, 3),
                "args": {
                    "cid": tree.cid,
                    "complete": tree.complete,
                    "link": tree.link,
                },
            }
        )
    for span in tree.critical_path():
        events.append(
            {
                "ph": "X",
                "name": span.stage,
                "cat": "stage",
                "pid": pid,
                "tid": tid,
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "args": {"cid": tree.cid},
            }
        )
    for child in sorted(
        tree.children, key=lambda c: (c.opened_at_s, c.root.seq, c.cid)
    ):
        _emit_tree(events, child, pid, tid)


def write_chrome_trace(
    trees: Iterable[TraceTree], path: Union[str, Path]
) -> Path:
    """Write the Chrome trace JSON for ``trees`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            chrome_trace(trees), sort_keys=True, separators=(",", ":")
        )
        + "\n"
    )
    return path


# --------------------------------------------------------------------- #
# Text waterfall
# --------------------------------------------------------------------- #


def waterfall(tree: TraceTree, indent: int = 0) -> List[str]:
    """Render one tree as indented waterfall lines."""
    pad = "  " * indent
    head = tree.cid or f"{tree.meeting}/ambient"
    status = "complete" if tree.complete else "open"
    link = f" [{tree.link}]" if tree.link else ""
    lines = [
        f"{pad}{head}{link} ({status})  "
        f"t={tree.opened_at_s:.3f}s  latency={tree.latency_s * 1e3:.2f}ms"
    ]
    total = tree.latency_s
    for span in tree.critical_path():
        if total > 0:
            offset = int(
                round((span.start_s - tree.opened_at_s) / total * _BAR_WIDTH)
            )
            width = max(
                1, int(round(span.duration_s / total * _BAR_WIDTH))
            )
        else:
            offset, width = 0, 1
        offset = min(offset, _BAR_WIDTH - 1)
        width = min(width, _BAR_WIDTH - offset)
        bar = " " * offset + "#" * width
        lines.append(
            f"{pad}  {span.stage:<14} |{bar:<{_BAR_WIDTH}}| "
            f"{span.duration_s * 1e3:8.2f}ms"
        )
    for child in sorted(
        tree.children, key=lambda c: (c.opened_at_s, c.root.seq, c.cid)
    ):
        lines.extend(waterfall(child, indent + 1))
    return lines


def format_waterfall(trees: Sequence[TraceTree], limit: int = 0) -> str:
    """Render trees (optionally only the first ``limit``) as one text
    waterfall block."""
    roots = sorted(
        trees, key=lambda tr: (tr.meeting, tr.opened_at_s, tr.root.seq)
    )
    shown = roots[:limit] if limit else roots
    lines: List[str] = []
    for tree in shown:
        lines.extend(waterfall(tree))
        lines.append("")
    if limit and len(roots) > limit:
        lines.append(f"... {len(roots) - limit} more trees not shown")
    return "\n".join(lines).rstrip() + "\n"
