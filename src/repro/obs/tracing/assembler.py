"""Streaming trace assembly: event log -> bounded per-meeting trace trees.

The assembler consumes ``repro.events/v1`` events (live, or replayed
from JSONL) and groups them into :class:`~.tree.TraceTree` instances by
correlation id.  Three linking rules build the tree structure:

1. **Chain grouping** — every event carrying cid ``C`` lands on the
   (single) open tree for ``C``; a terminal delivery event marks it
   complete and finalizes it.
2. **Coalesced fan-in** — an ``ingress_dequeued`` event with
   ``batch=k`` closes a decision window that absorbed ``k`` envelopes;
   the ``k-1`` non-anchor envelope trees (oldest pending enqueues for
   the meeting) re-attach as children of the anchor decision
   (``link="coalesced"``).
3. **Lineage** — a chain whose root event carries a ``parent_cid``
   attribute (time-trigger refreshes, re-home degradations) attaches
   under the named predecessor when that tree is still held
   (``link="lineage"``); otherwise it stands alone as a root.

Memory is bounded the same way the registry bounds histogram samples:
finalized trees enter a per-meeting **stride-doubling reservoir**
(capacity halves the kept set and doubles the stride when full), and the
set of *open* trees per meeting is capped (oldest force-finalized).
Every tree is conserved:

    ``assembled == exported + evicted + live``

where ``assembled`` counts finalized roots, ``exported`` counts roots
drained via :meth:`TraceAssembler.export`, ``evicted`` counts roots the
reservoirs dropped, and ``live`` counts roots currently retained.  The
invariant is enforced by test (satellite: bounded assembler memory).

Assembly is pure and deterministic: identical logs produce identical
trees, counters and digests, regardless of wall clock.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Tuple

from .. import names as obs_names
from .. import spans
from ..events import (
    INGRESS_DEQUEUED,
    INGRESS_ENQUEUED,
    MEETING_REHOMED,
    SEMB_REPORT,
    TIME_TRIGGER,
    Event,
)
from ..registry import get_registry
from .tree import (
    LINK_COALESCED,
    LINK_LINEAGE,
    TERMINAL_KINDS,
    TRACE_SCHEMA,
    TraceTree,
)

#: Finalized trees retained per meeting before reservoir thinning.
DEFAULT_RETENTION = 64

#: Open (un-terminated) trees allowed per meeting before the oldest is
#: force-finalized (guards against logs whose delivery events were
#: dropped by the ring buffer).
DEFAULT_MAX_OPEN = 256

#: Kinds that may *open* a chain (mint its cid).
ROOT_KINDS = frozenset({
    INGRESS_ENQUEUED,
    SEMB_REPORT,
    TIME_TRIGGER,
    MEETING_REHOMED,
})


class _TraceReservoir:
    """Bounded keep-every-Nth reservoir of finalized trees.

    Mirrors the stride-doubling scheme of ``registry.Histogram``: when
    the reservoir fills, every other kept tree is dropped and the
    sampling stride doubles, so retention degrades gracefully from
    "keep all" to "keep a uniform subsample" while memory stays
    ``O(capacity)``.  Both skipped-by-stride and dropped-on-halving
    trees count as evictions.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, capacity)
        self.trees: List[TraceTree] = []
        self._stride = 1
        self._index = 0
        self._next_sample = 0
        self.evicted = 0

    def add(self, tree: TraceTree) -> None:
        index = self._index
        self._index += 1
        if index != self._next_sample:
            self.evicted += 1
            return
        self._next_sample = index + self._stride
        if len(self.trees) >= self.capacity:
            dropped = self.trees[1::2]
            self.evicted += len(dropped)
            self.trees = self.trees[::2]
            self._stride *= 2
            self._next_sample = index + self._stride
        self.trees.append(tree)


class TraceAssembler:
    """Assemble cid-threaded events into bounded per-meeting trace trees."""

    def __init__(
        self,
        retention: int = DEFAULT_RETENTION,
        max_open: int = DEFAULT_MAX_OPEN,
    ) -> None:
        self.retention = retention
        self.max_open = max_open
        #: cid -> tree, for every tree still reachable (open or retained
        #: or attached as a child) — lets lineage/fan-in find targets.
        self._by_cid: Dict[str, TraceTree] = {}
        #: meeting -> open (un-finalized) root trees, oldest first.
        self._open: Dict[str, List[TraceTree]] = {}
        #: meeting -> open ingress_enqueued trees awaiting their
        #: decision window, oldest first (fan-in claiming pool).
        self._pending_enqueues: Dict[str, List[TraceTree]] = {}
        #: meeting -> reservoir of finalized root trees.
        self._done: Dict[str, _TraceReservoir] = {}
        self.assembled = 0
        self.exported = 0
        self.orphan_events = 0

    # -- feeding ----------------------------------------------------------- #

    def feed(self, event: Event) -> None:
        """Consume one event (events may arrive in any order; replayed
        logs are sorted by :meth:`assemble` first)."""
        if not event.cid:
            # Ambient cluster-wide event (faults, shard churn): count it
            # and retain it as a single-event context tree so nothing in
            # the log silently disappears.
            self.orphan_events += 1
            self._count(obs_names.TRACE_ORPHAN_EVENTS)
            tree = TraceTree(
                cid="", meeting=event.meeting, events=[event], complete=True
            )
            self._finalize(tree, event.meeting)
            return
        tree = self._by_cid.get(event.cid)
        if tree is None:
            tree = self._open_tree(event)
        tree.events.append(event)
        if event.kind == INGRESS_DEQUEUED:
            self._claim_coalesced(tree, event)
        if event.kind in TERMINAL_KINDS and tree.parent_cid == "" and (
            tree in self._open.get(tree.meeting, ())
        ):
            tree.complete = True
            self._open[tree.meeting].remove(tree)
            self._pending_enqueues.get(tree.meeting, [])[:] = [
                p
                for p in self._pending_enqueues.get(tree.meeting, [])
                if p is not tree
            ]
            self._finalize(tree, tree.meeting)

    def assemble(self, events: Iterable[Event]) -> None:
        """Feed a replayed log in canonical ``(t, seq)`` order."""
        for event in sorted(events, key=lambda e: (e.t, e.seq)):
            self.feed(event)

    def finish(self) -> None:
        """Flush every still-open tree into the finalized reservoirs."""
        for meeting in sorted(self._open):
            for tree in list(self._open[meeting]):
                self._open[meeting].remove(tree)
                self._finalize(tree, meeting)
        self._pending_enqueues.clear()

    # -- linking internals -------------------------------------------------- #

    def _open_tree(self, event: Event) -> TraceTree:
        tree = TraceTree(cid=event.cid, meeting=event.meeting, events=[])
        self._by_cid[event.cid] = tree
        parent_cid = str(event.attrs.get("parent_cid", ""))
        parent = (
            self._by_cid.get(parent_cid)
            if parent_cid and parent_cid != event.cid
            else None
        )
        if event.kind in ROOT_KINDS and parent is not None:
            # Lineage: successor chains (refreshes, re-homes) hang off
            # their predecessor instead of standing alone.
            tree.parent_cid = parent_cid
            tree.link = LINK_LINEAGE
            parent.children.append(tree)
            return tree
        opened = self._open.setdefault(event.meeting, [])
        opened.append(tree)
        if event.kind == INGRESS_ENQUEUED:
            self._pending_enqueues.setdefault(event.meeting, []).append(tree)
        while len(opened) > self.max_open:
            oldest = opened.pop(0)
            self._pending_enqueues.get(event.meeting, [])[:] = [
                p
                for p in self._pending_enqueues.get(event.meeting, [])
                if p is not oldest
            ]
            self._finalize(oldest, event.meeting)
        return tree

    def _claim_coalesced(self, anchor: TraceTree, event: Event) -> None:
        """Fold the non-anchor envelopes of a ``batch=k`` decision window
        under the anchor tree as ``coalesced`` children."""
        batch = int(event.attrs.get("batch", 1) or 1)
        pending = self._pending_enqueues.get(event.meeting, [])
        # The anchor envelope is its own chain; claim up to batch-1
        # *other* oldest pending envelopes.
        claimed: List[TraceTree] = []
        for candidate in list(pending):
            if len(claimed) >= batch - 1:
                break
            if candidate is anchor:
                continue
            if any(node is anchor for node in candidate.walk()):
                # The anchor already hangs under this envelope (possible
                # only in adversarial logs where a lineage chain anchors
                # a dequeue); claiming it would create a cycle.
                continue
            claimed.append(candidate)
        for child in claimed:
            pending.remove(child)
            opened = self._open.get(event.meeting, [])
            if child in opened:
                opened.remove(child)
            child.parent_cid = anchor.cid
            child.link = LINK_COALESCED
            child.complete = True
            anchor.children.append(child)
        if anchor in pending:
            pending.remove(anchor)

    def _finalize(self, tree: TraceTree, meeting: str) -> None:
        self.assembled += 1
        self._count(obs_names.TRACE_TREES_ASSEMBLED)
        reg = get_registry()
        if reg.enabled:
            for node in tree.walk():
                for stage_span in node.critical_path():
                    reg.histogram(
                        obs_names.TRACE_STAGE_SECONDS,
                        stage=stage_span.stage,
                    ).observe(stage_span.duration_s)
        reservoir = self._done.setdefault(
            meeting, _TraceReservoir(self.retention)
        )
        before = reservoir.evicted
        reservoir.add(tree)
        newly_evicted = reservoir.evicted - before
        if newly_evicted:
            self._count(obs_names.TRACE_TREES_EVICTED, newly_evicted)

    def _count(self, name: str, by: int = 1) -> None:
        reg = get_registry()
        if reg.enabled:
            reg.counter(name).inc(by)

    # -- accounting --------------------------------------------------------- #

    @property
    def evicted(self) -> int:
        return sum(r.evicted for r in self._done.values())

    @property
    def live(self) -> int:
        """Finalized root trees currently retained in the reservoirs."""
        return sum(len(r.trees) for r in self._done.values())

    def open_count(self) -> int:
        return sum(len(v) for v in self._open.values())

    def counters(self) -> Dict[str, int]:
        """Conservation ledger: ``assembled == exported + evicted + live``."""
        return {
            "assembled": self.assembled,
            "exported": self.exported,
            "evicted": self.evicted,
            "live": self.live,
            "open": self.open_count(),
            "orphan_events": self.orphan_events,
        }

    # -- reading results ------------------------------------------------------ #

    def trees(self, meeting: Optional[str] = None) -> List[TraceTree]:
        """Retained finalized root trees, in deterministic order
        (meeting, then open time, then root seq)."""
        meetings = [meeting] if meeting is not None else sorted(self._done)
        out: List[TraceTree] = []
        for name in meetings:
            reservoir = self._done.get(name)
            if reservoir is not None:
                out.extend(reservoir.trees)
        out.sort(key=lambda tr: (tr.meeting, tr.opened_at_s, tr.root.seq))
        return out

    def export(self) -> List[TraceTree]:
        """Drain the retained trees (counted into ``exported``)."""
        drained = self.trees()
        for name in list(self._done):
            self._done[name].trees = []
        self.exported += len(drained)
        self._count(obs_names.TRACE_TREES_EXPORTED, len(drained) or 0)
        return drained

    def stage_latencies(
        self,
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Per-stage ``(start_s, duration_s)`` samples across every
        retained decision tree (for SLO stage-budget objectives)."""
        out: Dict[str, List[Tuple[float, float]]] = {}
        for tree in self.trees():
            for node in tree.walk():
                for span in node.critical_path():
                    out.setdefault(span.stage, []).append(
                        (span.start_s, span.duration_s)
                    )
        for samples in out.values():
            samples.sort()
        return dict(sorted(out.items()))

    # -- canonical encoding ---------------------------------------------------- #

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": TRACE_SCHEMA,
            "assembled": self.assembled,
            "evicted": self.evicted,
            "orphan_events": self.orphan_events,
            "trees": [tree.to_dict() for tree in self.trees()],
        }

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 over the canonical encoding (determinism checks)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def assemble_trees(
    events: Iterable[Event],
    retention: int = DEFAULT_RETENTION,
    max_open: int = DEFAULT_MAX_OPEN,
) -> TraceAssembler:
    """One-shot convenience: sort, feed, flush, return the assembler."""
    assembler = TraceAssembler(retention=retention, max_open=max_open)
    with spans.span(obs_names.SPAN_TRACE_ASSEMBLE):
        assembler.assemble(events)
        assembler.finish()
    return assembler
