"""Meeting-level QoE metrics: the quantities the paper's evaluation plots.

* video stall rate (footnote 9, >200 ms inter-frame gaps per interval);
* voice stall rate (footnote 10, >10 % audio loss per interval);
* delivered framerate;
* a VMAF-like video quality proxy (Fig. 8's "video quality").

The VMAF proxy maps (resolution, delivered bitrate) to a 0-100 score with
a saturating log curve per resolution — the absolute values are synthetic,
but the curve is monotone in bitrate and higher resolutions dominate at
equal health, which is all the cross-scheme comparisons need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.types import ClientId, Resolution
from ..media.jitter_buffer import PlaybackMetrics


#: Per-resolution (kbps at which the proxy reaches ~50, ceiling score).
_QUALITY_CURVE: Dict[Resolution, Tuple[float, float]] = {
    Resolution.P1080: (2500.0, 100.0),
    Resolution.P720: (1200.0, 95.0),
    Resolution.P540: (900.0, 88.0),
    Resolution.P360: (550.0, 80.0),
    Resolution.P270: (400.0, 72.0),
    Resolution.P180: (250.0, 62.0),
    Resolution.P90: (120.0, 45.0),
}


def vmaf_proxy(resolution: Resolution, delivered_kbps: float) -> float:
    """A monotone rate-quality score in [0, 100].

    ``score = ceiling * kbps / (kbps + half_point)`` — a saturating curve
    reaching half the resolution's ceiling at its half-point bitrate.
    """
    if delivered_kbps <= 0:
        return 0.0
    half, ceiling = _QUALITY_CURVE[resolution]
    return ceiling * delivered_kbps / (delivered_kbps + half)


@dataclass
class ViewReport:
    """Metrics for one subscriber watching one publisher."""

    subscriber: ClientId
    publisher: ClientId
    playback: PlaybackMetrics
    #: Resolution the subscriber mostly received (highest seen).
    top_resolution: Optional[Resolution]
    quality_score: float

    @property
    def framerate(self) -> float:
        """Rendered frames per second over the window."""
        return self.playback.framerate

    @property
    def stall_rate(self) -> float:
        """Fraction of playback intervals containing a stall."""
        return self.playback.stall_rate


@dataclass
class MeetingReport:
    """Aggregated outcome of one simulated meeting."""

    duration_s: float
    views: List[ViewReport] = field(default_factory=list)
    #: Per subscriber, the voice stall rate across all audio it receives.
    voice_stall: Dict[ClientId, float] = field(default_factory=dict)
    #: Per publisher, mean configured uplink send rate (kbps).
    publisher_send_kbps: Dict[ClientId, float] = field(default_factory=dict)
    #: Per subscriber, time series of received video rate (t, kbps).
    receive_series: Dict[ClientId, List[Tuple[float, float]]] = field(
        default_factory=dict
    )
    #: Controller call intervals (GSO mode only).
    call_intervals: List[float] = field(default_factory=list)

    # -- aggregates ----------------------------------------------------- #

    def mean_framerate(self) -> float:
        """Average framerate across all views."""
        if not self.views:
            return 0.0
        return sum(v.framerate for v in self.views) / len(self.views)

    def mean_video_stall(self) -> float:
        """Average video-stall rate across all views."""
        if not self.views:
            return 0.0
        return sum(v.stall_rate for v in self.views) / len(self.views)

    def mean_quality(self) -> float:
        """Average quality proxy across all views."""
        if not self.views:
            return 0.0
        return sum(v.quality_score for v in self.views) / len(self.views)

    def mean_voice_stall(self) -> float:
        """Average voice-stall rate across subscribers."""
        if not self.voice_stall:
            return 0.0
        return sum(self.voice_stall.values()) / len(self.voice_stall)

    def view(self, subscriber: ClientId, publisher: ClientId) -> ViewReport:
        """The report for one (subscriber, publisher) pair (KeyError if absent)."""
        for v in self.views:
            if v.subscriber == subscriber and v.publisher == publisher:
                return v
        raise KeyError(f"no view {subscriber!r} <- {publisher!r}")
