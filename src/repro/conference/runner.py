"""Wires a :class:`MeetingSpec` into a running simulation and reports QoE.

The runner assembles the full three-plane stack:

* **user plane** — one :class:`~repro.client.client.ConferenceClient` per
  participant, publishing simulcast video + audio through a pacer;
* **media plane** — one accessing node switching RTP by SSRC, estimating
  downlinks sender-side, shuttling RTCP;
* **control plane** — in "gso" mode, the conference node + GSO controller
  runtime + reliable feedback executor; in baseline modes, the
  corresponding uncoordinated orchestrator from :mod:`repro.baselines`.

All four schemes share every other component, so measured differences are
attributable to orchestration alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baselines.competitors import (
    Competitor1Orchestrator,
    Competitor2Orchestrator,
)
from ..baselines.nongso import NonGsoOrchestrator
from ..client.client import ClientConfig, ConferenceClient
from ..control.conference_node import ConferenceNode, ConferenceNodeConfig
from ..control.feedback import FeedbackExecutor
from ..control.gso_controller import ControllerConfig, GsoControllerRuntime
from ..core.ladder import DEFAULT_BITRATE_RANGES
from ..core.types import ClientId, Resolution
from ..media.jitter_buffer import compute_playback_metrics
from ..media.sfu import AccessingNode
from ..net.link import Link
from ..net.simulator import PeriodicTask, Simulator
from ..obs import names as obs_names
from ..obs.registry import get_registry
from ..rtp.rtcp import AppPacket
from ..rtp.semb import SEMB_NAME, SembReport
from ..rtp.ssrc import SsrcAllocator
from ..rtp.tmmbr import GSO_TMMBN_NAME, GsoTmmbn
from ..sdp.simulcast_info import ResolutionCapability, SimulcastInfo
from .builder import ClientSpec, MeetingSpec
from .metrics import MeetingReport, ViewReport, vmaf_proxy

#: How often the runner samples receive rates and pumps downlink estimates.
SAMPLE_INTERVAL_S = 0.5


class MeetingRunner:
    """Builds and runs one meeting."""

    def __init__(self, spec: MeetingSpec) -> None:
        self.spec = spec
        self.sim = Simulator()
        self._rng = random.Random(spec.seed)
        self.ssrc_alloc = SsrcAllocator()
        self.conference = ConferenceNode(
            ConferenceNodeConfig(
                levels_per_resolution=spec.levels_per_resolution
            )
        )
        #: One accessing node per region, fully interconnected.
        self.nodes: Dict[str, AccessingNode] = {}
        for region in spec.regions:
            self.nodes[region] = AccessingNode(
                self.sim, region, on_rtcp_app_upstream=self._on_rtcp_app
            )
        regions = list(self.nodes)
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                link_ab = Link(
                    self.sim,
                    bandwidth_kbps=spec.inter_node_kbps,
                    propagation_ms=spec.inter_node_ms,
                    name=f"{a}->{b}",
                )
                link_ba = Link(
                    self.sim,
                    bandwidth_kbps=spec.inter_node_kbps,
                    propagation_ms=spec.inter_node_ms,
                    name=f"{b}->{a}",
                )
                self.nodes[a].add_peer(self.nodes[b], link_ab)
                self.nodes[b].add_peer(self.nodes[a], link_ba)
        #: The first region's node, kept for single-node callers/tests.
        self.node = self.nodes[regions[0]]
        self.clients: Dict[ClientId, ConferenceClient] = {}
        self.uplinks: Dict[ClientId, Link] = {}
        self.downlinks: Dict[ClientId, Link] = {}
        self.executor: Optional[FeedbackExecutor] = None
        self.controller: Optional[GsoControllerRuntime] = None
        self._orchestrator = None
        self._receive_samples: Dict[ClientId, List[Tuple[float, float]]] = {}
        self._last_rx_bytes: Dict[ClientId, int] = {}
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build(self) -> None:
        spec = self.spec
        self._desired_subs = spec.resolved_subscriptions()
        self._installed_subs: set = set()
        self._present: set = set()
        for cs in spec.clients:
            if cs.join_at_s <= 0:
                self._admit_client(cs)
            else:
                self.sim.schedule(
                    cs.join_at_s, lambda c=cs: self._admit_client(c)
                )
            if cs.leave_at_s is not None:
                self.sim.schedule(
                    cs.leave_at_s,
                    lambda cid=cs.client_id: self._remove_client(cid),
                )
        subs = self._desired_subs
        if spec.mode == "gso":
            self.executor = FeedbackExecutor(
                self.sim, self.conference, dict(self.nodes)
            )
            self.controller = GsoControllerRuntime(
                self.sim, self.conference, self.executor
            )
        elif len(spec.regions) > 1:
            raise ValueError(
                "baseline orchestrators are single-node; multi-region "
                "meetings require mode='gso'"
            )
        elif any(
            c.join_at_s > 0 or c.leave_at_s is not None for c in spec.clients
        ):
            raise ValueError(
                "baseline orchestrators assume a static roster; "
                "join/leave churn requires mode='gso'"
            )
        elif spec.mode == "nongso":
            self._orchestrator = NonGsoOrchestrator(
                self.sim, self.node, self.clients, subs, self._ssrc_of
            )
        elif spec.mode == "competitor1":
            self._orchestrator = Competitor1Orchestrator(
                self.sim, self.node, self.clients, subs, self._ssrc_of
            )
        elif spec.mode == "competitor2":
            self._orchestrator = Competitor2Orchestrator(
                self.sim, self.node, self.clients, subs, self._ssrc_of
            )
        for when, speaker in spec.speaker_schedule:
            if spec.mode != "gso":
                raise ValueError("speaker_schedule requires mode='gso'")
            self.sim.schedule(
                when, lambda who=speaker: self.conference.set_speaker(who)
            )
        PeriodicTask(
            self.sim, SAMPLE_INTERVAL_S, self._sample, start_offset=0.4
        )

    def _admit_client(self, cs: ClientSpec) -> None:
        """Join a participant: build its endpoint, links, and signaling,
        then (re)install every subscription whose two parties are present."""
        self._build_client(cs)
        self._present.add(cs.client_id)
        self._sync_subscriptions()

    def _remove_client(self, client_id: ClientId) -> None:
        """A participant leaves: stop media, detach, clean signaling."""
        client = self.clients.get(client_id)
        if client is None:
            return
        client.stop_media()
        self._present.discard(client_id)
        state = self.conference.participant(client_id)
        self.nodes[state.node_name].detach_client(client_id)
        self.conference.leave(client_id)
        self._installed_subs = {
            (sub, pub, cap)
            for (sub, pub, cap) in self._installed_subs
            if sub != client_id and pub != client_id
        }
        # The endpoint object stays in self.clients so its playback record
        # remains available to the final report.

    def _sync_subscriptions(self) -> None:
        for sub, pub, cap in self._desired_subs:
            key = (sub, pub, cap)
            if key in self._installed_subs:
                continue
            if sub in self._present and pub in self._present:
                self.conference.subscribe(sub, pub, cap)
                self._installed_subs.add(key)

    def _build_client(self, cs: ClientSpec) -> None:
        spec = self.spec
        rng = random.Random(self._rng.randrange(2**31))
        uplink = Link(
            self.sim,
            bandwidth_kbps=cs.uplink_kbps,
            propagation_ms=cs.propagation_ms,
            jitter_ms=cs.jitter_ms,
            loss_rate=cs.loss_rate,
            rng=rng,
            name=f"{cs.client_id}:up",
        )
        downlink = Link(
            self.sim,
            bandwidth_kbps=cs.downlink_kbps,
            propagation_ms=cs.propagation_ms,
            jitter_ms=cs.jitter_ms,
            loss_rate=cs.loss_rate,
            rng=rng,
            name=f"{cs.client_id}:down",
        )
        if cs.uplink_trace is not None:
            cs.uplink_trace.apply(self.sim, uplink)
        if cs.downlink_trace is not None:
            cs.downlink_trace.apply(self.sim, downlink)

        video_ssrcs: Dict[Resolution, int] = {}
        caps = []
        if cs.publishes:
            for res in spec.resolutions:
                ssrc = self.ssrc_alloc.allocate(cs.client_id, res)
                video_ssrcs[res] = ssrc
                lo, hi = DEFAULT_BITRATE_RANGES[res]
                caps.append(
                    ResolutionCapability(
                        resolution=res,
                        max_bitrate_kbps=hi,
                        min_bitrate_kbps=lo,
                        ssrc=ssrc,
                    )
                )
        audio_ssrc = self.ssrc_alloc.allocate(cs.client_id, "audio")
        rtcp_ssrc = self.ssrc_alloc.allocate(cs.client_id, "rtcp")

        client = ConferenceClient(
            self.sim,
            cs.client_id,
            uplink=uplink,
            ssrcs=video_ssrcs,
            audio_ssrc=audio_ssrc,
            rtcp_ssrc=rtcp_ssrc,
            config=ClientConfig(
                probing_enabled=(spec.mode == "gso"),
                remb_enabled=(spec.mode == "competitor1"),
                initial_uplink_kbps=min(1000.0, cs.uplink_kbps),
            ),
        )
        home = self.nodes[cs.region]
        uplink.connect(
            lambda packet, now, cid=cs.client_id, node=home: node.on_packet_from_client(
                cid, packet, now
            )
        )
        downlink.connect(client.on_downlink_packet)
        home.attach_client(cs.client_id, downlink)
        if cs.publishes or True:
            # Every participant joins signaling; non-publishers negotiate
            # an empty capability set.
            info = SimulcastInfo(
                client=cs.client_id,
                codec="H264",
                max_streams=max(1, len(caps)),
                resolutions=tuple(caps),
            )
            self.conference.join(info, node_name=cs.region)
        client.start_media()
        self.clients[cs.client_id] = client
        self.uplinks[cs.client_id] = uplink
        self.downlinks[cs.client_id] = downlink
        self._receive_samples[cs.client_id] = []
        self._last_rx_bytes[cs.client_id] = 0

    def _ssrc_of(self, publisher: ClientId, resolution: Resolution) -> Optional[int]:
        return self.ssrc_alloc.ssrc_of(publisher, resolution)

    # ------------------------------------------------------------------ #
    # RTCP APP routing (SEMB up, TMMBN acks)
    # ------------------------------------------------------------------ #

    def _on_rtcp_app(self, client: ClientId, data: bytes) -> None:
        app = AppPacket.parse(data)
        reg = get_registry()
        if app.name == SEMB_NAME:
            if reg.enabled:
                reg.counter(obs_names.RUNNER_RTCP_APP, kind="semb").inc()
            report = SembReport.from_app_packet(app)
            self.conference.on_semb_report(client, report, self.sim.now)
        elif app.name == GSO_TMMBN_NAME and self.executor is not None:
            if reg.enabled:
                reg.counter(obs_names.RUNNER_RTCP_APP, kind="tmmbn").inc()
            self.executor.on_tmmbn(client, GsoTmmbn.from_app_packet(app))
        elif reg.enabled:
            reg.counter(obs_names.RUNNER_RTCP_APP, kind="other").inc()

    # ------------------------------------------------------------------ #
    # Periodic sampling
    # ------------------------------------------------------------------ #

    def _sample(self) -> None:
        # Pump downlink estimates from each home node into the conference.
        for cid in self.clients:
            if cid not in self._present:
                continue
            home = self.nodes[self.conference.participant(cid).node_name]
            self.conference.update_downlink(
                cid, home.downlink_estimate_kbps(cid)
            )
        # Record receive-rate series for the transient plots.
        for cid, client in self.clients.items():
            total = sum(client.received_video_bytes.values())
            delta = total - self._last_rx_bytes[cid]
            self._last_rx_bytes[cid] = total
            kbps = delta * 8.0 / SAMPLE_INTERVAL_S / 1000.0
            self._receive_samples[cid].append((self.sim.now, kbps))

    # ------------------------------------------------------------------ #
    # Run and report
    # ------------------------------------------------------------------ #

    def _presence(self, client_id: ClientId) -> Tuple[float, float]:
        """[join, leave) span of one participant."""
        for cs in self.spec.clients:
            if cs.client_id == client_id:
                leave = (
                    cs.leave_at_s
                    if cs.leave_at_s is not None
                    else self.spec.duration_s
                )
                return cs.join_at_s, leave
        return 0.0, self.spec.duration_s

    def run(self) -> MeetingReport:
        """Run the meeting to completion and compute the report."""
        spec = self.spec
        self.sim.run_until(spec.duration_s)
        report = MeetingReport(duration_s=spec.duration_s)
        window = (spec.warmup_s, spec.duration_s)
        for sub, pub, _cap in spec.resolved_subscriptions():
            # Measure each view only while BOTH parties are present (plus
            # a short span for the stream to start flowing).
            sub_join, sub_leave = self._presence(sub)
            pub_join, pub_leave = self._presence(pub)
            start = max(spec.warmup_s, sub_join + 3.0, pub_join + 3.0)
            end = min(spec.duration_s, sub_leave, pub_leave)
            if end - start < 4.0:
                continue  # too little overlap to measure meaningfully
            report.views.append(self._view_report(sub, pub, (start, end)))
        for cid, client in self.clients.items():
            report.voice_stall[cid] = client.audio_receiver.voice_stall_rate(
                *window
            )
            encoded = client.encoder.stats.bytes_encoded
            report.publisher_send_kbps[cid] = (
                encoded * 8.0 / spec.duration_s / 1000.0
            )
            report.receive_series[cid] = self._receive_samples[cid]
        if self.controller is not None:
            report.call_intervals = list(self.controller.call_intervals)
        return report

    def _view_report(
        self, sub: ClientId, pub: ClientId, window: Tuple[float, float]
    ) -> ViewReport:
        client = self.clients[sub]
        pub_ssrcs = [
            ssrc
            for res, ssrc in self.ssrc_alloc.streams_of(pub).items()
            if isinstance(res, Resolution)
        ]
        start, end = window
        render_times: List[float] = []
        window_bytes = 0.0
        top_resolution: Optional[Resolution] = None
        for ssrc in pub_ssrcs:
            buffer = client.jitter_buffers.get(ssrc)
            if buffer is None or not buffer.render_times:
                continue
            in_window = [t for t in buffer.render_times if start <= t <= end]
            render_times.extend(in_window)
            if buffer.render_times:
                window_bytes += buffer.rendered_bytes * (
                    len(in_window) / len(buffer.render_times)
                )
            if in_window:
                key = self.ssrc_alloc.lookup(ssrc)
                if key is not None and (
                    top_resolution is None or key.kind > top_resolution
                ):
                    top_resolution = key.kind
        playback = compute_playback_metrics(
            sorted(render_times),
            start,
            end,
            rendered_bytes=int(window_bytes),
        )
        quality = (
            vmaf_proxy(top_resolution, playback.rendered_kbps)
            if top_resolution is not None
            else 0.0
        )
        return ViewReport(
            subscriber=sub,
            publisher=pub,
            playback=playback,
            top_resolution=top_resolution,
            quality_score=quality,
        )


def run_meeting(spec: MeetingSpec) -> MeetingReport:
    """One-call convenience wrapper."""
    return MeetingRunner(spec).run()
