"""End-to-end meeting simulation harness."""

from .builder import ClientSpec, MeetingSpec, full_mesh_meeting, MODES
from .metrics import MeetingReport, ViewReport, vmaf_proxy
from .runner import MeetingRunner, run_meeting
from .scenarios import (
    SlowLinkCase,
    affected_views,
    slow_link_cases,
    slow_link_meeting,
)

__all__ = [
    "ClientSpec",
    "SlowLinkCase",
    "affected_views",
    "slow_link_cases",
    "slow_link_meeting",
    "MODES",
    "MeetingReport",
    "MeetingRunner",
    "MeetingSpec",
    "ViewReport",
    "full_mesh_meeting",
    "run_meeting",
    "vmaf_proxy",
]
