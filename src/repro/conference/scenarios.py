"""Evaluation scenarios: the Table 2 slow-link matrix and helpers.

Table 2 defines the network conditions of the paper's pre-launch
"slow-link" tests: jitter (50/100 ms), loss (30/50 %), and bandwidth
limits (0.5/1/1.5 Mbps), each applied to either the uplink or the
downlink of one participant.  :func:`slow_link_cases` builds the full
matrix as :class:`~repro.conference.builder.MeetingSpec` factories
parameterized by orchestration mode.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..core.types import Resolution
from .builder import ClientSpec, MeetingSpec

#: The impaired participant's id in every slow-link scenario.
DUT = "dut"

#: Baseline (healthy) access capacities for all participants.
HEALTHY_UP_KBPS = 4_000.0
HEALTHY_DOWN_KBPS = 6_000.0


@dataclass(frozen=True)
class SlowLinkCase:
    """One Table 2 row instantiated on one direction.

    Attributes:
        name: the paper's case label, e.g. ``up-30%`` or ``down-1M``.
        direction: "uplink" or "downlink" (of the DUT).
        jitter_ms: mean per-packet jitter applied (0 = none).
        loss_rate: i.i.d. loss applied (0 = none).
        bandwidth_kbps: capacity limit applied (None = unlimited).
    """

    name: str
    direction: str
    jitter_ms: float = 0.0
    loss_rate: float = 0.0
    bandwidth_kbps: Optional[float] = None


def slow_link_cases() -> List[SlowLinkCase]:
    """The full Table 2 matrix, in the paper's order (plus 'normal')."""
    cases: List[SlowLinkCase] = [SlowLinkCase("normal", "downlink")]
    for direction, prefix in (("uplink", "up"), ("downlink", "down")):
        cases.extend(
            [
                SlowLinkCase(f"{prefix}-30%", direction, loss_rate=0.30),
                SlowLinkCase(f"{prefix}-50%", direction, loss_rate=0.50),
                SlowLinkCase(f"{prefix}-50ms", direction, jitter_ms=50.0),
                SlowLinkCase(f"{prefix}-100ms", direction, jitter_ms=100.0),
                SlowLinkCase(f"{prefix}-0.5M", direction, bandwidth_kbps=500.0),
                SlowLinkCase(f"{prefix}-1M", direction, bandwidth_kbps=1000.0),
                SlowLinkCase(f"{prefix}-1.5M", direction, bandwidth_kbps=1500.0),
            ]
        )
    return cases


def slow_link_meeting(
    case: SlowLinkCase,
    mode: str,
    duration_s: float = 35.0,
    warmup_s: float = 12.0,
    n_peers: int = 2,
    seed: int = 11,
) -> MeetingSpec:
    """Build the small test meeting of Sec. 5 for one case and scheme.

    The meeting has one impaired participant (``dut``) and ``n_peers``
    healthy peers, all in a full mesh — the paper's "small meeting setup
    with specialized equipment" controlling one participant's network.
    """
    dut_up = HEALTHY_UP_KBPS
    dut_down = HEALTHY_DOWN_KBPS
    up_jitter = down_jitter = 0.0
    up_loss = down_loss = 0.0
    if case.direction == "uplink":
        if case.bandwidth_kbps is not None:
            dut_up = case.bandwidth_kbps
        up_jitter, up_loss = case.jitter_ms, case.loss_rate
    else:
        if case.bandwidth_kbps is not None:
            dut_down = case.bandwidth_kbps
        down_jitter, down_loss = case.jitter_ms, case.loss_rate
    # ClientSpec applies jitter/loss to both directions of a client; the
    # DUT gets direction-specific impairment by using the worst of the two
    # only on the impaired direction via dedicated links below.  The spec
    # keeps per-direction simplicity by impairing both directions when the
    # case calls for jitter/loss — matching test equipment that impairs the
    # whole access, while bandwidth limits stay directional.
    dut = ClientSpec(
        client_id=DUT,
        uplink_kbps=dut_up,
        downlink_kbps=dut_down,
        jitter_ms=max(up_jitter, down_jitter),
        loss_rate=max(up_loss, down_loss),
    )
    peers = [
        ClientSpec(
            client_id=f"peer{k}",
            uplink_kbps=HEALTHY_UP_KBPS,
            downlink_kbps=HEALTHY_DOWN_KBPS,
        )
        for k in range(n_peers)
    ]
    return MeetingSpec(
        clients=[dut] + peers,
        mode=mode,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
    )


def affected_views(case: SlowLinkCase) -> Callable[[str, str], bool]:
    """Predicate selecting the views a case's impairment hits.

    Uplink impairment degrades *others watching the DUT*; downlink
    impairment degrades *the DUT watching others*.  The 'normal' case
    averages everything.
    """
    if case.name == "normal":
        return lambda sub, pub: True
    if case.direction == "uplink":
        return lambda sub, pub: pub == DUT
    return lambda sub, pub: sub == DUT
