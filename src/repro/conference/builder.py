"""Meeting scenario specification.

A :class:`MeetingSpec` fully describes one simulated conference: the
participants and their network paths (with optional mid-run bandwidth
traces), the subscription graph, and the orchestration scheme to run
("gso", "nongso", "competitor1", "competitor2").  The
:class:`~repro.conference.runner.MeetingRunner` materializes a spec into a
wired simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.types import ClientId, PAPER_RESOLUTIONS, Resolution
from ..net.trace import BandwidthTrace

#: Orchestration schemes the runner knows how to build.
MODES = ("gso", "nongso", "competitor1", "competitor2")


@dataclass
class ClientSpec:
    """One participant and its access network.

    Attributes:
        client_id: participant id.
        uplink_kbps / downlink_kbps: access-link capacities.
        propagation_ms: one-way path delay per direction.
        jitter_ms: mean exponential per-packet jitter (both directions).
        loss_rate: i.i.d. loss probability (both directions).
        publishes: whether the client sends video.
        uplink_trace / downlink_trace: optional capacity schedules.
        region: which accessing node the client is homed on; clients in
            different regions exchange media over inter-node relay links
            (the paper's interconnected media plane).
        join_at_s: when the participant joins (0 = from the start).
        leave_at_s: when the participant leaves (None = stays).
    """

    client_id: ClientId
    uplink_kbps: float = 5_000.0
    downlink_kbps: float = 5_000.0
    propagation_ms: float = 20.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0
    publishes: bool = True
    uplink_trace: Optional[BandwidthTrace] = None
    downlink_trace: Optional[BandwidthTrace] = None
    region: str = "region0"
    join_at_s: float = 0.0
    leave_at_s: Optional[float] = None


@dataclass
class MeetingSpec:
    """One complete meeting scenario.

    Attributes:
        clients: the participants.
        subscriptions: explicit (subscriber, publisher, max_resolution)
            triples; ``None`` means a full mesh at 720p.
        mode: orchestration scheme (see :data:`MODES`).
        duration_s: simulated meeting length.
        warmup_s: initial span excluded from metrics (ramp-up).
        levels_per_resolution: ladder depth for GSO (baselines use the
            coarse 3-layer template ladder regardless).
        resolutions: simulcast resolutions every publisher negotiates.
        seed: randomness seed (loss/jitter processes).
        inter_node_kbps: capacity of each inter-node relay link.
        inter_node_ms: one-way delay between accessing nodes.
    """

    clients: List[ClientSpec]
    subscriptions: Optional[List[Tuple[ClientId, ClientId, Resolution]]] = None
    mode: str = "gso"
    duration_s: float = 30.0
    warmup_s: float = 8.0
    levels_per_resolution: int = 5
    resolutions: Tuple[Resolution, ...] = PAPER_RESOLUTIONS
    seed: int = 1
    inter_node_kbps: float = 200_000.0
    inter_node_ms: float = 40.0
    #: (time_s, client_id) active-speaker changes (GSO mode only; empty
    #: string clears the speaker).
    speaker_schedule: List[Tuple[float, ClientId]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; pick from {MODES}")
        if self.duration_s <= self.warmup_s:
            raise ValueError("duration must exceed warmup")
        ids = [c.client_id for c in self.clients]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate client ids")
        if self.inter_node_kbps <= 0 or self.inter_node_ms < 0:
            raise ValueError("invalid inter-node link parameters")
        for c in self.clients:
            if c.join_at_s < 0:
                raise ValueError(f"{c.client_id}: join_at_s must be >= 0")
            if c.leave_at_s is not None and c.leave_at_s <= c.join_at_s:
                raise ValueError(
                    f"{c.client_id}: leave_at_s must follow join_at_s"
                )

    @property
    def regions(self) -> List[str]:
        """Distinct regions, in first-appearance order."""
        seen: List[str] = []
        for c in self.clients:
            if c.region not in seen:
                seen.append(c.region)
        return seen

    def resolved_subscriptions(
        self,
    ) -> List[Tuple[ClientId, ClientId, Resolution]]:
        """The explicit subscription list (full mesh when unspecified)."""
        if self.subscriptions is not None:
            return list(self.subscriptions)
        publishers = [c.client_id for c in self.clients if c.publishes]
        return [
            (sub.client_id, pub, Resolution.P720)
            for sub in self.clients
            for pub in publishers
            if pub != sub.client_id
        ]


def full_mesh_meeting(
    n_clients: int,
    uplink_kbps: float = 5_000.0,
    downlink_kbps: float = 5_000.0,
    mode: str = "gso",
    duration_s: float = 30.0,
    **kwargs,
) -> MeetingSpec:
    """Convenience constructor: a symmetric n-party mesh meeting."""
    clients = [
        ClientSpec(
            client_id=f"C{k}",
            uplink_kbps=uplink_kbps,
            downlink_kbps=downlink_kbps,
        )
        for k in range(n_clients)
    ]
    return MeetingSpec(
        clients=clients, mode=mode, duration_s=duration_s, **kwargs
    )
