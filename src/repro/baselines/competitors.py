"""Synthetic models of the two commercial comparators in Fig. 8.

The paper benchmarks GSO against "the other two commercial video
conferencing apps from top competitors" without naming them.  We model the
two standard architecture archetypes their failure modes in Fig. 8 imply:

* **Competitor 1 — laggy receiver-driven simulcast**: coarse 3-layer
  simulcast, switching on a slow cadence driven by the clients' actual
  REMB reports — the real receiver-side estimation pipeline
  (:mod:`repro.cc.receiver_estimate` + the PSFB REMB wire format), which
  the paper notes "offers [worse] accuracy than sender-side" (Sec. 4.2).
  It eventually adapts, so it degrades mostly under *fast* or *downlink*
  impairments.
* **Competitor 2 — single-stream slow adaptation**: no simulcast at all;
  one stream per publisher adapted to the publisher's uplink only, with a
  slow multiplicative backoff.  Receivers with slow downlinks simply
  suffer (the Sec. 2.2 slow-link problem embodied).

Both reuse the same client/SFU substrate as GSO and non-GSO so Fig. 8
differences come from orchestration, not plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..client.client import ConferenceClient
from ..client.policies import COARSE_LAYERS, LocalDownlinkSwitcher
from ..core.types import ClientId, Resolution
from ..media.sfu import AccessingNode
from ..net.simulator import PeriodicTask, Simulator


class Competitor1Orchestrator:
    """Laggy receiver-driven coarse simulcast."""

    def __init__(
        self,
        sim: Simulator,
        node: AccessingNode,
        clients: Mapping[ClientId, ConferenceClient],
        subscriptions: List[Tuple[ClientId, ClientId, Resolution]],
        ssrc_of: Callable[[ClientId, Resolution], Optional[int]],
        switch_interval_s: float = 3.0,
        smoothing: float = 0.85,
    ) -> None:
        self._sim = sim
        self._node = node
        self._clients = dict(clients)
        self._ssrc_of = ssrc_of
        self.switcher = LocalDownlinkSwitcher(headroom=1.0)  # no headroom
        self._smoothing = smoothing
        self._smoothed_downlink: Dict[ClientId, float] = {}
        self._watched: Dict[ClientId, List[Tuple[ClientId, Resolution]]] = {}
        for sub, pub, cap in subscriptions:
            self._watched.setdefault(sub, []).append((pub, cap))
        self._task = PeriodicTask(
            sim, switch_interval_s, self._adapt, start_offset=0.5
        )

    def stop(self) -> None:
        """Stop the periodic activity (idempotent)."""
        self._task.stop()

    def _adapt(self) -> None:
        # Publishers: always push every coarse layer the uplink nominally
        # carries — no subscriber awareness at all.
        for client in self._clients.values():
            estimate = client.uplink_estimate_kbps()
            layers = {
                res: kbps
                for res, kbps in COARSE_LAYERS
                if kbps <= estimate
            }
            if not layers and COARSE_LAYERS:
                res, kbps = COARSE_LAYERS[-1]
                layers = {res: kbps}
            client.encoder.configure(layers)
        # Subscribers: switch on the receiver-side REMB value (falling
        # back to a heavily smoothed sender-side estimate before the first
        # report arrives).
        for sub, watched in self._watched.items():
            remb = self._node.remb_estimate_kbps(sub)
            if remb is not None:
                raw = float(remb)
            else:
                raw = self._node.downlink_estimate_kbps(sub)
            prev = self._smoothed_downlink.get(sub, raw)
            smoothed = self._smoothing * prev + (1 - self._smoothing) * raw
            self._smoothed_downlink[sub] = smoothed
            for pub, cap in watched:
                publisher = self._clients.get(pub)
                if publisher is None:
                    continue
                resolution = self.switcher.select_stream(
                    downlink_estimate_kbps=smoothed,
                    available_layers=publisher.encoder.active_encodings,
                    n_watched_publishers=len(watched),
                    max_resolution=cap,
                )
                ssrc = (
                    self._ssrc_of(pub, resolution)
                    if resolution is not None
                    else None
                )
                self._node.set_video_forwarding(sub, pub, ssrc)


class Competitor2Orchestrator:
    """Single-stream per publisher with slow sender-side adaptation."""

    def __init__(
        self,
        sim: Simulator,
        node: AccessingNode,
        clients: Mapping[ClientId, ConferenceClient],
        subscriptions: List[Tuple[ClientId, ClientId, Resolution]],
        ssrc_of: Callable[[ClientId, Resolution], Optional[int]],
        adapt_interval_s: float = 2.0,
        start_kbps: int = 1200,
        backoff: float = 0.8,
        recovery: float = 1.05,
    ) -> None:
        self._sim = sim
        self._node = node
        self._clients = dict(clients)
        self._ssrc_of = ssrc_of
        self._rates: Dict[ClientId, float] = {
            cid: float(start_kbps) for cid in clients
        }
        self._backoff = backoff
        self._recovery = recovery
        self._subscriptions = list(subscriptions)
        self._forwarding_installed = False
        self._task = PeriodicTask(
            sim, adapt_interval_s, self._adapt, start_offset=0.5
        )

    def stop(self) -> None:
        """Stop the periodic activity (idempotent)."""
        self._task.stop()

    def _adapt(self) -> None:
        for cid, client in self._clients.items():
            estimate = client.uplink_estimate_kbps()
            rate = self._rates[cid]
            if estimate < rate:
                rate = max(150.0, rate * self._backoff)
            else:
                rate = min(estimate, rate * self._recovery)
            self._rates[cid] = rate
            # One 720p stream whatever the rate: no simulcast fallback.
            client.encoder.configure({Resolution.P720: int(rate)})
        if not self._forwarding_installed:
            # Static forwarding: everyone gets the single stream.
            for sub, pub, _cap in self._subscriptions:
                ssrc = self._ssrc_of(pub, Resolution.P720)
                if sub in self._node.attached_clients and ssrc is not None:
                    self._node.set_video_forwarding(sub, pub, ssrc)
            self._forwarding_installed = True
