"""Classic (non-GSO) simulcast orchestration — the paper's main baseline.

This is the state of the art the paper argues against (Sec. 1, Sec. 2.3):

* publishers choose their simulcast layers from a **template policy** using
  only their *local* uplink estimate and the participant count — no
  knowledge of who subscribes or what downlinks can take (so unwanted
  streams keep burning uplink, Fig. 3a);
* the SFU switches streams per subscriber with a **local downlink rule**
  (even split of the estimated downlink) over the **coarse 3-layer
  ladder** (so a 1.45 Mbps downlink gets the 600 kbps layer, Fig. 3b, and
  competing publishers get lopsided layers, Fig. 3c);
* there is no uplink/downlink coordination and no controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..client.client import ConferenceClient
from ..client.policies import LocalDownlinkSwitcher, TemplateUplinkPolicy
from ..core.types import ClientId, Resolution
from ..media.sfu import AccessingNode
from ..net.simulator import PeriodicTask, Simulator


class NonGsoOrchestrator:
    """Runs template uplink policies + SFU-local switching for a meeting.

    Args:
        sim: the event loop.
        node: the (single) accessing node of the meeting.
        clients: every participant endpoint, by id.
        subscriptions: (subscriber, publisher, max_resolution) triples.
        ssrc_of: lookup (publisher, resolution) -> SSRC.
        adaptation_interval_s: how often both local policies re-evaluate.
    """

    def __init__(
        self,
        sim: Simulator,
        node: AccessingNode,
        clients: Mapping[ClientId, ConferenceClient],
        subscriptions: List[Tuple[ClientId, ClientId, Resolution]],
        ssrc_of: Callable[[ClientId, Resolution], Optional[int]],
        adaptation_interval_s: float = 1.0,
    ) -> None:
        self._sim = sim
        self._node = node
        self._clients = dict(clients)
        self._subscriptions = list(subscriptions)
        self._ssrc_of = ssrc_of
        self.uplink_policy = TemplateUplinkPolicy()
        self.switcher = LocalDownlinkSwitcher()
        self._watched: Dict[ClientId, List[Tuple[ClientId, Resolution]]] = {}
        for sub, pub, cap in self._subscriptions:
            self._watched.setdefault(sub, []).append((pub, cap))
        self._task = PeriodicTask(
            sim, adaptation_interval_s, self._adapt, start_offset=0.5
        )

    def stop(self) -> None:
        """Stop the periodic activity (idempotent)."""
        self._task.stop()

    # ------------------------------------------------------------------ #
    # The two uncoordinated local loops
    # ------------------------------------------------------------------ #

    def _adapt(self) -> None:
        self._adapt_publishers()
        self._adapt_subscribers()

    def _adapt_publishers(self) -> None:
        n = len(self._clients)
        for client in self._clients.values():
            layers = self.uplink_policy.select_layers(
                client.uplink_estimate_kbps(), participant_count=n
            )
            client.encoder.configure(layers)

    def _adapt_subscribers(self) -> None:
        for sub, watched in self._watched.items():
            if sub not in self._node.attached_clients:
                continue
            downlink = self._node.downlink_estimate_kbps(sub)
            for pub, cap in watched:
                publisher = self._clients.get(pub)
                if publisher is None:
                    continue
                layers = publisher.encoder.active_encodings
                resolution = self.switcher.select_stream(
                    downlink_estimate_kbps=downlink,
                    available_layers=layers,
                    n_watched_publishers=len(watched),
                    max_resolution=cap,
                )
                ssrc = (
                    self._ssrc_of(pub, resolution)
                    if resolution is not None
                    else None
                )
                self._node.set_video_forwarding(sub, pub, ssrc)
