"""Comparators: classic simulcast and the Fig. 8 competitor archetypes."""

from .competitors import Competitor1Orchestrator, Competitor2Orchestrator
from .nongso import NonGsoOrchestrator

__all__ = [
    "Competitor1Orchestrator",
    "Competitor2Orchestrator",
    "NonGsoOrchestrator",
]
