"""GSO-Simulcast: global stream orchestration for simulcast video
conferencing — a full reproduction of the SIGCOMM 2022 paper.

Quick start::

    from repro import Bandwidth, ProblemBuilder, Resolution, paper_ladder, solve

    builder = ProblemBuilder()
    builder.add_client("A", Bandwidth(5000, 1400), paper_ladder())
    builder.add_client("B", Bandwidth(5000, 3000), paper_ladder())
    builder.subscribe("A", "B", Resolution.P360)
    builder.subscribe("B", "A", Resolution.P720)
    solution = solve(builder.build())
    print(solution.summary())

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the GSO control algorithm (Knapsack-Merge-Reduction);
* :mod:`repro.net`, :mod:`repro.rtp`, :mod:`repro.sdp`, :mod:`repro.cc`,
  :mod:`repro.media` — the substrates (simulation, wire formats,
  signaling, congestion control, media plane);
* :mod:`repro.control`, :mod:`repro.client` — control and user planes;
* :mod:`repro.baselines` — non-GSO simulcast and competitor models;
* :mod:`repro.conference` — end-to-end meeting simulations;
* :mod:`repro.deploy` — fleet-scale deployment simulation.
"""

from .core import (
    Bandwidth,
    GsoSolver,
    PriorityPolicy,
    Problem,
    ProblemBuilder,
    Resolution,
    Solution,
    SolverConfig,
    StreamSpec,
    Subscription,
    UpgradeDamper,
    coarse_ladder,
    make_ladder,
    paper_ladder,
    solve,
)

__version__ = "1.0.0"

__all__ = [
    "Bandwidth",
    "GsoSolver",
    "PriorityPolicy",
    "Problem",
    "ProblemBuilder",
    "Resolution",
    "Solution",
    "SolverConfig",
    "StreamSpec",
    "Subscription",
    "UpgradeDamper",
    "__version__",
    "coarse_ladder",
    "make_ladder",
    "paper_ladder",
    "solve",
]
