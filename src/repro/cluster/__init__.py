"""Sharded controller cluster: hosting many meetings behind one solve
service (consistent-hash sharding, coalescing schedulers, fingerprint
cache, worker pool, admission control).
"""

from .admission import AdmissionController, AdmissionStats
from .cache import CacheStats, SolutionCache
from .cluster import (
    ClusterConfig,
    ControllerCluster,
    MeetingRecord,
    ServedSolution,
    ShardWorker,
    SOURCE_CACHE,
    SOURCE_FALLBACK,
    SOURCE_SHED,
    SOURCE_SOLVE,
)
from .hashring import ConsistentHashRing, moved_keys, stable_hash
from .pool import SolvePool
from .scheduler import (
    SchedulerStats,
    SolveRequest,
    SolveScheduler,
    TRIGGER_EVENT,
    TRIGGER_REHOME,
    TRIGGER_SYNC,
    TRIGGER_TIME,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CacheStats",
    "ClusterConfig",
    "ConsistentHashRing",
    "ControllerCluster",
    "MeetingRecord",
    "SchedulerStats",
    "ServedSolution",
    "ShardWorker",
    "SolutionCache",
    "SolvePool",
    "SolveRequest",
    "SolveScheduler",
    "SOURCE_CACHE",
    "SOURCE_FALLBACK",
    "SOURCE_SHED",
    "SOURCE_SOLVE",
    "TRIGGER_EVENT",
    "TRIGGER_REHOME",
    "TRIGGER_SYNC",
    "TRIGGER_TIME",
    "moved_keys",
    "stable_hash",
]
