"""Per-shard solve scheduler: coalescing event triggers into the Fig. 12
call-interval envelope.

The single-meeting runtime (:mod:`repro.control.gso_controller`) already
implements the paper's trigger policy — solve at least every
``max_interval_s``, at most every ``min_interval_s``.  A shard hosting
thousands of meetings additionally needs *demand shaping*: bandwidth
reports and membership churn raise solve requests far faster than the
solver should run, so requests are **coalesced** — one pending slot per
meeting, newest snapshot wins — and **debounced** to the min-interval
envelope.  A meeting whose picture changed five times in a second still
costs one solve, computed from the freshest snapshot.

The scheduler is virtual-time driven (callers pass ``now_s``), so fleet
simulations and tests stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.constraints import Problem
from ..obs import events as obs_events
from ..obs import names as obs_names
from ..obs.registry import get_registry

#: Solve-request triggers (the ``trigger`` label of
#: ``repro_cluster_solve_requests_total``).
TRIGGER_EVENT = "event"
TRIGGER_TIME = "time"
TRIGGER_REHOME = "rehome"
TRIGGER_SYNC = "sync"


@dataclass
class SolveRequest:
    """One scheduled solve: the freshest snapshot of one meeting."""

    meeting_id: str
    problem: Problem
    trigger: str = TRIGGER_EVENT
    submitted_at_s: float = 0.0
    due_at_s: float = 0.0
    #: How many event submissions were folded into this request.
    coalesced: int = 0
    #: Correlation id minted at ingress (when an event log is active);
    #: travels with the request through admission, cache, solve pool and
    #: delivery so the whole causal chain shares one id.
    correlation_id: str = ""


@dataclass
class SchedulerStats:
    """Demand-shaping accounting of one shard scheduler."""

    submitted: int = 0
    coalesced: int = 0
    time_triggered: int = 0


class SolveScheduler:
    """Coalescing/debouncing solve queue of one shard worker.

    Args:
        min_interval_s: floor between two solves of one meeting (Fig. 12's
            1 s minimum call interval).
        max_interval_s: ceiling — an idle meeting is still re-solved this
            often from its last snapshot (Fig. 12's 3 s maximum).
    """

    def __init__(
        self,
        min_interval_s: float = 1.0,
        max_interval_s: float = 3.0,
        shard: str = "",
    ) -> None:
        if not 0 < min_interval_s <= max_interval_s:
            raise ValueError("need 0 < min_interval <= max_interval")
        self.min_interval_s = min_interval_s
        self.max_interval_s = max_interval_s
        #: Shard name stamped onto ingress events ("" outside a cluster).
        self.shard = shard
        self._pending: Dict[str, SolveRequest] = {}
        self._last_solve_s: Dict[str, float] = {}
        self._last_problem: Dict[str, Problem] = {}
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------ #
    # Demand side
    # ------------------------------------------------------------------ #

    @property
    def queue_depth(self) -> int:
        """Currently pending (not yet executed) solve requests."""
        return len(self._pending)

    @property
    def meetings(self) -> List[str]:
        """Meetings with scheduler state on this shard, sorted."""
        return sorted(set(self._last_problem) | set(self._pending))

    def submit(
        self,
        meeting_id: str,
        problem: Problem,
        now_s: float,
        trigger: str = TRIGGER_EVENT,
    ) -> SolveRequest:
        """File (or refresh) a solve request for one meeting.

        A meeting has at most one pending request; re-submitting replaces
        its snapshot (newest wins) without changing its place in time.
        """
        self.stats.submitted += 1
        reg = get_registry()
        if reg.enabled:
            reg.counter(
                obs_names.CLUSTER_SOLVE_REQUESTS, trigger=trigger
            ).inc()
        log = obs_events.active_event_log()
        pending = self._pending.get(meeting_id)
        if pending is not None:
            pending.problem = problem
            pending.coalesced += 1
            self.stats.coalesced += 1
            if reg.enabled:
                reg.counter(obs_names.CLUSTER_COALESCED).inc()
            if log is not None:
                log.emit(
                    obs_events.REPORT_COALESCED,
                    t=now_s,
                    meeting=meeting_id,
                    cid=pending.correlation_id,
                    shard=self.shard,
                    trigger=trigger,
                    coalesced=pending.coalesced,
                )
            return pending
        last = self._last_solve_s.get(meeting_id)
        due = now_s if last is None else max(now_s, last + self.min_interval_s)
        request = SolveRequest(
            meeting_id=meeting_id,
            problem=problem,
            trigger=trigger,
            submitted_at_s=now_s,
            due_at_s=due,
            correlation_id=log.mint(meeting_id) if log is not None else "",
        )
        self._pending[meeting_id] = request
        if log is not None:
            log.emit(
                obs_events.SEMB_REPORT,
                t=now_s,
                meeting=meeting_id,
                cid=request.correlation_id,
                shard=self.shard,
                trigger=trigger,
                due_at_s=round(due, 6),
            )
        return request

    # ------------------------------------------------------------------ #
    # Supply side
    # ------------------------------------------------------------------ #

    def due(self, now_s: float) -> List[SolveRequest]:
        """Pop every request that may run at ``now_s``.

        Returns pending requests whose debounce window has passed, plus
        synthesized ``time``-trigger refreshes for meetings idle past
        ``max_interval_s`` — ordered by due time then meeting id.  The
        caller owns the returned requests (solve or shed each one).
        """
        ready: List[SolveRequest] = []
        for meeting_id in list(self._pending):
            if self._pending[meeting_id].due_at_s <= now_s + 1e-9:
                ready.append(self._pending.pop(meeting_id))
        for meeting_id, last in self._last_solve_s.items():
            if meeting_id in self._pending:
                continue
            if any(r.meeting_id == meeting_id for r in ready):
                continue
            problem = self._last_problem.get(meeting_id)
            if problem is None:
                continue
            if now_s - last + 1e-9 >= self.max_interval_s:
                self.stats.time_triggered += 1
                reg = get_registry()
                if reg.enabled:
                    reg.counter(
                        obs_names.CLUSTER_SOLVE_REQUESTS, trigger=TRIGGER_TIME
                    ).inc()
                log = obs_events.active_event_log()
                # Predecessor cid first: the refresh chain links back to
                # the decision whose staleness triggered it.
                parent = (
                    log.last_cid(meeting_id) if log is not None else ""
                )
                cid = log.mint(meeting_id) if log is not None else ""
                if log is not None:
                    attrs = {"parent_cid": parent} if parent else {}
                    log.emit(
                        obs_events.TIME_TRIGGER,
                        t=now_s,
                        meeting=meeting_id,
                        cid=cid,
                        shard=self.shard,
                        idle_s=round(now_s - last, 6),
                        **attrs,
                    )
                ready.append(
                    SolveRequest(
                        meeting_id=meeting_id,
                        problem=problem,
                        trigger=TRIGGER_TIME,
                        submitted_at_s=now_s,
                        due_at_s=now_s,
                        correlation_id=cid,
                    )
                )
        ready.sort(key=lambda r: (r.due_at_s, r.meeting_id))
        return ready

    def backpressure_window_s(self, depth: int, capacity: int) -> float:
        """The coalesce window for a mailbox at ``depth`` of ``capacity``.

        The event-driven ingress reuses this scheduler's Fig. 12 envelope
        as its backpressure policy: an empty mailbox debounces at the
        ``min_interval_s`` floor, and the window widens linearly with
        queue depth up to the ``max_interval_s`` ceiling — a falling-
        behind meeting coalesces more reports per solve instead of
        queueing further behind.
        """
        if depth <= 1 or capacity <= 1:
            return self.min_interval_s
        frac = min(1.0, (depth - 1) / (capacity - 1))
        return self.min_interval_s + frac * (
            self.max_interval_s - self.min_interval_s
        )

    def mark_solved(self, meeting_id: str, problem: Problem, now_s: float) -> None:
        """Record a served solve (or fallback): resets both trigger clocks."""
        self._last_solve_s[meeting_id] = now_s
        self._last_problem[meeting_id] = problem

    def requeue(self, request: SolveRequest) -> None:
        """Put a popped request back (admission deferred it).

        Keeps the original due time so the request does not lose its queue
        position; a newer submit still wins the snapshot.
        """
        existing = self._pending.get(request.meeting_id)
        if existing is None:
            self._pending[request.meeting_id] = request
        else:
            existing.coalesced += request.coalesced

    # ------------------------------------------------------------------ #
    # Fault-injection hook points (repro.chaos)
    # ------------------------------------------------------------------ #

    def defer(self, meeting_id: str, delay_s: float) -> bool:
        """Push a pending request's due time back by ``delay_s``.

        Models a delayed SEMB report / control-channel congestion: the
        demand is still there, but the shard acts on it later.  Used by
        the chaos subsystem's ``delay_report`` fault.

        Returns:
            True if a pending request was deferred.
        """
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        pending = self._pending.get(meeting_id)
        if pending is None:
            return False
        pending.due_at_s += delay_s
        return True

    def drop_pending(self, meeting_id: str) -> Optional[SolveRequest]:
        """Drop (and return) a meeting's pending request, if any.

        Models a lost SEMB report: the solve demand evaporates without
        touching the last-solve clocks, so the ``max_interval_s`` time
        trigger still guarantees an eventual refresh.  Used by the chaos
        subsystem's ``drop_report`` fault.
        """
        return self._pending.pop(meeting_id, None)

    def forget(self, meeting_id: str) -> Optional[Problem]:
        """Drop all state for a meeting (it re-homed away).

        Returns the last known snapshot, for handover to the new shard.
        """
        pending = self._pending.pop(meeting_id, None)
        self._last_solve_s.pop(meeting_id, None)
        last = self._last_problem.pop(meeting_id, None)
        return pending.problem if pending is not None else last
