"""Solve worker pool: cache-miss solves, optionally on separate processes.

The KMR solver is CPU-bound pure Python/numpy, so threads cannot scale it;
a ``multiprocessing`` pool can.  The pool is strictly optional:

* ``workers == 0`` (the default) solves in-process, serially — the
  deterministic reference path every test compares against;
* ``workers > 0`` tries to start a process pool; any failure (restricted
  sandboxes, missing semaphores) silently degrades to the serial path, so
  the cluster never depends on the host allowing subprocesses.

Determinism: ``Pool.map`` preserves input order and each task is solved by
a stateless :class:`~repro.core.solver.GsoSolver`, so the process pool
returns exactly the serial path's solutions, independent of worker count
or scheduling.

Telemetry: spans are thread-local, so a pooled solve would normally fall
out of the parent trace.  Each job therefore carries a serialized span
**context token** (:func:`repro.obs.spans.context_token`); the worker
times its own solve and ships the measurement back, and the parent
**stitches** it into the open trace as a ``pool.solve`` child span
(:func:`repro.obs.spans.stitch_child`).  Worker processes themselves run
with the default ``NullRegistry`` — all recording happens where the
results are joined.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.constraints import Problem
from ..core.solution import Solution
from ..core.solver import GsoSolver, SolverConfig
from ..core.types import ClientId, Resolution
from ..obs.names import SPAN_POOL_SOLVE
from ..obs.registry import get_registry
from ..obs.spans import context_token, span, stitch_child

#: Per-worker-process solver, installed by the pool initializer.
_WORKER_SOLVER: Optional[GsoSolver] = None


def _init_worker(config: SolverConfig) -> None:
    """Pool initializer: build this worker's solver once."""
    global _WORKER_SOLVER
    _WORKER_SOLVER = GsoSolver(config)


def _solve_task(job: Tuple[Problem, Dict[str, object]]) -> Tuple[Solution, Dict[str, object]]:
    """One pooled solve (runs in a worker process).

    ``job`` is ``(problem, context_token)``; returns the solution plus
    the worker's self-timed span data for the parent to stitch.
    """
    assert _WORKER_SOLVER is not None, "pool worker used before initialization"
    problem, token = job
    start = time.perf_counter()
    solution = _WORKER_SOLVER.solve(problem)
    child = {
        "name": SPAN_POOL_SOLVE,
        "duration_s": time.perf_counter() - start,
        "token": token,
    }
    return solution, child


class SolvePool:
    """Executes solver calls, in-process or on a process pool.

    Args:
        solver_config: solver tuning shared by every worker.
        workers: process count; 0 means serial in-process solving.
        mp_context: optional ``multiprocessing`` start method ("fork",
            "spawn", ...); ``None`` uses the platform default.
    """

    def __init__(
        self,
        solver_config: Optional[SolverConfig] = None,
        workers: int = 0,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.config = solver_config or SolverConfig()
        self._solver = GsoSolver(self.config)
        self._pool = None
        self.workers = 0
        if workers > 0:
            try:
                import multiprocessing

                ctx = (
                    multiprocessing.get_context(mp_context)
                    if mp_context
                    else multiprocessing.get_context()
                )
                self._pool = ctx.Pool(
                    workers, initializer=_init_worker, initargs=(self.config,)
                )
                self.workers = workers
            except Exception:
                self._pool = None  # degraded but deterministic

    @property
    def is_parallel(self) -> bool:
        """True when a live process pool backs :meth:`solve_many`."""
        return self._pool is not None

    def solve(
        self,
        problem: Problem,
        incumbent: Optional[Mapping[Tuple[ClientId, ClientId], Resolution]] = None,
    ) -> Solution:
        """Solve one problem in-process (supports incumbent stickiness)."""
        return self._solver.solve(problem, incumbent=incumbent)

    def solve_many(self, problems: Sequence[Problem]) -> List[Solution]:
        """Solve a batch, preserving input order.

        Uses the process pool when available, the in-process solver
        otherwise; both paths return identical solutions and both record
        a ``pool.solve`` span per problem into the parent trace.
        """
        if not problems:
            return []
        if self._pool is None:
            out: List[Solution] = []
            for problem in problems:
                with span(SPAN_POOL_SOLVE):
                    out.append(self._solver.solve(problem))
            return out
        token = context_token()
        results = self._pool.map(
            _solve_task, [(p, token) for p in problems]
        )
        solutions: List[Solution] = []
        stitch = get_registry().enabled
        for solution, child in results:
            solutions.append(solution)
            if stitch:
                stitch_child(
                    str(child["name"]),
                    float(child["duration_s"]),
                    token=child.get("token"),
                )
        return solutions

    def close(self) -> None:
        """Shut the process pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self.workers = 0

    def __enter__(self) -> "SolvePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
