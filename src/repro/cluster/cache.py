"""Fingerprint-keyed solution cache: the cluster's repeat-solve shortcut.

Fleet workloads have heavy structural repetition — the controller re-solves
every meeting each 1–3 s (Fig. 12) and most ticks see an unchanged global
picture, while across meetings the population model keeps producing the
same small-mesh shapes.  ``Problem.fingerprint()`` canonicalizes exactly
the inputs the solver can distinguish, so a fingerprint hit may legally
return the previously computed solution byte-for-byte.

The cache is a bounded LRU.  Stored and returned solutions are isolated
(fresh outer dicts around the immutable entries) so one meeting mutating
its copy can never corrupt another meeting's hit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..core.solution import Solution
from ..obs import names as obs_names
from ..obs.registry import get_registry


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`SolutionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before the first lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0


def _isolate(solution: Solution) -> Solution:
    """Copy the mutable outer layers of a solution.

    ``PolicyEntry`` and ``StreamSpec`` are frozen, so copying the two dict
    levels (and the ``reduced`` list) is enough for safe sharing.
    """
    return Solution(
        policies={pub: dict(entries) for pub, entries in solution.policies.items()},
        assignments={sub: dict(per) for sub, per in solution.assignments.items()},
        iterations=solution.iterations,
        reduced=list(solution.reduced),
    )


class SolutionCache:
    """Bounded LRU cache of solved problems, keyed by fingerprint.

    Args:
        capacity: maximum retained entries; least-recently-used entries are
            evicted beyond it.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Solution]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Solution]:
        """Look up a fingerprint; returns an isolated copy on a hit."""
        reg = get_registry()
        cached = self._entries.get(key)
        if cached is None:
            self.stats.misses += 1
            if reg.enabled:
                reg.counter(obs_names.CLUSTER_CACHE, result="miss").inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if reg.enabled:
            reg.counter(obs_names.CLUSTER_CACHE, result="hit").inc()
        return _isolate(cached)

    def put(self, key: str, solution: Solution) -> None:
        """Insert (or refresh) a solution under its fingerprint."""
        self._entries[key] = _isolate(solution)
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        self.stats.evictions += evicted
        self.stats.entries = len(self._entries)
        reg = get_registry()
        if reg.enabled:
            if evicted:
                reg.counter(obs_names.CLUSTER_CACHE_EVICTIONS).inc(evicted)
            reg.gauge(obs_names.CLUSTER_CACHE_ENTRIES).set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()
        self.stats.entries = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolutionCache(entries={len(self._entries)}/{self.capacity}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
