"""Admission control: queue-depth limits that shed load instead of lag.

A controller shard that falls behind must not stall its whole queue — a
late stream configuration is worth little, and Sec. 7's design-for-failure
rule ("the service could continue, however, at the cost of reduced QoE")
applies to overload exactly as it does to crashes.  The admission
controller caps how many solves a shard executes per scheduling round;
requests beyond the cap are **shed**: the affected meeting is served the
cheap :func:`~repro.control.failover.single_stream_fallback` configuration
instead of a full KMR solve, and retried on its next trigger.

Shedding order protects interactivity: oldest requests run first (they
have waited longest inside their debounce window), newest are shed first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..obs import names as obs_names
from ..obs.registry import get_registry
from .scheduler import SolveRequest


@dataclass
class AdmissionStats:
    """Load-shedding accounting of one shard."""

    admitted: int = 0
    shed: int = 0

    @property
    def total(self) -> int:
        """All requests that reached admission."""
        return self.admitted + self.shed


class AdmissionController:
    """Per-round solve budget of one shard.

    Args:
        max_solves_per_round: how many full KMR solves one shard may run
            per scheduling round; requests beyond it degrade to fallback.
    """

    def __init__(self, max_solves_per_round: int = 64) -> None:
        if max_solves_per_round < 1:
            raise ValueError("max_solves_per_round must be >= 1")
        self.max_solves_per_round = max_solves_per_round
        self.stats = AdmissionStats()

    def admit(
        self, requests: Sequence[SolveRequest]
    ) -> Tuple[List[SolveRequest], List[SolveRequest]]:
        """Split a round's due requests into (admitted, shed).

        Requests are admitted oldest-first (by submission time, then
        meeting id for determinism) up to the round budget.
        """
        ordered = sorted(
            requests, key=lambda r: (r.submitted_at_s, r.meeting_id)
        )
        admitted = ordered[: self.max_solves_per_round]
        shed = ordered[self.max_solves_per_round :]
        self.stats.admitted += len(admitted)
        self.stats.shed += len(shed)
        if shed:
            reg = get_registry()
            if reg.enabled:
                reg.counter(obs_names.CLUSTER_SHED).inc(len(shed))
        return admitted, shed

    # -- continuous (event-driven) admission ---------------------------- #

    def over_budget(self, in_flight: int) -> bool:
        """Whether one more solve would exceed the concurrent budget.

        The event-driven ingress has no scheduling rounds; the per-round
        budget is reinterpreted as a bound on solves *in flight* at once.
        """
        return in_flight >= self.max_solves_per_round

    def admit_one(self) -> None:
        """Account one admitted continuous-path solve."""
        self.stats.admitted += 1

    def shed_one(self) -> None:
        """Account one continuous-path shed (and bump the shared metric)."""
        self.stats.shed += 1
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.CLUSTER_SHED).inc()
