"""The sharded controller cluster: many meetings, one disciplined solve
service.

The paper's control plane orchestrates every meeting every 1–3 s across
~1M conferences/day (Sec. 6); *Tetris* (PAPERS.md) frames hosting that
workload on a bounded server fleet as a first-class packing problem.  This
module is the reproduction's control-plane host:

* **sharding** — meetings land on shard workers via a consistent-hash ring
  (:mod:`.hashring`); a shard death re-homes only its own meetings;
* **scheduling** — each shard coalesces/debounces solve demand into the
  Fig. 12 envelope (:mod:`.scheduler`);
* **caching** — solves are keyed by the canonical problem fingerprint and
  served from a bounded LRU when the structure repeats (:mod:`.cache`);
* **execution** — cache misses run on the solve pool (:mod:`.pool`),
  optionally multiprocess;
* **admission** — per-round solve budgets shed overload to the Sec. 7
  single-stream fallback instead of stalling the queue (:mod:`.admission`).

Failure discipline is inherited from Sec. 7 end to end: a dead shard, a
shed request and a crashing solver all degrade the affected meeting to
:func:`~repro.control.failover.single_stream_fallback` — the service
continues, and the meeting re-converges to a full KMR solution on its next
scheduled solve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..control.failover import single_stream_fallback
from ..core.constraints import Problem
from ..core.engine import default_mckp_cache
from ..core.mckp import kernel_stats
from ..core.solution import Solution
from ..core.solver import SolverConfig
from ..obs import events as obs_events
from ..obs import names as obs_names
from ..obs.registry import get_registry
from ..obs.spans import span
from ..placement.loadmodel import (
    DEFAULT_MEETING_COST,
    ShardLoadModel,
    meeting_cost,
)
from ..placement.policies import POLICIES, get_policy
from .admission import AdmissionController
from .cache import SolutionCache
from .hashring import ConsistentHashRing
from .pool import SolvePool
from .scheduler import (
    SolveRequest,
    SolveScheduler,
    TRIGGER_REHOME,
    TRIGGER_SYNC,
)

#: ``ServedSolution.source`` values.
SOURCE_SOLVE = "solve"
SOURCE_CACHE = "cache"
SOURCE_FALLBACK = "fallback"
SOURCE_SHED = "shed"


@dataclass
class ClusterConfig:
    """Sizing and policy knobs of the controller cluster."""

    #: Initial shard workers (named ``shard-0`` .. ``shard-N-1``).
    shards: int = 4
    #: Virtual ring points per shard.
    vnodes: int = 64
    #: Fig. 12 envelope applied by every shard scheduler.
    min_interval_s: float = 1.0
    max_interval_s: float = 3.0
    #: Fingerprint cache; 0 disables caching entirely.
    cache_capacity: int = 4096
    #: Full solves one shard may run per tick; the rest shed to fallback.
    max_solves_per_round: int = 64
    #: Solve-pool processes for cache-miss batches (0 = in-process).
    pool_workers: int = 0
    #: Placement policy homing new meetings: ``hash`` (the ring,
    #: baseline), ``best_fit`` (Tetris packing) or ``least_loaded``.
    placement: str = "hash"
    #: Per-shard assigned-cost budget consulted by ``best_fit`` packing
    #: and the hot-shard detector; 0 disables budget awareness.
    shard_cost_budget: float = 0.0
    #: Solver tuning shared by every shard (the fingerprint granularity).
    solver: SolverConfig = field(
        default_factory=lambda: SolverConfig(granularity_kbps=25)
    )

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        if self.pool_workers < 0:
            raise ValueError("pool_workers must be >= 0")
        if self.max_solves_per_round < 1:
            raise ValueError("max_solves_per_round must be >= 1")
        if self.placement not in POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"known: {', '.join(POLICIES)}"
            )
        if self.shard_cost_budget < 0:
            raise ValueError("shard_cost_budget must be >= 0")

    @property
    def cache_enabled(self) -> bool:
        """True when a solution cache is configured."""
        return self.cache_capacity > 0


@dataclass
class ServedSolution:
    """One configuration pushed to a meeting by the cluster."""

    meeting_id: str
    shard: str
    solution: Solution
    #: Where the configuration came from: a fresh solve, a cache hit, a
    #: failure fallback, or an admission shed (also a fallback, tagged
    #: separately for accounting).
    source: str = SOURCE_SOLVE
    trigger: str = TRIGGER_SYNC
    #: Correlation id of the causal chain that produced this serve
    #: ("" when no event log was active at ingress).
    correlation_id: str = ""


@dataclass
class MeetingRecord:
    """Cluster-side state of one hosted meeting."""

    meeting_id: str
    shard: str
    last_problem: Optional[Problem] = None
    last_solution: Optional[Solution] = None
    solves: int = 0
    cache_hits: int = 0
    fallbacks: int = 0
    rehomes: int = 0


class ShardWorker:
    """One controller shard: a scheduler plus an admission budget."""

    def __init__(self, name: str, config: ClusterConfig) -> None:
        self.name = name
        self.alive = True
        self.scheduler = SolveScheduler(
            min_interval_s=config.min_interval_s,
            max_interval_s=config.max_interval_s,
            shard=name,
        )
        self.admission = AdmissionController(
            max_solves_per_round=config.max_solves_per_round
        )
        self.solves = 0
        self.fallbacks = 0


class ControllerCluster:
    """Hosts many meetings across shard workers behind one solve service.

    Typical use (virtual-time driven)::

        cluster = ControllerCluster(ClusterConfig(shards=4))
        cluster.submit("meeting-1", problem, now_s=0.0)   # event trigger
        served = cluster.tick(now_s=1.0)                  # run due solves

    or, for synchronous workloads (the fleet simulation)::

        solution = cluster.solve_conference("conf-17", problem)
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        names = [f"shard-{i}" for i in range(self.config.shards)]
        self._ring = ConsistentHashRing(names, vnodes=self.config.vnodes)
        self._shards: Dict[str, ShardWorker] = {
            name: ShardWorker(name, self.config) for name in names
        }
        self.cache: Optional[SolutionCache] = (
            SolutionCache(self.config.cache_capacity)
            if self.config.cache_enabled
            else None
        )
        self.pool = SolvePool(
            solver_config=self.config.solver, workers=self.config.pool_workers
        )
        self._meetings: Dict[str, MeetingRecord] = {}
        self.placement_policy = get_policy(self.config.placement)
        self.load_model = ShardLoadModel(names)
        #: reason -> count of live migrations (deterministic mirror of
        #: the ``repro_placement_migrations_total`` counter).
        self.migrations: Dict[str, int] = {}
        self.shard_failovers = 0
        #: Fault-injection hook (repro.chaos): called with
        #: ``(meeting_id, problem)`` before any solve attempt (including
        #: cache lookups).  Raising degrades that meeting to the Sec. 7
        #: single-stream fallback, exactly like a crashing solver.
        self.solve_interceptor: Optional[
            Callable[[str, Problem], None]
        ] = None

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #

    @property
    def live_shards(self) -> List[str]:
        """Names of shards currently serving, sorted."""
        return sorted(n for n, s in self._shards.items() if s.alive)

    @property
    def meetings(self) -> List[str]:
        """Hosted meeting ids, sorted."""
        return sorted(self._meetings)

    def shard_of(self, meeting_id: str) -> str:
        """The live shard a meeting id hashes to."""
        return self._ring.node_for(meeting_id)

    def meeting(self, meeting_id: str) -> MeetingRecord:
        """The cluster-side record of a hosted meeting."""
        return self._meetings[meeting_id]

    def _place(self, meeting_id: str, cost: float) -> str:
        """Consult the placement policy for one meeting's home shard."""
        live = self.live_shards
        return self.placement_policy.choose(
            meeting_id,
            cost,
            live,
            self.load_model.loads(live),
            self.config.shard_cost_budget,
            self._ring,
        )

    def register(
        self, meeting_id: str, problem: Optional[Problem] = None
    ) -> str:
        """Home a meeting via the placement policy (idempotent); returns
        the shard.  A ``problem`` sharpens the load model's cost estimate
        (otherwise new meetings are assumed minimal two-party calls)."""
        record = self._meetings.get(meeting_id)
        if record is None:
            cost = (
                meeting_cost(problem)
                if problem is not None
                else DEFAULT_MEETING_COST
            )
            shard = self._place(meeting_id, cost)
            record = MeetingRecord(meeting_id, shard)
            self._meetings[meeting_id] = record
            self.load_model.assign(meeting_id, shard, cost)
            reg = get_registry()
            if reg.enabled:
                reg.counter(
                    obs_names.PLACEMENT_DECISIONS,
                    policy=self.placement_policy.name,
                ).inc()
            self._refresh_meeting_gauges()
        elif problem is not None:
            self.load_model.update_cost(meeting_id, meeting_cost(problem))
        return record.shard

    def _refresh_meeting_gauges(self) -> None:
        reg = get_registry()
        if not reg.enabled:
            return
        per_shard = {name: 0 for name in self._shards}
        for record in self._meetings.values():
            per_shard[record.shard] = per_shard.get(record.shard, 0) + 1
        for name, count in per_shard.items():
            reg.gauge(obs_names.CLUSTER_MEETINGS, shard=name).set(count)
            reg.gauge(obs_names.PLACEMENT_SHARD_COST, shard=name).set(
                self.load_model.load(name)
            )

    # ------------------------------------------------------------------ #
    # Demand
    # ------------------------------------------------------------------ #

    def submit(
        self,
        meeting_id: str,
        problem: Problem,
        now_s: float,
        trigger: str = "event",
    ) -> str:
        """File an event-triggered solve request; returns the owning shard."""
        shard = self.register(meeting_id, problem)
        record = self._meetings[meeting_id]
        record.last_problem = problem
        self._shards[shard].scheduler.submit(
            meeting_id, problem, now_s, trigger=trigger
        )
        return shard

    # ------------------------------------------------------------------ #
    # Fault-injection hook points (repro.chaos)
    # ------------------------------------------------------------------ #

    def defer_meeting(self, meeting_id: str, delay_s: float) -> bool:
        """Defer a meeting's pending solve request (delayed-report fault).

        Returns True if a pending request existed and was deferred.
        """
        record = self._meetings.get(meeting_id)
        if record is None:
            return False
        worker = self._shards.get(record.shard)
        if worker is None:
            return False
        return worker.scheduler.defer(meeting_id, delay_s)

    def drop_pending(self, meeting_id: str) -> bool:
        """Drop a meeting's pending solve request (lost-report fault).

        Returns True if a pending request existed and was dropped.
        """
        record = self._meetings.get(meeting_id)
        if record is None:
            return False
        worker = self._shards.get(record.shard)
        if worker is None:
            return False
        return worker.scheduler.drop_pending(meeting_id) is not None

    # ------------------------------------------------------------------ #
    # The solve service
    # ------------------------------------------------------------------ #

    def _cache_key(self, problem: Problem) -> str:
        return problem.fingerprint(self.config.solver.granularity_kbps)

    def _fallback(self, record: MeetingRecord, problem: Problem) -> Solution:
        """Serve the Sec. 7 degenerate configuration and account for it."""
        solution = single_stream_fallback(problem)
        record.fallbacks += 1
        shard = self._shards.get(record.shard)
        if shard is not None:
            shard.fallbacks += 1
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.CLUSTER_FALLBACKS).inc()
        return solution

    def _serve(
        self,
        record: MeetingRecord,
        problem: Problem,
        solution: Solution,
        source: str,
        trigger: str,
        now_s: float,
        correlation_id: str = "",
    ) -> ServedSolution:
        """Commit a configuration to a meeting's record and scheduler."""
        record.last_problem = problem
        record.last_solution = solution
        if source == SOURCE_SOLVE:
            record.solves += 1
        elif source == SOURCE_CACHE:
            record.cache_hits += 1
        shard = self._shards.get(record.shard)
        if shard is not None:
            if source in (SOURCE_SOLVE, SOURCE_CACHE):
                shard.solves += 1
            shard.scheduler.mark_solved(record.meeting_id, problem, now_s)
        log = obs_events.active_event_log()
        if log is not None:
            log.emit(
                obs_events.SOLVE_SERVED,
                t=now_s,
                meeting=record.meeting_id,
                cid=correlation_id,
                shard=record.shard,
                source=source,
                trigger=trigger,
                iterations=solution.iterations,
            )
        return ServedSolution(
            meeting_id=record.meeting_id,
            shard=record.shard,
            solution=solution,
            source=source,
            trigger=trigger,
            correlation_id=correlation_id,
        )

    def _solve_service(self, problem: Problem) -> Tuple[Solution, str]:
        """Cache lookup, then solve; returns (solution, source).

        Raises whatever the solver raises — callers map failures to the
        fallback policy.
        """
        start = time.perf_counter()
        with span(obs_names.SPAN_CLUSTER_SOLVE):
            key = self._cache_key(problem) if self.cache is not None else None
            if key is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    self._observe_solve_seconds(start)
                    return cached, SOURCE_CACHE
            solution = self.pool.solve(problem)
            if key is not None:
                self.cache.put(key, solution)
        self._observe_solve_seconds(start)
        return solution, SOURCE_SOLVE

    @staticmethod
    def _observe_solve_seconds(start: float) -> None:
        reg = get_registry()
        if reg.enabled:
            reg.histogram(obs_names.CLUSTER_SOLVE_SECONDS).observe(
                time.perf_counter() - start
            )

    def solve_conference(self, meeting_id: str, problem: Problem) -> Solution:
        """Synchronous solve-service path (fleet workloads).

        Routes through the meeting's shard for accounting, consults the
        fingerprint cache, and never raises: solver failures degrade to
        the single-stream fallback (Sec. 7).
        """
        self.register(meeting_id, problem)
        record = self._meetings[meeting_id]
        reg = get_registry()
        if reg.enabled:
            reg.counter(
                obs_names.CLUSTER_SOLVE_REQUESTS, trigger=TRIGGER_SYNC
            ).inc()
        log = obs_events.active_event_log()
        cid = ""
        if log is not None:
            cid = log.mint(meeting_id)
            log.emit(
                obs_events.SEMB_REPORT,
                t=0.0,
                meeting=meeting_id,
                cid=cid,
                shard=record.shard,
                trigger=TRIGGER_SYNC,
            )
        try:
            if self.solve_interceptor is not None:
                self.solve_interceptor(meeting_id, problem)
            solution, source = self._solve_service(problem)
        except Exception:
            solution = self._fallback(record, problem)
            source = SOURCE_FALLBACK
        return self._serve(
            record, problem, solution, source, TRIGGER_SYNC, now_s=0.0,
            correlation_id=cid,
        ).solution

    def solve_request(
        self,
        meeting_id: str,
        problem: Problem,
        now_s: float,
        trigger: str = "event",
        correlation_id: str = "",
    ) -> ServedSolution:
        """The continuous (event-driven) solve path: one request, served
        now.

        Unlike :meth:`submit`/:meth:`tick` there is no scheduling round —
        the ingress plane (``repro.ingress``) owns debouncing, coalescing
        and admission, and calls this exactly when a decision is due.
        Routes through the meeting's shard for accounting, honors the
        chaos interceptor and the fingerprint cache, and never raises:
        failures degrade to the Sec. 7 single-stream fallback.
        """
        self.register(meeting_id, problem)
        record = self._meetings[meeting_id]
        worker = self._shards.get(record.shard)
        if worker is not None:
            worker.admission.admit_one()
        reg = get_registry()
        if reg.enabled:
            reg.counter(
                obs_names.CLUSTER_SOLVE_REQUESTS, trigger=trigger
            ).inc()
        try:
            if self.solve_interceptor is not None:
                self.solve_interceptor(meeting_id, problem)
            solution, source = self._solve_service(problem)
        except Exception:
            solution = self._fallback(record, problem)
            source = SOURCE_FALLBACK
        return self._serve(
            record,
            problem,
            solution,
            source,
            trigger,
            now_s,
            correlation_id=correlation_id,
        )

    def shed_request(
        self,
        meeting_id: str,
        problem: Problem,
        now_s: float,
        trigger: str = "event",
        correlation_id: str = "",
    ) -> ServedSolution:
        """Shed one continuous-path request: serve the Sec. 7 fallback.

        The ingress backpressure ladder's last rung — the meeting gets a
        serviceable (degraded) configuration instead of queueing deeper.
        """
        self.register(meeting_id, problem)
        record = self._meetings[meeting_id]
        worker = self._shards.get(record.shard)
        if worker is not None:
            worker.admission.shed_one()
        solution = self._fallback(record, problem)
        return self._serve(
            record,
            problem,
            solution,
            SOURCE_SHED,
            trigger,
            now_s,
            correlation_id=correlation_id,
        )

    # ------------------------------------------------------------------ #
    # The scheduling loop
    # ------------------------------------------------------------------ #

    def tick(self, now_s: float) -> List[ServedSolution]:
        """Run one scheduling round across every live shard.

        Per shard: pop due requests, admit up to the round budget, shed
        the rest to fallback, serve admitted requests from the cache or
        the solve pool (batched).  Returns everything served this round,
        in deterministic (shard, due-time, meeting) order.
        """
        served: List[ServedSolution] = []
        reg = get_registry()
        with span(obs_names.SPAN_CLUSTER_TICK):
            for name in self.live_shards:
                worker = self._shards[name]
                due = worker.scheduler.due(now_s)
                if reg.enabled:
                    reg.histogram(
                        obs_names.CLUSTER_QUEUE_DEPTH, shard=name
                    ).observe(len(due))
                if not due:
                    continue
                admitted, shed = worker.admission.admit(due)
                for request in shed:
                    record = self._meetings[request.meeting_id]
                    solution = self._fallback(record, request.problem)
                    served.append(
                        self._serve(
                            record,
                            request.problem,
                            solution,
                            SOURCE_SHED,
                            request.trigger,
                            now_s,
                            correlation_id=request.correlation_id,
                        )
                    )
                served.extend(self._run_admitted(admitted, now_s))
        return served

    def _run_admitted(
        self, admitted: List[SolveRequest], now_s: float
    ) -> List[ServedSolution]:
        """Serve admitted requests: cache hits inline, misses batched."""
        served: List[ServedSolution] = []
        misses: List[SolveRequest] = []
        for request in admitted:
            record = self._meetings[request.meeting_id]
            if self.solve_interceptor is not None:
                try:
                    self.solve_interceptor(request.meeting_id, request.problem)
                except Exception:
                    solution = self._fallback(record, request.problem)
                    served.append(
                        self._serve(
                            record,
                            request.problem,
                            solution,
                            SOURCE_FALLBACK,
                            request.trigger,
                            now_s,
                            correlation_id=request.correlation_id,
                        )
                    )
                    continue
            if self.cache is not None:
                start = time.perf_counter()
                cached = self.cache.get(self._cache_key(request.problem))
                if cached is not None:
                    self._observe_solve_seconds(start)
                    served.append(
                        self._serve(
                            record,
                            request.problem,
                            cached,
                            SOURCE_CACHE,
                            request.trigger,
                            now_s,
                            correlation_id=request.correlation_id,
                        )
                    )
                    continue
            misses.append(request)
        if not misses:
            return served
        try:
            start = time.perf_counter()
            solutions = self.pool.solve_many([r.problem for r in misses])
            batch_failed = False
        except Exception:
            solutions = []
            batch_failed = True
        if batch_failed:
            # Retry individually so one poisoned problem degrades only its
            # own meeting (Sec. 7), not the whole batch.
            for request in misses:
                record = self._meetings[request.meeting_id]
                try:
                    solution, source = self._solve_service(request.problem)
                except Exception:
                    solution = self._fallback(record, request.problem)
                    source = SOURCE_FALLBACK
                served.append(
                    self._serve(
                        record,
                        request.problem,
                        solution,
                        source,
                        request.trigger,
                        now_s,
                        correlation_id=request.correlation_id,
                    )
                )
            return served
        per_solve = (time.perf_counter() - start) / max(1, len(misses))
        reg = get_registry()
        for request, solution in zip(misses, solutions):
            if reg.enabled:
                reg.histogram(obs_names.CLUSTER_SOLVE_SECONDS).observe(
                    per_solve
                )
            record = self._meetings[request.meeting_id]
            if self.cache is not None:
                self.cache.put(self._cache_key(request.problem), solution)
            served.append(
                self._serve(
                    record,
                    request.problem,
                    solution,
                    SOURCE_SOLVE,
                    request.trigger,
                    now_s,
                    correlation_id=request.correlation_id,
                )
            )
        return served

    # ------------------------------------------------------------------ #
    # Failure and rebalance
    # ------------------------------------------------------------------ #

    def migrate_meeting(
        self,
        meeting_id: str,
        target: str,
        now_s: float,
        reason: str = "manual",
        degrade: bool = True,
    ) -> Optional[ServedSolution]:
        """Live-migrate one meeting to ``target`` (the shared primitive
        behind shard death, ring growth, hot-shard drains and scale-in).

        With ``degrade=True`` (the Sec. 7 handover discipline) the
        meeting is immediately served the single-stream fallback built
        from its last snapshot, then re-converges via a ``rehome``
        solve request on the target; with ``degrade=False`` the move is
        seamless — only the rehome request is filed.

        Returns the degraded :class:`ServedSolution` (None when the
        meeting was already on ``target``, had no snapshot to serve, or
        ``degrade=False``).

        Raises:
            KeyError: for an unknown meeting.
            ValueError: for a dead or unknown target shard.
        """
        record = self._meetings[meeting_id]
        worker = self._shards.get(target)
        if worker is None or not worker.alive:
            raise ValueError(f"no live shard {target!r}")
        source = record.shard
        if source == target:
            return None
        old = self._shards.get(source)
        handover = old.scheduler.forget(meeting_id) if old else None
        problem = handover or record.last_problem
        record.shard = target
        record.rehomes += 1
        self.load_model.move(meeting_id, target)
        self.migrations[reason] = self.migrations.get(reason, 0) + 1
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.PLACEMENT_MIGRATIONS, reason=reason).inc()
        log = obs_events.active_event_log()
        # Capture the predecessor cid before minting the degradation's
        # own chain, so trace trees keep the re-homed meeting's lineage.
        parent = (
            log.last_cid(meeting_id)
            if degrade and log is not None
            else ""
        )
        cid = log.mint(meeting_id) if degrade and log is not None else ""
        if log is not None:
            if degrade:
                attrs = {"parent_cid": parent} if parent else {}
                log.emit(
                    obs_events.MEETING_REHOMED,
                    t=now_s,
                    meeting=meeting_id,
                    cid=cid,
                    shard=target,
                    reason=reason,
                    previous_shard=source,
                    **attrs,
                )
            else:
                log.emit(
                    obs_events.MEETING_REHOMED,
                    t=now_s,
                    meeting=meeting_id,
                    shard=target,
                    reason=reason,
                    previous_shard=source,
                )
        served: Optional[ServedSolution] = None
        if problem is not None:
            if degrade:
                solution = self._fallback(record, problem)
                served = self._serve(
                    record,
                    problem,
                    solution,
                    SOURCE_FALLBACK,
                    TRIGGER_REHOME,
                    now_s,
                    correlation_id=cid,
                )
            # The rehome request re-converges the meeting to a full KMR
            # solution on a later tick.
            worker.scheduler.submit(
                meeting_id, problem, now_s, trigger=TRIGGER_REHOME
            )
        self._refresh_meeting_gauges()
        return served

    def kill_shard(self, name: str, now_s: float) -> List[ServedSolution]:
        """Take one shard down and re-home its meetings (Sec. 7 handover).

        Every affected meeting immediately degrades to the single-stream
        fallback built from its last snapshot (the service continues), is
        re-homed onto its new ring shard, and gets a ``rehome``-trigger
        solve request there — the next :meth:`tick` re-converges it to a
        full KMR solution.

        Returns the fallback configurations served during handover.

        Raises:
            ValueError: for an unknown or already-dead shard.
            RuntimeError: when no other live shard remains to absorb the
                meetings — the caller is taking the whole service down.
        """
        worker = self._shards.get(name)
        if worker is None or not worker.alive:
            raise ValueError(f"no live shard {name!r}")
        if len(self.live_shards) <= 1:
            raise RuntimeError("cannot kill the last live shard")
        worker.alive = False
        self._ring.remove_node(name)
        self.shard_failovers += 1
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.CLUSTER_SHARD_FAILOVERS).inc()
        log = obs_events.active_event_log()
        if log is not None:
            log.emit(obs_events.SHARD_KILLED, t=now_s, shard=name)

        served: List[ServedSolution] = []
        rehomed = 0
        for meeting_id in self.meetings:
            record = self._meetings[meeting_id]
            if record.shard != name:
                continue
            # Sequential placement: each migration updates the load
            # model, so packing policies account for already-moved load.
            target = self._place(
                meeting_id, self.load_model.cost_of(meeting_id)
            )
            degraded = self.migrate_meeting(
                meeting_id, target, now_s, reason="shard_killed"
            )
            rehomed += 1
            if degraded is not None:
                served.append(degraded)
        if reg.enabled and rehomed:
            reg.counter(obs_names.CLUSTER_REHOMED).inc(rehomed)
        self.load_model.remove_shard(name)
        self._refresh_meeting_gauges()
        return served

    def add_shard(self, name: Optional[str] = None, now_s: float = 0.0) -> str:
        """Grow the fleet by one shard.

        Under the ``hash`` policy the new ring node captures its keys and
        those meetings re-home (seamless — no degraded serves); packing
        policies keep existing placements sticky and simply start offering
        the new shard to future placements and drains.
        """
        if name is None:
            k = len(self._shards)
            while f"shard-{k}" in self._shards:
                k += 1
            name = f"shard-{k}"
        if name in self._shards and self._shards[name].alive:
            raise ValueError(f"shard {name!r} already live")
        self._ring.add_node(name)
        self._shards[name] = ShardWorker(name, self.config)
        self.load_model.add_shard(name)
        log = obs_events.active_event_log()
        if log is not None:
            log.emit(obs_events.SHARD_ADDED, t=now_s, shard=name)
        rehomed = 0
        if self.placement_policy.uses_ring:
            for meeting_id in self.meetings:
                record = self._meetings[meeting_id]
                new_shard = self._ring.node_for(meeting_id)
                if new_shard == record.shard:
                    continue
                self.migrate_meeting(
                    meeting_id,
                    new_shard,
                    now_s,
                    reason="shard_added",
                    degrade=False,
                )
                rehomed += 1
        reg = get_registry()
        if reg.enabled and rehomed:
            reg.counter(obs_names.CLUSTER_REHOMED).inc(rehomed)
        self._refresh_meeting_gauges()
        return name

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """A JSON-friendly snapshot of the cluster's counters."""
        shards = {}
        for name in sorted(self._shards):
            worker = self._shards[name]
            shards[name] = {
                "alive": worker.alive,
                "meetings": sum(
                    1 for r in self._meetings.values() if r.shard == name
                ),
                "solves": worker.solves,
                "fallbacks": worker.fallbacks,
                "queue_depth": worker.scheduler.queue_depth,
                "submitted": worker.scheduler.stats.submitted,
                "coalesced": worker.scheduler.stats.coalesced,
                "time_triggered": worker.scheduler.stats.time_triggered,
                "shed": worker.admission.stats.shed,
            }
        cache = None
        if self.cache is not None:
            cache = {
                "entries": len(self.cache),
                "capacity": self.cache.capacity,
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "evictions": self.cache.stats.evictions,
                "hit_rate": self.cache.stats.hit_rate,
            }
        return {
            "meetings": len(self._meetings),
            "live_shards": self.live_shards,
            "shard_failovers": self.shard_failovers,
            "pool_workers": self.pool.workers,
            "placement": {
                "policy": self.placement_policy.name,
                "budget": self.config.shard_cost_budget,
                "migrations": dict(sorted(self.migrations.items())),
                **self.load_model.snapshot(),
            },
            "shards": shards,
            "cache": cache,
            "mckp_cache": default_mckp_cache().snapshot(),
            "kernel": self.config.solver.kernel,
            "mckp_kernel": kernel_stats().snapshot(),
        }

    def close(self) -> None:
        """Release pool resources (idempotent)."""
        self.pool.close()

    def __enter__(self) -> "ControllerCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
