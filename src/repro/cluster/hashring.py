"""Consistent-hash sharding of meeting ids onto controller shard workers.

The control plane hosts ~1M conferences/day (Sec. 6); no single controller
process holds them all.  Meetings are placed on shard workers with a
classic consistent-hash ring so that

* placement is a pure function of ``(meeting_id, live shard set)`` — every
  component (routers, schedulers, tests) computes the same home without
  coordination;
* losing one shard re-homes *only that shard's* meetings (~``1/N`` of the
  fleet); the rest keep their incumbent controller state untouched.

Hashes come from SHA-1, not Python's ``hash()`` — ``PYTHONHASHSEED``
randomizes string hashing per process, and shard placement must agree
across processes (the worker pool) and across runs (seeded fleet
reproductions).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of a string key."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """A consistent-hash ring with virtual nodes.

    Args:
        nodes: initial node names.
        vnodes: virtual points per node.  More vnodes smooth the load split
            (the classic ``O(sqrt(log N / vnodes))`` imbalance bound); 64
            keeps the worst shard within a few percent of fair share for
            small clusters.

    Raises:
        ValueError: on duplicate node names or a non-positive vnode count.
    """

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._vnodes = vnodes
        #: sorted ring points -> node name, kept as parallel arrays for bisect.
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> List[str]:
        """Live node names, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        """Add a node (its vnode points) to the ring."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        points = [stable_hash(f"{node}#{k}") for k in range(self._vnodes)]
        self._nodes[node] = points
        for point in points:
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove_node(self, node: str) -> None:
        """Remove a node; its keys fall to their ring successors."""
        points = self._nodes.pop(node, None)
        if points is None:
            raise ValueError(f"node {node!r} not on the ring")
        for point in points:
            # A point may collide between nodes; remove the one owned here.
            idx = bisect.bisect_left(self._points, point)
            while idx < len(self._points) and self._points[idx] == point:
                if self._owners[idx] == node:
                    del self._points[idx]
                    del self._owners[idx]
                    break
                idx += 1

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first ring point clockwise of its hash).

        Raises:
            LookupError: when the ring is empty.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        idx = bisect.bisect_right(self._points, stable_hash(key))
        if idx == len(self._points):
            idx = 0  # wrap around the ring
        return self._owners[idx]

    def assignment(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Map every node to the (sorted) keys it owns."""
        placed: Dict[str, List[str]] = {node: [] for node in self._nodes}
        for key in sorted(keys):
            placed[self.node_for(key)].append(key)
        return placed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConsistentHashRing(nodes={len(self._nodes)}, "
            f"vnodes={self._vnodes})"
        )


def moved_keys(
    before: ConsistentHashRing, after: ConsistentHashRing, keys: Sequence[str]
) -> List[Tuple[str, str, str]]:
    """Which keys change owner between two ring states.

    Returns:
        ``(key, old_node, new_node)`` triples, sorted by key — the re-home
        set a rebalance must migrate.
    """
    moves = []
    for key in sorted(keys):
        old = before.node_for(key)
        new = after.node_for(key)
        if old != new:
            moves.append((key, old, new))
    return moves
