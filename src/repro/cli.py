"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the library's main entry points:

* ``solve`` — orchestrate a meeting described as ``id:up:down`` client
  specs and print the stream plan (the core algorithm, no simulation);
* ``meeting`` — run a packet-level meeting simulation and print the QoE
  report (optionally comparing two schemes);
* ``rollout`` — run the fleet/deployment simulation for a date range and
  print daily metrics;
* ``cluster`` — the sharded controller cluster (``docs/ARCHITECTURE.md``,
  "Controller cluster"): ``cluster run`` pushes a fleet workload through
  the cluster's solve service (sharding + fingerprint cache + worker
  pool) and reports daily metrics plus cluster counters; ``cluster
  stats`` drives a synthetic event/tick workload through the shard
  schedulers (coalescing, admission, optional shard kill) and dumps the
  stats snapshot;
* ``place`` — fleet placement (see ``docs/PLACEMENT.md``): ``place run``
  packs one sampled fleet with one policy and prints the packing,
  ``place compare`` races every policy on the same workload and prints
  the sustainable meetings/sec frontier, ``place stats`` drives real
  meetings through a placed cluster (optionally rebalancing hot shards)
  and dumps the load-model snapshot;
* ``chaos`` — deterministic fault injection + invariant checking (see
  ``docs/RESILIENCE.md``): ``chaos run`` replays one scenario at one
  seed, ``chaos soak`` sweeps scenarios x seeds (running each twice and
  demanding byte-identical reports) and exits non-zero on any invariant
  violation, ``chaos scenarios`` lists the registry;
* ``obs`` — the observability surface (see ``docs/OBSERVABILITY.md``):
  run a solve or an example with instrumentation enabled and dump the
  metrics snapshot + per-iteration KMR trace (``obs solve``,
  ``obs example``), list the canonical metric names (``obs names``),
  run a chaos scenario under the full telemetry pipeline and print the
  SLO verdicts + event/time-series stats (``obs report``), or
  reconstruct one meeting's correlated causal timeline
  (``obs timeline``).
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import runpy
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import obs
from .conference import ClientSpec, MeetingSpec, run_meeting
from .core import (
    Bandwidth,
    GsoSolver,
    Resolution,
    SolverConfig,
    default_mckp_cache,
    make_ladder,
)
from .core.constraints import Problem, Subscription
from .obs import names as obs_names


def _parse_client(text: str) -> ClientSpec:
    """Parse ``id:uplink_kbps:downlink_kbps[:loss[:jitter_ms]]``."""
    parts = text.split(":")
    if len(parts) < 3:
        raise argparse.ArgumentTypeError(
            f"client spec {text!r} must be id:up:down[:loss[:jitter_ms]]"
        )
    try:
        spec = ClientSpec(
            client_id=parts[0],
            uplink_kbps=float(parts[1]),
            downlink_kbps=float(parts[2]),
            loss_rate=float(parts[3]) if len(parts) > 3 else 0.0,
            jitter_ms=float(parts[4]) if len(parts) > 4 else 0.0,
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad client spec {text!r}: {exc}")
    return spec


def _cmd_solve(args: argparse.Namespace) -> int:
    ladder = make_ladder(levels_per_resolution=args.levels)
    clients = {c.client_id: c for c in args.clients}
    if len(clients) < 2:
        print("need at least two clients", file=sys.stderr)
        return 2
    subscriptions = [
        Subscription(a, b, Resolution.P720)
        for a in clients
        for b in clients
        if a != b
    ]
    problem = Problem(
        feasible_streams={c: ladder for c in clients},
        bandwidth={
            c.client_id: Bandwidth(
                int(c.uplink_kbps), int(c.downlink_kbps)
            )
            for c in clients.values()
        },
        subscriptions=subscriptions,
    )
    try:
        config = SolverConfig(granularity_kbps=args.granularity)
    except ValueError as exc:
        # e.g. an unknown REPRO_KERNEL value reaching default_kernel()
        print(f"repro solve: {exc}", file=sys.stderr)
        return 2
    solver = GsoSolver(config)
    solution, stats = solver.solve_with_stats(problem)
    solution.validate(problem)
    print(solution.summary())
    print(
        f"({stats.iterations} iteration(s), "
        f"{stats.wall_time_s * 1000:.1f} ms)"
    )
    eng = stats.engine
    cache = default_mckp_cache().snapshot()
    print(
        f"(engine: {eng.step1_solved} step-1 solves, "
        f"{eng.step1_skipped} skipped by dirty-set, "
        f"{eng.deduped} deduped, "
        f"{eng.cache_hits}/{eng.cache_hits + eng.cache_misses} cache hits; "
        f"process cache {cache['entries']}/{cache['capacity']} entries, "
        f"hit rate {cache['hit_rate']:.2f})"
    )
    print(
        f"(kernel: {stats.kernel}, "
        f"{eng.batched_solves} batched solve(s) in {eng.batches} batch(es))"
    )
    return 0


def _cmd_meeting(args: argparse.Namespace) -> int:
    for mode in args.modes:
        try:
            spec = MeetingSpec(
                clients=list(args.clients),
                mode=mode,
                duration_s=args.duration,
                warmup_s=args.warmup,
                seed=args.seed,
            )
            report = run_meeting(spec)
        except ValueError as exc:
            print(f"repro meeting: {exc}", file=sys.stderr)
            return 2
        print(f"\n=== {mode} ===")
        print(
            f"framerate={report.mean_framerate():.1f}fps  "
            f"video stall={report.mean_video_stall():.1%}  "
            f"quality={report.mean_quality():.1f}  "
            f"voice stall={report.mean_voice_stall():.1%}"
        )
        for view in report.views:
            print(
                f"  {view.subscriber} <- {view.publisher}: "
                f"{view.framerate:.1f}fps  stall={view.stall_rate:.1%}  "
                f"{view.playback.rendered_kbps:.0f}kbps @ {view.top_resolution}"
            )
    return 0


def _cmd_rollout(args: argparse.Namespace) -> int:
    from .deploy import DeploymentSimulation

    try:
        sim = DeploymentSimulation(conferences_per_day=args.conferences)
    except ValueError as exc:
        print(f"repro rollout: {exc}", file=sys.stderr)
        return 2
    day = dt.date.fromisoformat(args.start)
    end = dt.date.fromisoformat(args.end)
    if end < day:
        print("end date precedes start date", file=sys.stderr)
        return 2
    print("date        coverage  video-stall  voice-stall  framerate")
    while day <= end:
        p = sim.run_day(day)
        print(
            f"{p.day}  {p.coverage:8.2f}  {p.video_stall:11.3f}  "
            f"{p.voice_stall:11.3f}  {p.framerate:9.1f}"
        )
        day += dt.timedelta(days=args.stride)
    return 0


# --------------------------------------------------------------------- #
# Cluster commands
# --------------------------------------------------------------------- #


def _make_cluster(args: argparse.Namespace) -> "object":
    from .cluster import ClusterConfig, ControllerCluster

    try:
        config = ClusterConfig(
            shards=args.shards,
            cache_capacity=args.cache_capacity,
            pool_workers=args.workers,
            max_solves_per_round=args.max_solves_per_round,
        )
    except ValueError as exc:
        raise SystemExit(f"repro cluster: {exc}")
    return ControllerCluster(config)


def _print_cluster_stats(cluster: "object") -> None:
    import json

    print("\n=== cluster stats ===")
    print(json.dumps(cluster.stats(), indent=2))


def _cmd_cluster_run(args: argparse.Namespace) -> int:
    from .deploy import DeploymentSimulation

    day = dt.date.fromisoformat(args.start)
    end = dt.date.fromisoformat(args.end)
    if end < day:
        print("end date precedes start date", file=sys.stderr)
        return 2
    cluster = _make_cluster(args)
    try:
        sim = DeploymentSimulation(
            conferences_per_day=args.conferences, cluster=cluster
        )
        print("date        coverage  video-stall  voice-stall  framerate")
        while day <= end:
            p = sim.run_day(day)
            print(
                f"{p.day}  {p.coverage:8.2f}  {p.video_stall:11.3f}  "
                f"{p.voice_stall:11.3f}  {p.framerate:9.1f}"
            )
            day += dt.timedelta(days=args.stride)
        _print_cluster_stats(cluster)
    finally:
        cluster.close()
    return 0


def _cmd_cluster_stats(args: argparse.Namespace) -> int:
    """Drive a synthetic event workload through the shard schedulers."""
    import random as _random

    from .deploy.fleet import FleetSampler
    from .deploy.rollout import DeploymentSimulation

    cluster = _make_cluster(args)
    try:
        sim = DeploymentSimulation()
        sampler = FleetSampler(_random.Random(args.seed))
        scorer_problems = []
        from .deploy.fleet import ConferenceScorer

        scorer = ConferenceScorer()
        for i in range(args.meetings):
            rng = sim._conference_rng(dt.date(2021, 12, 25), i)
            conf = sampler.sample_conference(rng=rng)
            scorer_problems.append(
                (f"meeting-{i}", scorer._gso_problem(conf))
            )
        killed = False
        for tick in range(args.ticks):
            now = float(tick)
            # Event churn: every meeting re-reports each tick; half report
            # twice (coalesced into one pending solve).
            for i, (mid, problem) in enumerate(scorer_problems):
                cluster.submit(mid, problem, now)
                if i % 2 == 0:
                    cluster.submit(mid, problem, now)
            if args.kill_shard and not killed and tick == args.ticks // 2:
                # Kill the busiest shard so the failover actually shows.
                victim = max(
                    cluster.live_shards,
                    key=lambda n: cluster.stats()["shards"][n]["meetings"],
                )
                served = cluster.kill_shard(victim, now)
                print(
                    f"[tick {tick}] killed {victim}: {len(served)} "
                    "meeting(s) degraded to fallback and re-homed"
                )
                killed = True
            served = cluster.tick(now)
            by_source: dict = {}
            for s in served:
                by_source[s.source] = by_source.get(s.source, 0) + 1
            print(f"[tick {tick}] served {len(served)}: {by_source}")
        _print_cluster_stats(cluster)
    finally:
        cluster.close()
    return 0


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=4096,
        help="fingerprint-cache entries (0 disables caching)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="solve-pool processes (0 = in-process)",
    )
    parser.add_argument("--max-solves-per-round", type=int, default=64)


# --------------------------------------------------------------------- #
# Placement commands
# --------------------------------------------------------------------- #


def _cmd_place_run(args: argparse.Namespace) -> int:
    """Place one sampled fleet with one policy; print the packing."""
    import json

    from .deploy.vectorfleet import place_fleet, sample_fleet, sustainable_rate

    try:
        workload = sample_fleet(
            args.seed,
            users=args.users,
            webinars=args.webinars,
            max_size=args.max_size,
        )
        placement = place_fleet(
            workload, policy=args.policy, shards=args.shards
        )
    except ValueError as exc:
        print(f"repro place: {exc}", file=sys.stderr)
        return 2
    rate = sustainable_rate(workload, placement, slo_p95_s=args.slo_p95)
    payload = {
        "seed": args.seed,
        "users": workload.users,
        "meetings": workload.meetings,
        "slo_p95_s": args.slo_p95,
        **placement.to_dict(),
        "meetings_per_s": round(rate, 3),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_place_compare(args: argparse.Namespace) -> int:
    """Race every placement policy on one workload; print the frontier."""
    import json

    from .deploy.vectorfleet import throughput_report

    try:
        report = throughput_report(
            args.seed,
            users=args.users,
            shards=args.shards,
            slo_p95_s=args.slo_p95,
            webinars=args.webinars,
            max_size=args.max_size,
        )
    except ValueError as exc:
        print(f"repro place: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"fleet: {report['users']} users / {report['meetings']} meetings "
        f"on {report['shards']} shards (seed {report['seed']}, "
        f"p95 SLO {report['slo_p95_s']}s)"
    )
    print("policy        meetings/s  shard-cost max  imbalance")
    for policy, row in report["policies"].items():
        print(
            f"{policy:<12s}  {row['meetings_per_s']:10.1f}  "
            f"{row['shard_cost_max']:14.0f}  {row['imbalance']:9.3f}"
        )
    for key in sorted(report):
        if key.startswith("speedup_"):
            print(f"{key}: {report[key]}x")
    return 0


def _cmd_place_stats(args: argparse.Namespace) -> int:
    """Drive real meetings through a placed cluster; dump placement stats."""
    import json
    import random as _random

    from .cluster import ClusterConfig, ControllerCluster
    from .deploy.fleet import ConferenceScorer, FleetSampler
    from .deploy.rollout import DeploymentSimulation
    from .placement.migration import HotShardDetector

    try:
        config = ClusterConfig(
            shards=args.shards,
            placement=args.policy,
            shard_cost_budget=args.budget,
        )
    except ValueError as exc:
        print(f"repro place: {exc}", file=sys.stderr)
        return 2
    cluster = ControllerCluster(config)
    try:
        sim = DeploymentSimulation()
        sampler = FleetSampler(_random.Random(args.seed))
        scorer = ConferenceScorer()
        for i in range(args.meetings):
            rng = sim._conference_rng(dt.date(2021, 12, 25), i)
            conf = sampler.sample_conference(rng=rng)
            cluster.submit(f"meeting-{i}", scorer._gso_problem(conf), 0.0)
        served = cluster.tick(0.0)
        print(f"registered {args.meetings} meeting(s), served {len(served)}")
        if args.budget > 0:
            detector = HotShardDetector(args.budget)
            result = detector.rebalance(cluster, 1.0)
            hot = ", ".join(result.hot_after) if result.hot_after else "none"
            print(
                f"rebalance: {len(result.moves)} move(s), "
                f"hot shards after: {hot}"
            )
        print(json.dumps(cluster.stats()["placement"], indent=2,
                         sort_keys=True))
    finally:
        cluster.close()
    return 0


# --------------------------------------------------------------------- #
# Chaos commands
# --------------------------------------------------------------------- #


def _chaos_config(args: argparse.Namespace, seed: int) -> "object":
    from .chaos import ChaosConfig

    try:
        return ChaosConfig(
            seed=seed,
            meetings=args.meetings,
            duration_s=args.duration,
            shards=args.shards,
            tick_interval_s=args.tick_interval,
            report_interval_s=args.report_interval,
            mean_size=args.mean_size,
        )
    except ValueError as exc:
        raise SystemExit(f"repro chaos: {exc}")


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    from .chaos import run_scenario

    config = _chaos_config(args, args.seed)
    try:
        report = run_scenario(args.scenario, args.seed, config)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        # e.g. an unknown REPRO_KERNEL value reaching default_kernel()
        print(f"repro chaos: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_chaos_soak(args: argparse.Namespace) -> int:
    from .chaos import soak

    config = _chaos_config(args, args.base_seed)
    try:
        with obs.enabled_registry() as registry:
            result = soak(
                seeds=args.seeds,
                scenarios=args.scenario or None,
                config=config,
                out=args.out,
                base_seed=args.base_seed,
            )
            if args.metrics_out:
                Path(args.metrics_out).write_text(
                    registry.to_prometheus_text()
                )
    except (KeyError, ValueError) as exc:
        print(
            exc.args[0] if exc.args else str(exc), file=sys.stderr
        )
        return 2
    print(result.summary())
    if args.out:
        print(f"wrote {result.runs} report(s) to {args.out}")
    if args.metrics_out:
        print(f"wrote metrics snapshot to {args.metrics_out}")
    return 0 if result.ok else 1


def _cmd_chaos_scenarios(args: argparse.Namespace) -> int:
    from .chaos import list_scenarios

    for scenario in list_scenarios():
        print(f"{scenario.name:<20s} {scenario.description}")
    return 0


def _add_chaos_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--meetings", type=int, default=4)
    parser.add_argument(
        "--duration", type=float, default=10.0, help="simulated seconds"
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--tick-interval", type=float, default=1.0)
    parser.add_argument("--report-interval", type=float, default=1.0)
    parser.add_argument("--mean-size", type=float, default=4.0)


# --------------------------------------------------------------------- #
# Ingress commands (the event-driven control plane)
# --------------------------------------------------------------------- #


def _ingress_config(args: argparse.Namespace) -> "object":
    from .ingress import IngressRunConfig

    try:
        return IngressRunConfig(
            seed=args.seed,
            meetings=args.meetings,
            mean_size=args.mean_size,
            duration_s=args.duration,
            report_interval_s=args.report_interval,
            mutations_per_meeting=args.mutations,
            shards=args.shards,
            mailbox_capacity=args.mailbox_capacity,
            solve_slots=args.solve_slots,
        )
    except ValueError as exc:
        raise SystemExit(f"repro ingress: {exc}")


def _parse_stream_fault(spec: str) -> "object":
    """``drop:MEETING:START:END`` or ``delay:MEETING:START:END:DELAY``.

    An empty or ``*`` meeting field targets every meeting.
    """
    from .ingress import DELAY_SEMB, DROP_SEMB, StreamFault

    parts = spec.split(":")
    try:
        kind = parts[0]
        meeting = "" if parts[1] in ("", "*") else parts[1]
        if kind == "drop" and len(parts) == 4:
            return StreamFault(
                DROP_SEMB,
                meeting=meeting,
                start_s=float(parts[2]),
                end_s=float(parts[3]),
            )
        if kind == "delay" and len(parts) == 5:
            return StreamFault(
                DELAY_SEMB,
                meeting=meeting,
                start_s=float(parts[2]),
                end_s=float(parts[3]),
                delay_s=float(parts[4]),
            )
    except (IndexError, ValueError) as exc:
        raise argparse.ArgumentTypeError(f"bad fault spec {spec!r}: {exc}")
    raise argparse.ArgumentTypeError(
        f"bad fault spec {spec!r}; want drop:MEETING:START:END or "
        "delay:MEETING:START:END:DELAY"
    )


def _run_ingress_cli(args: argparse.Namespace):
    from .ingress import run_ingress

    config = _ingress_config(args)
    try:
        return run_ingress(config, faults=args.fault)
    except ValueError as exc:
        raise SystemExit(f"repro ingress: {exc}")


def _cmd_ingress_run(args: argparse.Namespace) -> int:
    report = _run_ingress_cli(args)
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_ingress_stats(args: argparse.Namespace) -> int:
    report = _run_ingress_cli(args)
    payload = {
        "seed": report.seed,
        "totals": dict(sorted(report.totals.items())),
        "decisions_by_source": report.decisions_by_source,
        "latency": report.latency,
        "meetings": report.meetings,
        "event_digest": report.event_digest,
        "report_digest": report.digest(),
        "ok": report.ok,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        totals = payload["totals"]
        print(
            f"ingress stats: seed={report.seed} "
            f"events={totals.get('offered', 0)} "
            f"decisions={totals.get('decisions', 0)} "
            f"{report.decisions_by_source}"
        )
        print(
            f"  coalesced={totals.get('coalesced', 0)} "
            f"shed={totals.get('shed', 0)} "
            f"dropped={totals.get('dropped', 0)} "
            f"delayed={totals.get('delayed', 0)} "
            f"idle_refreshes={totals.get('idle_refreshes', 0)}"
        )
        print(
            f"  latency p50={report.latency.get('p50_s', 0.0):.3f}s "
            f"p95={report.latency.get('p95_s', 0.0):.3f}s "
            f"max={report.latency.get('max_s', 0.0):.3f}s"
        )
        for meeting, row in sorted(report.meetings.items()):
            box = row.get("mailbox", {})
            print(
                f"  {meeting}: decisions={row.get('decisions', 0)} "
                f"enqueued={box.get('enqueued', 0)} "
                f"evicted={box.get('evicted', 0)} "
                f"max_depth={box.get('max_depth', 0)}"
            )
        print(f"  event digest {report.event_digest[:16]}…")
    return 0 if report.ok else 1


def _add_ingress_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--meetings", type=int, default=4)
    parser.add_argument(
        "--duration", type=float, default=10.0, help="virtual seconds"
    )
    parser.add_argument("--report-interval", type=float, default=1.0)
    parser.add_argument(
        "--mutations",
        type=float,
        default=2.0,
        help="mean membership/link mutations per meeting over the run",
    )
    parser.add_argument("--mean-size", type=float, default=5.0)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--mailbox-capacity", type=int, default=8)
    parser.add_argument("--solve-slots", type=int, default=4)
    parser.add_argument(
        "--fault",
        action="append",
        type=_parse_stream_fault,
        default=[],
        metavar="SPEC",
        help="stream fault window: drop:MEETING:START:END or "
        "delay:MEETING:START:END:DELAY ('' or * meeting = all; repeatable)",
    )


# --------------------------------------------------------------------- #
# Observability commands
# --------------------------------------------------------------------- #


def _dump_obs(
    registry: "obs.MetricsRegistry",
    collector: "obs.TraceCollector",
    args: argparse.Namespace,
) -> None:
    """Emit the collected trace + metrics per the obs output options."""
    if collector.traces:
        if args.trace_out:
            path = collector.write_jsonl(args.trace_out)
            print(
                f"\n[obs] wrote {len(collector.traces)} KMR trace(s) "
                f"to {path}"
            )
        print(
            f"\n=== kmr trace (last of {len(collector.traces)} solve(s)) ==="
        )
        print(collector.last.to_jsonl(), end="")
    else:
        print("\n=== kmr trace ===\n(no solver runs were traced)")
    text = (
        registry.to_json()
        if args.format == "json"
        else registry.to_prometheus_text()
    )
    if args.metrics_out:
        Path(args.metrics_out).write_text(text)
        print(f"[obs] wrote metrics snapshot to {args.metrics_out}")
    print(f"\n=== metrics snapshot ({args.format}) ===")
    print(text, end="" if text.endswith("\n") else "\n")


def _cmd_obs_solve(args: argparse.Namespace) -> int:
    with obs.enabled_registry() as registry, obs.collect_traces() as collector:
        code = _cmd_solve(args)
        if code != 0:
            return code
        root = obs.last_root_span()
        if root is not None:
            print("\n=== span timings ===")
            print(obs.format_span_tree(root))
        _dump_obs(registry, collector, args)
    return 0


def _resolve_example(name: str) -> Optional[Path]:
    """Find an example script by bare name, ``<name>.py``, or path."""
    direct = Path(name)
    if direct.is_file():
        return direct
    repo_root = Path(__file__).resolve().parents[2]
    stem = name[:-3] if name.endswith(".py") else name
    for base in (Path.cwd() / "examples", repo_root / "examples"):
        candidate = base / f"{stem}.py"
        if candidate.is_file():
            return candidate
    return None


def _cmd_obs_example(args: argparse.Namespace) -> int:
    path = _resolve_example(args.example)
    if path is None:
        print(
            f"example {args.example!r} not found (looked in ./examples "
            "and the repo's examples/)",
            file=sys.stderr,
        )
        return 2
    with obs.enabled_registry() as registry, obs.collect_traces() as collector:
        # run_name="__main__" fires the example's entry-point guard, so it
        # runs exactly as ``python examples/<name>.py`` would — but with
        # the registry and trace collector installed around it.
        runpy.run_path(str(path), run_name="__main__")
        _dump_obs(registry, collector, args)
    return 0


def _run_obs_scenario(args: argparse.Namespace):
    """Run one chaos scenario with the full telemetry pipeline enabled.

    Returns ``(runner, report, store)`` — the runner keeps the event log
    and SLO verdict objects, the store holds the per-tick registry
    samples.  Raises :class:`KeyError` for unknown scenario names.
    """
    from .chaos import ChaosConfig, ChaosRunner, get_scenario

    config = _chaos_config(args, args.seed)
    scenario = get_scenario(args.scenario)
    if scenario.config_overrides:
        # Scenario-pinned config (placement policy, shard budget, sizing)
        # wins over the generic CLI sizing flags, matching run_scenario.
        config = ChaosConfig(
            **{**config.to_dict(), **scenario.config_overrides}
        )
    schedule = scenario.build(args.seed, config)
    runner = ChaosRunner(config, schedule, scenario=scenario.name)
    store = obs.TimeSeriesStore()
    with obs.enabled_registry(), obs.record_timeseries(store):
        report = runner.run()
    return runner, report, store


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    try:
        runner, report, store = _run_obs_scenario(args)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro obs: {exc}", file=sys.stderr)
        return 2
    if args.events_out:
        path = runner.events.write_jsonl(args.events_out)
        print(
            f"[obs] wrote {len(runner.events)} event(s) to {path}",
            file=sys.stderr,
        )
    if args.json:
        payload = obs.report_dict(
            runner.scenario,
            args.seed,
            runner.slo_verdicts,
            log=runner.events,
            extra={
                "chaos": {
                    "ok": report.ok,
                    "serves": len(report.serves),
                    "faults": len(report.faults),
                    "violations": len(report.violations),
                    "digest": report.digest(),
                },
                "timeseries": store.to_dict(),
            },
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            obs.format_report(
                runner.scenario,
                args.seed,
                runner.slo_verdicts,
                log=runner.events,
                summary=report.summary(),
            )
        )
        print(
            f"\ntimeseries: {len(store)} series, "
            f"{store.points_recorded} points sampled"
        )
    return 0 if report.ok and all(v.ok for v in runner.slo_verdicts) else 1


def _cmd_obs_timeline(args: argparse.Namespace) -> int:
    import json

    if args.events:
        try:
            log = obs.EventLog.read_jsonl(args.events)
        except (OSError, ValueError) as exc:
            print(f"repro obs: cannot read {args.events}: {exc}",
                  file=sys.stderr)
            return 2
        events = log.events
        title = f"{args.events} — timeline for {args.meeting}"
    else:
        try:
            runner, _, _ = _run_obs_scenario(args)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"repro obs: {exc}", file=sys.stderr)
            return 2
        events = runner.events.events
        title = (
            f"{runner.scenario} seed={args.seed} — "
            f"timeline for {args.meeting}"
        )
    if args.json:
        print(json.dumps(obs.timeline_dict(events, args.meeting), indent=2))
    else:
        print(obs.format_timeline(events, args.meeting, title=title))
    return 0


def _trace_events(args: argparse.Namespace):
    """Events for the trace commands: a JSONL file (``--events``) or a
    fresh scenario run.  Returns ``(events, title)``."""
    if getattr(args, "events", None):
        log = obs.EventLog.read_jsonl(args.events)
        return log.events, str(args.events)
    runner, _, _ = _run_obs_scenario(args)
    return runner.events.events, f"{args.scenario} seed={args.seed}"


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from .obs.tracing import assemble_trees

    try:
        runner, report, _ = _run_obs_scenario(args)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
    path = runner.events.write_jsonl(args.out)
    traces = assemble_trees(runner.events.events)
    counters = traces.counters()
    print(f"[trace] scenario={args.scenario} seed={args.seed}")
    print(f"[trace] wrote {len(runner.events)} event(s) to {path}")
    print(
        f"[trace] trees: {counters['assembled']} assembled "
        f"({counters['evicted']} evicted, "
        f"{counters['orphan_events']} ambient)"
    )
    print(f"[trace] trace digest: {traces.digest()}")
    print(f"[trace] report trace digest: {report.trace_digest}")
    return 0 if report.ok else 1


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from .obs.tracing import assemble_trees, format_waterfall

    try:
        events, title = _trace_events(args)
    except (OSError, ValueError) as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    traces = assemble_trees(events)
    trees = traces.trees(args.meeting) if args.meeting else traces.trees()
    print(f"trace waterfall — {title}")
    print(format_waterfall(trees, limit=args.limit))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from .obs.tracing import assemble_trees, write_chrome_trace

    try:
        events, title = _trace_events(args)
    except (OSError, ValueError) as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    traces = assemble_trees(events)
    path = write_chrome_trace(traces.trees(), args.out)
    print(
        f"[trace] wrote Chrome trace for {title} to {path} "
        "(open at https://ui.perfetto.dev)"
    )
    return 0


def _cmd_trace_profile(args: argparse.Namespace) -> int:
    import json

    from .obs.tracing import assemble_trees, build_profile

    try:
        events, title = _trace_events(args)
    except (OSError, ValueError) as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    traces = assemble_trees(events)
    profile = build_profile(traces.trees(), source=title)
    if args.json:
        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"latency profile — {title}")
        print(f"{'stage':<16} {'count':>7} {'mean':>10} {'p50':>10} "
              f"{'p95':>10} {'max':>10}")
        for stage in profile.stages():
            print(
                f"{stage:<16} {profile.count(stage):>7} "
                f"{profile.mean(stage) * 1e3:>8.2f}ms "
                f"{profile.quantile(stage, 0.5) * 1e3:>8.2f}ms "
                f"{profile.quantile(stage, 0.95) * 1e3:>8.2f}ms "
                f"{profile.quantile(stage, 1.0) * 1e3:>8.2f}ms"
            )
        print(f"profile digest: {profile.digest()}")
    if args.out:
        path = profile.write_json(args.out)
        print(f"[trace] wrote profile to {path}", file=sys.stderr)
    return 0


def _cmd_obs_names(args: argparse.Namespace) -> int:
    print("metric                                              kind       labels")
    print("-" * 78)
    for name, (kind, labels) in sorted(obs_names.ALL_METRICS.items()):
        label_text = ",".join(labels) if labels else "-"
        print(f"{name:<50s}  {kind:<9s}  {label_text}")
    print("\nbuilt-in spans (label values of repro_span_seconds):")
    for span_name in obs_names.ALL_SPANS:
        print(f"  {span_name}")
    return 0


def _add_obs_output_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=["prom", "json"],
        default="prom",
        help="metrics snapshot format (default: Prometheus text)",
    )
    parser.add_argument(
        "--metrics-out", help="also write the metrics snapshot to this file"
    )
    parser.add_argument(
        "--trace-out", help="write all KMR traces (JSONL) to this file"
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GSO-Simulcast reproduction: solve, simulate, roll out.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser(
        "solve", help="orchestrate a mesh meeting (algorithm only)"
    )
    solve.add_argument(
        "clients",
        nargs="+",
        type=_parse_client,
        help="client specs: id:up_kbps:down_kbps",
    )
    solve.add_argument("--levels", type=int, default=5)
    solve.add_argument("--granularity", type=int, default=10)
    solve.set_defaults(func=_cmd_solve)

    meeting = sub.add_parser(
        "meeting", help="run a packet-level meeting simulation"
    )
    meeting.add_argument(
        "clients",
        nargs="+",
        type=_parse_client,
        help="client specs: id:up:down[:loss[:jitter_ms]]",
    )
    meeting.add_argument(
        "--modes",
        nargs="+",
        default=["gso"],
        choices=["gso", "nongso", "competitor1", "competitor2"],
    )
    meeting.add_argument("--duration", type=float, default=30.0)
    meeting.add_argument("--warmup", type=float, default=10.0)
    meeting.add_argument("--seed", type=int, default=1)
    meeting.set_defaults(func=_cmd_meeting)

    rollout = sub.add_parser(
        "rollout", help="run the fleet/deployment simulation"
    )
    rollout.add_argument("--start", default="2021-10-01")
    rollout.add_argument("--end", default="2022-01-14")
    rollout.add_argument("--stride", type=int, default=7)
    rollout.add_argument("--conferences", type=int, default=100)
    rollout.set_defaults(func=_cmd_rollout)

    cluster = sub.add_parser(
        "cluster", help="run workloads on the sharded controller cluster"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cluster_run = cluster_sub.add_parser(
        "run",
        help="run the fleet simulation through the cluster solve service",
    )
    cluster_run.add_argument("--start", default="2021-12-20")
    cluster_run.add_argument("--end", default="2021-12-27")
    cluster_run.add_argument("--stride", type=int, default=1)
    cluster_run.add_argument("--conferences", type=int, default=100)
    _add_cluster_args(cluster_run)
    cluster_run.set_defaults(func=_cmd_cluster_run)

    cluster_stats = cluster_sub.add_parser(
        "stats",
        help="drive a synthetic event/tick workload and dump cluster stats",
    )
    cluster_stats.add_argument("--meetings", type=int, default=12)
    cluster_stats.add_argument("--ticks", type=int, default=6)
    cluster_stats.add_argument("--seed", type=int, default=7)
    cluster_stats.add_argument(
        "--kill-shard",
        action="store_true",
        help="kill one shard mid-run to demonstrate Sec. 7 failover",
    )
    _add_cluster_args(cluster_stats)
    cluster_stats.set_defaults(func=_cmd_cluster_stats)

    place = sub.add_parser(
        "place",
        help="fleet placement: pack, compare, and inspect policies "
        "(docs/PLACEMENT.md)",
    )
    place_sub = place.add_subparsers(dest="place_command", required=True)

    def _add_fleet_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--seed", type=int, default=8)
        parser.add_argument("--users", type=int, default=100_000)
        parser.add_argument("--shards", type=int, default=16)
        parser.add_argument("--webinars", type=int, default=32)
        parser.add_argument("--max-size", type=int, default=60)
        parser.add_argument(
            "--slo-p95",
            type=float,
            default=0.25,
            help="p95 solve-latency SLO in seconds",
        )

    place_run = place_sub.add_parser(
        "run", help="pack one sampled fleet with one policy"
    )
    place_run.add_argument(
        "--policy",
        default="best_fit",
        choices=["hash", "best_fit", "least_loaded"],
    )
    _add_fleet_args(place_run)
    place_run.set_defaults(func=_cmd_place_run)

    place_compare = place_sub.add_parser(
        "compare",
        help="race every policy on one workload; print meetings/sec",
    )
    place_compare.add_argument(
        "--json",
        action="store_true",
        help="print the full throughput report as JSON",
    )
    _add_fleet_args(place_compare)
    place_compare.set_defaults(func=_cmd_place_compare)

    place_stats = place_sub.add_parser(
        "stats",
        help="drive real meetings through a placed cluster and dump "
        "the load-model snapshot",
    )
    place_stats.add_argument(
        "--policy",
        default="best_fit",
        choices=["hash", "best_fit", "least_loaded"],
    )
    place_stats.add_argument("--seed", type=int, default=7)
    place_stats.add_argument("--meetings", type=int, default=12)
    place_stats.add_argument("--shards", type=int, default=4)
    place_stats.add_argument(
        "--budget",
        type=float,
        default=0.0,
        help="per-shard cost budget (0 disables the hot-shard detector)",
    )
    place_stats.set_defaults(func=_cmd_place_stats)

    chaos = sub.add_parser(
        "chaos",
        help="fault injection + invariant checking (docs/RESILIENCE.md)",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    chaos_run = chaos_sub.add_parser(
        "run", help="run one scenario at one seed and print its report"
    )
    chaos_run.add_argument("--scenario", default="kitchen_sink")
    chaos_run.add_argument("--seed", type=int, default=1)
    chaos_run.add_argument(
        "--json",
        action="store_true",
        help="print the full canonical JSON report instead of the summary",
    )
    _add_chaos_config_args(chaos_run)
    chaos_run.set_defaults(func=_cmd_chaos_run)

    chaos_soak = chaos_sub.add_parser(
        "soak",
        help="sweep scenarios x seeds (each run twice for determinism); "
        "exit 1 on any invariant violation",
    )
    chaos_soak.add_argument("--seeds", type=int, default=20)
    chaos_soak.add_argument("--base-seed", type=int, default=0)
    chaos_soak.add_argument(
        "--scenario",
        action="append",
        help="restrict to this scenario (repeatable; default: all)",
    )
    chaos_soak.add_argument("--out", help="write JSONL verdicts here")
    chaos_soak.add_argument(
        "--metrics-out", help="write the chaos metrics snapshot here"
    )
    _add_chaos_config_args(chaos_soak)
    chaos_soak.set_defaults(func=_cmd_chaos_soak)

    chaos_scenarios = chaos_sub.add_parser(
        "scenarios", help="list the registered chaos scenarios"
    )
    chaos_scenarios.set_defaults(func=_cmd_chaos_scenarios)

    ingress = sub.add_parser(
        "ingress",
        help="event-driven ingress: the continuous SEMB/TMMBR control "
        "plane (docs/INGRESS.md)",
    )
    ingress_sub = ingress.add_subparsers(
        dest="ingress_command", required=True
    )

    ingress_run = ingress_sub.add_parser(
        "run",
        help="drive a seeded event stream through the plane and print "
        "its canonical report; exit 1 on invariant violations",
    )
    _add_ingress_config_args(ingress_run)
    ingress_run.add_argument(
        "--json",
        action="store_true",
        help="print the full canonical JSON report instead of the summary",
    )
    ingress_run.set_defaults(func=_cmd_ingress_run)

    ingress_stats = ingress_sub.add_parser(
        "stats",
        help="run a seeded stream and print mailbox/backpressure/latency "
        "accounting",
    )
    _add_ingress_config_args(ingress_stats)
    ingress_stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    ingress_stats.set_defaults(func=_cmd_ingress_stats)

    obs_parser = sub.add_parser(
        "obs",
        help="observability: traced solves, instrumented examples, "
        "metric name listing",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    obs_solve = obs_sub.add_parser(
        "solve",
        help="solve a mesh meeting with metrics + KMR tracing enabled",
    )
    obs_solve.add_argument(
        "clients",
        nargs="+",
        type=_parse_client,
        help="client specs: id:up_kbps:down_kbps",
    )
    obs_solve.add_argument("--levels", type=int, default=5)
    obs_solve.add_argument("--granularity", type=int, default=10)
    _add_obs_output_args(obs_solve)
    obs_solve.set_defaults(func=_cmd_obs_solve)

    obs_example = obs_sub.add_parser(
        "example",
        help="run an examples/ script with instrumentation enabled",
    )
    obs_example.add_argument(
        "example",
        help="example name (e.g. global_meeting) or a script path",
    )
    _add_obs_output_args(obs_example)
    obs_example.set_defaults(func=_cmd_obs_example)

    obs_report = obs_sub.add_parser(
        "report",
        help="run a chaos scenario with the telemetry pipeline enabled "
        "and print SLO verdicts + event/time-series stats",
    )
    obs_report.add_argument("--scenario", default="bandwidth_collapse")
    obs_report.add_argument("--seed", type=int, default=1)
    obs_report.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report payload",
    )
    obs_report.add_argument(
        "--events-out", help="write the run's event log (JSONL) here"
    )
    _add_chaos_config_args(obs_report)
    obs_report.set_defaults(func=_cmd_obs_report)

    obs_timeline = obs_sub.add_parser(
        "timeline",
        help="reconstruct one meeting's causal event timeline "
        "(SEMB report -> solve -> TMMBR -> subscription change)",
    )
    obs_timeline.add_argument(
        "meeting", help="meeting id (e.g. chaos-0)"
    )
    obs_timeline.add_argument("--scenario", default="bandwidth_collapse")
    obs_timeline.add_argument("--seed", type=int, default=1)
    obs_timeline.add_argument(
        "--events",
        help="load an event-log JSONL file instead of running a scenario",
    )
    obs_timeline.add_argument(
        "--json", action="store_true", help="print the timeline as JSON"
    )
    _add_chaos_config_args(obs_timeline)
    obs_timeline.set_defaults(func=_cmd_obs_timeline)

    obs_names_cmd = obs_sub.add_parser(
        "names", help="list every canonical metric and span name"
    )
    obs_names_cmd.set_defaults(func=_cmd_obs_names)

    trace_parser = sub.add_parser(
        "trace",
        help="causal trace plane: record, inspect and export "
        "per-decision trace trees (docs/TRACING.md)",
    )
    trace_sub = trace_parser.add_subparsers(
        dest="trace_command", required=True
    )

    trace_record = trace_sub.add_parser(
        "record",
        help="run a chaos scenario and write its event log for tracing",
    )
    trace_record.add_argument("--scenario", default="bandwidth_collapse")
    trace_record.add_argument("--seed", type=int, default=1)
    trace_record.add_argument(
        "--out", default="events.jsonl",
        help="event-log JSONL destination (default: events.jsonl)",
    )
    _add_chaos_config_args(trace_record)
    trace_record.set_defaults(func=_cmd_trace_record)

    trace_show = trace_sub.add_parser(
        "show",
        help="render per-decision trace trees as a text waterfall",
    )
    trace_show.add_argument(
        "--events",
        help="load an event-log JSONL file instead of running a scenario",
    )
    trace_show.add_argument("--scenario", default="bandwidth_collapse")
    trace_show.add_argument("--seed", type=int, default=1)
    trace_show.add_argument(
        "--meeting", help="show only one meeting's decisions"
    )
    trace_show.add_argument(
        "--limit", type=int, default=10,
        help="max trees to render (default 10; 0 = all)",
    )
    _add_chaos_config_args(trace_show)
    trace_show.set_defaults(func=_cmd_trace_show)

    trace_export = trace_sub.add_parser(
        "export",
        help="export trace trees as Chrome trace-event JSON (Perfetto)",
    )
    trace_export.add_argument(
        "--events",
        help="load an event-log JSONL file instead of running a scenario",
    )
    trace_export.add_argument("--scenario", default="bandwidth_collapse")
    trace_export.add_argument("--seed", type=int, default=1)
    trace_export.add_argument(
        "--out", default="trace_chrome.json",
        help="Chrome trace destination (default: trace_chrome.json)",
    )
    _add_chaos_config_args(trace_export)
    trace_export.set_defaults(func=_cmd_trace_export)

    trace_profile = trace_sub.add_parser(
        "profile",
        help="build a repro.latency_profile/v1 artifact from trace trees",
    )
    trace_profile.add_argument(
        "--events",
        help="load an event-log JSONL file instead of running a scenario",
    )
    trace_profile.add_argument("--scenario", default="bandwidth_collapse")
    trace_profile.add_argument("--seed", type=int, default=1)
    trace_profile.add_argument(
        "--out", help="write the profile JSON artifact here"
    )
    trace_profile.add_argument(
        "--json", action="store_true",
        help="print the full profile payload as JSON",
    )
    _add_chaos_config_args(trace_profile)
    trace_profile.set_defaults(func=_cmd_trace_profile)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
