"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover the library's main entry points:

* ``solve`` — orchestrate a meeting described as ``id:up:down`` client
  specs and print the stream plan (the core algorithm, no simulation);
* ``meeting`` — run a packet-level meeting simulation and print the QoE
  report (optionally comparing two schemes);
* ``rollout`` — run the fleet/deployment simulation for a date range and
  print daily metrics.
"""

from __future__ import annotations

import argparse
import datetime as dt
import sys
from typing import List, Optional, Sequence

from .conference import ClientSpec, MeetingSpec, run_meeting
from .core import Bandwidth, GsoSolver, Resolution, SolverConfig, make_ladder
from .core.constraints import Problem, Subscription


def _parse_client(text: str) -> ClientSpec:
    """Parse ``id:uplink_kbps:downlink_kbps[:loss[:jitter_ms]]``."""
    parts = text.split(":")
    if len(parts) < 3:
        raise argparse.ArgumentTypeError(
            f"client spec {text!r} must be id:up:down[:loss[:jitter_ms]]"
        )
    try:
        spec = ClientSpec(
            client_id=parts[0],
            uplink_kbps=float(parts[1]),
            downlink_kbps=float(parts[2]),
            loss_rate=float(parts[3]) if len(parts) > 3 else 0.0,
            jitter_ms=float(parts[4]) if len(parts) > 4 else 0.0,
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad client spec {text!r}: {exc}")
    return spec


def _cmd_solve(args: argparse.Namespace) -> int:
    ladder = make_ladder(levels_per_resolution=args.levels)
    clients = {c.client_id: c for c in args.clients}
    if len(clients) < 2:
        print("need at least two clients", file=sys.stderr)
        return 2
    subscriptions = [
        Subscription(a, b, Resolution.P720)
        for a in clients
        for b in clients
        if a != b
    ]
    problem = Problem(
        feasible_streams={c: ladder for c in clients},
        bandwidth={
            c.client_id: Bandwidth(
                int(c.uplink_kbps), int(c.downlink_kbps)
            )
            for c in clients.values()
        },
        subscriptions=subscriptions,
    )
    solver = GsoSolver(SolverConfig(granularity_kbps=args.granularity))
    solution, stats = solver.solve_with_stats(problem)
    solution.validate(problem)
    print(solution.summary())
    print(
        f"({stats.iterations} iteration(s), "
        f"{stats.wall_time_s * 1000:.1f} ms)"
    )
    return 0


def _cmd_meeting(args: argparse.Namespace) -> int:
    for mode in args.modes:
        spec = MeetingSpec(
            clients=list(args.clients),
            mode=mode,
            duration_s=args.duration,
            warmup_s=args.warmup,
            seed=args.seed,
        )
        report = run_meeting(spec)
        print(f"\n=== {mode} ===")
        print(
            f"framerate={report.mean_framerate():.1f}fps  "
            f"video stall={report.mean_video_stall():.1%}  "
            f"quality={report.mean_quality():.1f}  "
            f"voice stall={report.mean_voice_stall():.1%}"
        )
        for view in report.views:
            print(
                f"  {view.subscriber} <- {view.publisher}: "
                f"{view.framerate:.1f}fps  stall={view.stall_rate:.1%}  "
                f"{view.playback.rendered_kbps:.0f}kbps @ {view.top_resolution}"
            )
    return 0


def _cmd_rollout(args: argparse.Namespace) -> int:
    from .deploy import DeploymentSimulation

    sim = DeploymentSimulation(conferences_per_day=args.conferences)
    day = dt.date.fromisoformat(args.start)
    end = dt.date.fromisoformat(args.end)
    if end < day:
        print("end date precedes start date", file=sys.stderr)
        return 2
    print("date        coverage  video-stall  voice-stall  framerate")
    while day <= end:
        p = sim.run_day(day)
        print(
            f"{p.day}  {p.coverage:8.2f}  {p.video_stall:11.3f}  "
            f"{p.voice_stall:11.3f}  {p.framerate:9.1f}"
        )
        day += dt.timedelta(days=args.stride)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GSO-Simulcast reproduction: solve, simulate, roll out.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser(
        "solve", help="orchestrate a mesh meeting (algorithm only)"
    )
    solve.add_argument(
        "clients",
        nargs="+",
        type=_parse_client,
        help="client specs: id:up_kbps:down_kbps",
    )
    solve.add_argument("--levels", type=int, default=5)
    solve.add_argument("--granularity", type=int, default=10)
    solve.set_defaults(func=_cmd_solve)

    meeting = sub.add_parser(
        "meeting", help="run a packet-level meeting simulation"
    )
    meeting.add_argument(
        "clients",
        nargs="+",
        type=_parse_client,
        help="client specs: id:up:down[:loss[:jitter_ms]]",
    )
    meeting.add_argument(
        "--modes",
        nargs="+",
        default=["gso"],
        choices=["gso", "nongso", "competitor1", "competitor2"],
    )
    meeting.add_argument("--duration", type=float, default=30.0)
    meeting.add_argument("--warmup", type=float, default=10.0)
    meeting.add_argument("--seed", type=int, default=1)
    meeting.set_defaults(func=_cmd_meeting)

    rollout = sub.add_parser(
        "rollout", help="run the fleet/deployment simulation"
    )
    rollout.add_argument("--start", default="2021-10-01")
    rollout.add_argument("--end", default="2022-01-14")
    rollout.add_argument("--stride", type=int, default=7)
    rollout.add_argument("--conferences", type=int, default=100)
    rollout.set_defaults(func=_cmd_rollout)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
