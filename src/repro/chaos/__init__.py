"""Deterministic fault injection + invariant checking (Sec. 7 hardening).

The chaos subsystem drives the discrete-event simulator clock and the
controller cluster through seeded fault schedules, and validates after
every delivered configuration that the orchestration stack kept its
safety invariants.  See ``docs/RESILIENCE.md``.
"""

from .faults import (
    FAULT_KINDS,
    OVERLOAD_SHARD,
    SHARD_KINDS,
    Fault,
    FaultSchedule,
)
from .invariants import (
    ALL_INVARIANTS,
    INV_AVAILABILITY,
    INV_CONSTRAINTS,
    INV_CONVERGENCE,
    INV_DETERMINISM,
    INV_SHARD_BUDGET,
    InvariantChecker,
    Violation,
    kmr_iteration_bound,
)
from .report import REPORT_SCHEMA, RunReport, solution_digest, write_jsonl
from .runner import ChaosConfig, ChaosRunner, InjectedSolverFault
from .scenarios import Scenario, get_scenario, list_scenarios
from .soak import SoakResult, run_scenario, soak
from .world import ChaosWorld, ClientState, MeetingState

__all__ = [
    "ALL_INVARIANTS",
    "FAULT_KINDS",
    "INV_AVAILABILITY",
    "INV_CONSTRAINTS",
    "INV_CONVERGENCE",
    "INV_DETERMINISM",
    "INV_SHARD_BUDGET",
    "OVERLOAD_SHARD",
    "REPORT_SCHEMA",
    "SHARD_KINDS",
    "ChaosConfig",
    "ChaosRunner",
    "ChaosWorld",
    "ClientState",
    "Fault",
    "FaultSchedule",
    "InjectedSolverFault",
    "InvariantChecker",
    "MeetingState",
    "RunReport",
    "Scenario",
    "SoakResult",
    "Violation",
    "get_scenario",
    "kmr_iteration_bound",
    "list_scenarios",
    "run_scenario",
    "soak",
    "solution_digest",
    "write_jsonl",
]
