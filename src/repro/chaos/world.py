"""The chaos world: a deterministic population of meetings under fault.

The fleet model (:mod:`repro.deploy.fleet`) draws realistic conferences;
this module keeps each drawn conference *mutable under faults* — clients
whose bandwidth collapses, publishers who leave or join, and a snapshot
history so stale global pictures can be re-delivered — while staying
fully deterministic: every random draw comes from a string-seeded private
RNG, so the same world seed always produces the same population and the
same fault responses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.constraints import Bandwidth, Problem, Subscription
from ..core.ladder import make_ladder
from ..core.types import ClientId, Resolution
from ..deploy.fleet import AUDIO_KBPS, FleetSampler, SampledClient

#: Snapshot history depth kept per meeting for stale-delivery faults.
SNAPSHOT_HISTORY = 8

#: The controller sees slightly conservative budgets (the live system's
#: safety margin) — mirrors :class:`repro.deploy.fleet.ConferenceScorer`.
BUDGET_MARGIN = 0.93


@dataclass
class ClientState:
    """One participant's mutable network state inside the chaos world."""

    client: SampledClient
    up_scale: float = 1.0
    down_scale: float = 1.0

    @property
    def uplink_kbps(self) -> int:
        """Current (possibly collapsed) uplink capacity."""
        return max(50, int(self.client.uplink_kbps * self.up_scale))

    @property
    def downlink_kbps(self) -> int:
        """Current (possibly collapsed) downlink capacity."""
        return max(75, int(self.client.downlink_kbps * self.down_scale))


@dataclass
class MeetingState:
    """One meeting's mutable membership + bandwidth + snapshot history."""

    meeting_id: str
    clients: Dict[ClientId, ClientState]
    version: int = 0
    joined_seq: int = 0
    #: (version, Problem) history, newest last, bounded.
    snapshots: List[Tuple[int, Problem]] = field(default_factory=list)
    #: Per-subscriber requested resolution (defaults to P720 full-mesh);
    #: toggled by subscription-change events.
    preferences: Dict[ClientId, Resolution] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Current participant count."""
        return len(self.clients)


class ChaosWorld:
    """Builds and mutates the meeting population of one chaos run.

    Args:
        seed: world seed; all sampling derives from it by name.
        meetings: how many meetings to host.
        mean_size: mean meeting size passed to the fleet sampler.
        levels_per_resolution: GSO ladder depth (kept at the fleet
            default so cluster cache keys match fleet workloads).
    """

    def __init__(
        self,
        seed: int,
        meetings: int,
        mean_size: float = 4.0,
        levels_per_resolution: int = 5,
    ) -> None:
        if meetings < 1:
            raise ValueError("need at least one meeting")
        self.seed = seed
        self._ladder = make_ladder(levels_per_resolution=levels_per_resolution)
        self._meetings: Dict[str, MeetingState] = {}
        sampler = FleetSampler(random.Random(f"chaos-world:{seed}"))
        for k in range(meetings):
            meeting_id = f"chaos-{k}"
            # Per-meeting string-seeded RNG: the draw is independent of
            # meeting order, exactly like the fleet's per-conference RNGs.
            rng = random.Random(f"chaos-world:{seed}:{meeting_id}")
            conf = sampler.sample_conference(rng=rng)
            state = MeetingState(
                meeting_id=meeting_id,
                clients={
                    c.client_id: ClientState(client=c) for c in conf.clients
                },
                joined_seq=len(conf.clients),
            )
            self._meetings[meeting_id] = state
            self._snapshot(state)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def meeting_ids(self) -> List[str]:
        """All hosted meeting ids, sorted."""
        return sorted(self._meetings)

    def meeting(self, meeting_id: str) -> MeetingState:
        """The mutable state of one meeting."""
        return self._meetings[meeting_id]

    def current_problem(self, meeting_id: str) -> Problem:
        """The freshest snapshot of one meeting's global picture."""
        return self._meetings[meeting_id].snapshots[-1][1]

    def stale_problem(self, meeting_id: str, age: int) -> Tuple[int, Problem]:
        """A snapshot ``age`` versions behind the freshest (clamped).

        Returns ``(version, problem)`` so the runner can log which stale
        picture was delivered.
        """
        history = self._meetings[meeting_id].snapshots
        index = max(0, len(history) - 1 - max(0, age))
        return history[index]

    # ------------------------------------------------------------------ #
    # Mutation (fault responses) — each bumps the snapshot version
    # ------------------------------------------------------------------ #

    def scale_bandwidth(
        self,
        meeting_id: str,
        client: ClientId,
        up_scale: Optional[float] = None,
        down_scale: Optional[float] = None,
    ) -> ClientId:
        """Scale one client's budgets (collapse or recovery).

        An empty ``client`` picks the lexicographically first participant
        (deterministic).  Returns the affected client id.
        """
        state = self._meetings[meeting_id]
        cid = client or min(state.clients)
        cs = state.clients[cid]
        if up_scale is not None:
            cs.up_scale = up_scale
        if down_scale is not None:
            cs.down_scale = down_scale
        self._snapshot(state)
        return cid

    def remove_client(self, meeting_id: str, client: ClientId = "") -> ClientId:
        """A participant leaves; keeps at least two so the meeting stays
        a meeting (returns ``""`` if the churn was skipped)."""
        state = self._meetings[meeting_id]
        if state.size <= 2:
            return ""
        cid = client or max(state.clients)
        if cid not in state.clients:
            return ""
        del state.clients[cid]
        self._snapshot(state)
        return cid

    def toggle_preference(
        self, meeting_id: str, client: ClientId = ""
    ) -> Tuple[ClientId, Resolution]:
        """Flip one subscriber's requested resolution (P720 <-> P360).

        Models a subscription change (speaker-view vs gallery-view): the
        subscriber re-requests every followed publisher at the new
        resolution.  An empty ``client`` picks the lexicographically
        first participant.  Returns ``(client_id, new_resolution)``.
        """
        state = self._meetings[meeting_id]
        cid = client or min(state.clients)
        if cid not in state.clients:
            raise KeyError(f"no client {cid!r} in {meeting_id}")
        current = state.preferences.get(cid, Resolution.P720)
        flipped = (
            Resolution.P360 if current == Resolution.P720 else Resolution.P720
        )
        state.preferences[cid] = flipped
        self._snapshot(state)
        return cid, flipped

    def add_client(self, meeting_id: str) -> ClientId:
        """A new participant joins, drawn from the meeting's own RNG."""
        state = self._meetings[meeting_id]
        rng = random.Random(
            f"chaos-world:{self.seed}:{meeting_id}:join:{state.joined_seq}"
        )
        sampler = FleetSampler(rng)
        donor = sampler.sample_conference(rng=rng).clients[0]
        cid = f"j{state.joined_seq}"
        state.joined_seq += 1
        state.clients[cid] = ClientState(
            client=SampledClient(
                client_id=cid,
                uplink_kbps=donor.uplink_kbps,
                downlink_kbps=donor.downlink_kbps,
                loss_rate=donor.loss_rate,
                profile=donor.profile,
            )
        )
        self._snapshot(state)
        return cid

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #

    def _snapshot(self, state: MeetingState) -> None:
        """Append the current picture to the meeting's version history."""
        state.version += 1
        state.snapshots.append((state.version, self._build_problem(state)))
        if len(state.snapshots) > SNAPSHOT_HISTORY:
            del state.snapshots[0]

    def _build_problem(self, state: MeetingState) -> Problem:
        """The full-mesh GSO problem of one meeting's current picture
        (same shape the fleet scorer hands the cluster)."""
        ids = sorted(state.clients)
        return Problem(
            feasible_streams={cid: self._ladder for cid in ids},
            bandwidth={
                cid: Bandwidth(
                    uplink_kbps=int(
                        state.clients[cid].uplink_kbps * BUDGET_MARGIN
                    ),
                    downlink_kbps=int(
                        state.clients[cid].downlink_kbps * BUDGET_MARGIN
                    ),
                    audio_protection_kbps=AUDIO_KBPS,
                )
                for cid in ids
            },
            subscriptions=[
                Subscription(
                    a, b, state.preferences.get(a, Resolution.P720)
                )
                for a in ids
                for b in ids
                if a != b
            ],
        )
