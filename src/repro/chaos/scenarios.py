"""Named chaos scenarios: curated fault timelines for the soak runner.

Each scenario is a pure function from ``(seed, config)`` to a
:class:`~repro.chaos.faults.FaultSchedule` — no hidden state, so the same
seed always builds the same timeline.  Timings are expressed in tick
units relative to the run duration, which keeps every scenario meaningful
for any reasonable ``ChaosConfig``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping

from . import faults as F
from .faults import Fault, FaultSchedule
from .runner import ChaosConfig

BuildFn = Callable[[int, ChaosConfig], FaultSchedule]


@dataclass(frozen=True)
class Scenario:
    """One named fault pattern."""

    name: str
    description: str
    build: BuildFn
    #: ChaosConfig fields this scenario requires (e.g. a placement
    #: policy or a shard budget); applied on top of the caller's config
    #: by :func:`~repro.chaos.soak.run_scenario`.
    config_overrides: Mapping[str, object] = field(default_factory=dict)


def _mid(config: ChaosConfig, k: int = 0) -> str:
    """The k-th meeting id (world ids are ``chaos-0`` .. sorted)."""
    return f"chaos-{k % config.meetings}"


def _healthy(seed: int, config: ChaosConfig) -> FaultSchedule:
    return FaultSchedule()


def _shard_churn(seed: int, config: ChaosConfig) -> FaultSchedule:
    """Kill a shard mid-run, restart it, then grow the ring."""
    third = config.duration_s / 3.0
    return (
        FaultSchedule()
        .add(Fault(round(third, 3), F.KILL_SHARD))
        .add(Fault(round(2 * third, 3), F.RESTART_SHARD))
        .add(Fault(round(2.5 * third, 3), F.ADD_SHARD))
    )


def _feedback_loss(seed: int, config: ChaosConfig) -> FaultSchedule:
    """Lose and delay control-channel feedback in both directions."""
    t = config.duration_s
    return (
        FaultSchedule()
        .add(Fault(round(0.2 * t, 3), F.DROP_REPORT, target=_mid(config, 0), factor=2))
        .add(Fault(round(0.35 * t, 3), F.DELAY_REPORT, target=_mid(config, 1), factor=1.2))
        .add(Fault(round(0.5 * t, 3), F.LOSE_TMMBR, target=_mid(config, 0)))
        .add(Fault(round(0.65 * t, 3), F.LOSE_TMMBR, target=_mid(config, 2)))
    )


def _bandwidth_collapse(seed: int, config: ChaosConfig) -> FaultSchedule:
    """Collapse a downlink and an uplink, then let them recover."""
    t = config.duration_s
    return (
        FaultSchedule()
        .add(Fault(round(0.25 * t, 3), F.DOWNLINK_COLLAPSE, target=_mid(config, 0), factor=0.15))
        .add(Fault(round(0.4 * t, 3), F.UPLINK_COLLAPSE, target=_mid(config, 1), factor=0.2))
        .add(Fault(round(0.7 * t, 3), F.BANDWIDTH_RECOVER, target=_mid(config, 0)))
        .add(Fault(round(0.8 * t, 3), F.BANDWIDTH_RECOVER, target=_mid(config, 1)))
    )


def _publisher_churn(seed: int, config: ChaosConfig) -> FaultSchedule:
    """Participants leave and join mid-conference."""
    t = config.duration_s
    return (
        FaultSchedule()
        .add(Fault(round(0.3 * t, 3), F.PUBLISHER_LEAVE, target=_mid(config, 0)))
        .add(Fault(round(0.45 * t, 3), F.PUBLISHER_JOIN, target=_mid(config, 1)))
        .add(Fault(round(0.6 * t, 3), F.PUBLISHER_JOIN, target=_mid(config, 0)))
        .add(Fault(round(0.75 * t, 3), F.PUBLISHER_LEAVE, target=_mid(config, 1)))
    )


def _stale_snapshot(seed: int, config: ChaosConfig) -> FaultSchedule:
    """Deliver out-of-date global pictures after real changes landed."""
    t = config.duration_s
    return (
        FaultSchedule()
        .add(Fault(round(0.25 * t, 3), F.DOWNLINK_COLLAPSE, target=_mid(config, 0), factor=0.2))
        .add(Fault(round(0.45 * t, 3), F.STALE_SNAPSHOT, target=_mid(config, 0), factor=1))
        .add(Fault(round(0.65 * t, 3), F.STALE_SNAPSHOT, target=_mid(config, 0), factor=3))
    )


def _unfixable(seed: int, config: ChaosConfig) -> FaultSchedule:
    """Poison one meeting's solver permanently — never cleared.

    The acceptance scenario: the meeting must degrade to the Sec. 7
    single-stream fallback within one scheduler tick and stay served by
    it for the rest of the run, with zero invariant violations.
    """
    return FaultSchedule().add(
        Fault(
            round(0.4 * config.duration_s, 3),
            F.SOLVER_FAULT,
            target=_mid(config, 0),
        )
    )


def _hot_shard(seed: int, config: ChaosConfig) -> FaultSchedule:
    """Skewed meeting growth overloads one shard, twice.

    Runs with best_fit placement and a per-shard cost budget (see the
    scenario's ``config_overrides``): every meeting on the busiest shard
    gains participants mid-run, pushing the shard over budget; the
    hot-shard detector must drain it back inside the budget through the
    fallback-then-reconverge migration path, with zero invariant
    violations (the ``shard_budget`` invariant checks the end state).
    """
    t = config.duration_s
    return (
        FaultSchedule()
        .add(Fault(round(0.3 * t, 3), F.OVERLOAD_SHARD, factor=2))
        .add(Fault(round(0.55 * t, 3), F.OVERLOAD_SHARD, factor=3))
    )


def _kitchen_sink(seed: int, config: ChaosConfig) -> FaultSchedule:
    """A seeded random mix of every fault kind."""
    shard_names = [f"shard-{k}" for k in range(config.shards)]
    meeting_ids = [_mid(config, k) for k in range(config.meetings)]
    return FaultSchedule.seeded(
        seed=seed,
        duration_s=config.duration_s,
        meeting_ids=meeting_ids,
        shard_names=shard_names,
        faults=8,
    )


_SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("healthy", "no faults: the control baseline", _healthy),
        Scenario(
            "shard_churn",
            "kill a controller shard mid-round, restart it, grow the ring",
            _shard_churn,
        ),
        Scenario(
            "feedback_loss",
            "drop/delay SEMB reports and lose TMMBR pushes",
            _feedback_loss,
        ),
        Scenario(
            "bandwidth_collapse",
            "collapse downlink/uplink budgets, then recover",
            _bandwidth_collapse,
        ),
        Scenario(
            "publisher_churn",
            "publishers leave and join mid-conference",
            _publisher_churn,
        ),
        Scenario(
            "stale_snapshot",
            "deliver out-of-date global pictures after real changes",
            _stale_snapshot,
        ),
        Scenario(
            "unfixable",
            "permanently poison one meeting's solver (never heals)",
            _unfixable,
        ),
        Scenario(
            "hot_shard",
            "skewed meeting growth overloads one shard; the detector "
            "drains it back inside the budget",
            _hot_shard,
            config_overrides={
                "placement": "best_fit",
                "shard_cost_budget": 60.0,
                "shards": 3,
                "meetings": 6,
            },
        ),
        Scenario(
            "kitchen_sink",
            "a seeded random mix of every fault kind",
            _kitchen_sink,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by name.

    Raises:
        KeyError: for an unknown scenario name (message lists the
            known ones).
    """
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def list_scenarios() -> List[Scenario]:
    """Every registered scenario, sorted by name."""
    return [_SCENARIOS[name] for name in sorted(_SCENARIOS)]
