"""The fault vocabulary: what chaos can do to the orchestration stack.

Sec. 7 of the paper ("design for failure") names the conditions a
production controller must survive — crashed controller instances, lost
or delayed feedback messages, bandwidth collapses, churning publishers.
This module turns each of them into a first-class, *deterministic* value:
a :class:`Fault` says what breaks, when, and how badly; a
:class:`FaultSchedule` composes faults into a reproducible timeline that
the :class:`~repro.chaos.runner.ChaosRunner` replays against the live
cluster.  Identical schedules (same seed) must produce byte-identical
run reports — determinism is itself one of the checked invariants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

# --------------------------------------------------------------------- #
# Fault kinds
# --------------------------------------------------------------------- #

#: Take a controller shard down mid-round (PR 2's ``kill_shard`` path).
KILL_SHARD = "kill_shard"
#: Bring a previously-killed shard back (ring re-grows, meetings re-home).
RESTART_SHARD = "restart_shard"
#: Grow the ring by a brand-new shard.
ADD_SHARD = "add_shard"
#: Overload one shard: every meeting homed there gains ``factor`` new
#: participants (skewed growth — the hot-shard detector's test case).
OVERLOAD_SHARD = "overload_shard"
#: Lose a meeting's SEMB (RTCP APP-204) report: the pending solve demand
#: evaporates; ``factor`` further reports are suppressed at the source.
DROP_REPORT = "drop_report"
#: Delay a meeting's SEMB report by ``factor`` seconds (control-channel
#: congestion): pending demand is deferred, the next report arrives late.
DELAY_REPORT = "delay_report"
#: Lose the TMMBR configuration push to a meeting's clients: the solved
#: configuration is computed but never applied; the next delivery heals.
LOSE_TMMBR = "lose_tmmbr"
#: Collapse one client's downlink budget to ``factor`` x nominal.
DOWNLINK_COLLAPSE = "downlink_collapse"
#: Collapse one client's uplink budget to ``factor`` x nominal.
UPLINK_COLLAPSE = "uplink_collapse"
#: Restore a client's bandwidth to nominal (heals either collapse).
BANDWIDTH_RECOVER = "bandwidth_recover"
#: A publisher leaves the meeting (membership churn).
PUBLISHER_LEAVE = "publisher_leave"
#: A new publisher joins the meeting (membership churn).
PUBLISHER_JOIN = "publisher_join"
#: Deliver a stale global-picture snapshot: the meeting reports the
#: problem as it looked ``factor`` snapshot versions ago.
STALE_SNAPSHOT = "stale_snapshot"
#: Poison the solve service for one meeting: every solve attempt raises
#: until :data:`CLEAR_SOLVER_FAULT` — the canonical *unfixable* fault.
SOLVER_FAULT = "solver_fault"
#: Heal a :data:`SOLVER_FAULT`.
CLEAR_SOLVER_FAULT = "clear_solver_fault"

#: Every known fault kind.
FAULT_KINDS: Tuple[str, ...] = (
    KILL_SHARD,
    RESTART_SHARD,
    ADD_SHARD,
    OVERLOAD_SHARD,
    DROP_REPORT,
    DELAY_REPORT,
    LOSE_TMMBR,
    DOWNLINK_COLLAPSE,
    UPLINK_COLLAPSE,
    BANDWIDTH_RECOVER,
    PUBLISHER_LEAVE,
    PUBLISHER_JOIN,
    STALE_SNAPSHOT,
    SOLVER_FAULT,
    CLEAR_SOLVER_FAULT,
)

#: Kinds whose ``target`` names a shard; all others target a meeting.
SHARD_KINDS: Tuple[str, ...] = (
    KILL_SHARD,
    RESTART_SHARD,
    ADD_SHARD,
    OVERLOAD_SHARD,
)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    Attributes:
        at_s: simulated time the fault fires.
        kind: one of :data:`FAULT_KINDS`.
        target: the shard name (for :data:`SHARD_KINDS`) or meeting id
            this fault hits; ``""`` lets the runner pick deterministically
            (first live shard / first meeting).
        client: for bandwidth and churn faults, the client inside the
            meeting; ``""`` picks deterministically (lexicographically
            first for collapses, last joiner for leaves).
        factor: kind-dependent magnitude — bandwidth scale for collapses,
            delay seconds for :data:`DELAY_REPORT`, suppressed-report
            count for :data:`DROP_REPORT`, version age for
            :data:`STALE_SNAPSHOT`.
    """

    at_s: float
    kind: str
    target: str = ""
    client: str = ""
    factor: float = 0.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.factor < 0:
            raise ValueError("fault factor must be non-negative")

    def shifted(self, dt_s: float) -> "Fault":
        """The same fault, ``dt_s`` seconds later."""
        return replace(self, at_s=self.at_s + dt_s)

    def to_dict(self) -> dict:
        """JSON-friendly encoding (run-report events)."""
        return {
            "at_s": self.at_s,
            "kind": self.kind,
            "target": self.target,
            "client": self.client,
            "factor": self.factor,
        }

    @property
    def sort_key(self) -> Tuple[float, str, str, str, float]:
        """Total deterministic order of faults."""
        return (self.at_s, self.kind, self.target, self.client, self.factor)


class FaultSchedule:
    """A composable, deterministic timeline of faults.

    Schedules are value-like: :meth:`add` returns ``self`` for chaining,
    while :meth:`merge` and :meth:`shifted` return new schedules, so
    scenario builders can compose primitive outage patterns::

        schedule = (
            FaultSchedule()
            .add(Fault(4.0, KILL_SHARD))
            .merge(feedback_outage.shifted(6.0))
        )
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._faults: List[Fault] = sorted(faults, key=lambda f: f.sort_key)

    # -- composition ----------------------------------------------------- #

    def add(self, fault: Fault) -> "FaultSchedule":
        """Insert one fault (keeps the timeline sorted); returns self."""
        self._faults.append(fault)
        self._faults.sort(key=lambda f: f.sort_key)
        return self

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule containing both timelines."""
        return FaultSchedule([*self._faults, *other._faults])

    def shifted(self, dt_s: float) -> "FaultSchedule":
        """A new schedule with every fault ``dt_s`` seconds later."""
        return FaultSchedule(f.shifted(dt_s) for f in self._faults)

    def until(self, t_end_s: float) -> "FaultSchedule":
        """A new schedule truncated to faults at or before ``t_end_s``."""
        return FaultSchedule(f for f in self._faults if f.at_s <= t_end_s)

    # -- access ---------------------------------------------------------- #

    @property
    def faults(self) -> List[Fault]:
        """The timeline, sorted by (time, kind, target, client, factor)."""
        return list(self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    def to_dicts(self) -> List[dict]:
        """JSON-friendly encoding of the whole timeline."""
        return [f.to_dict() for f in self._faults]

    # -- generation ------------------------------------------------------ #

    @classmethod
    def seeded(
        cls,
        seed: int,
        duration_s: float,
        meeting_ids: Sequence[str],
        shard_names: Sequence[str],
        faults: int = 8,
        kinds: Optional[Sequence[str]] = None,
    ) -> "FaultSchedule":
        """Draw a random-but-reproducible schedule.

        Uses a string-seeded private RNG (stable across processes) so the
        same ``seed`` always yields the same timeline — the determinism
        invariant depends on it.

        Args:
            seed: schedule seed.
            duration_s: faults land uniformly in ``[0.1, duration_s)``.
            meeting_ids: meeting targets to draw from.
            shard_names: shard targets to draw from.
            faults: how many faults to draw.
            kinds: restrict the kind pool (default: every kind except the
                shard-destroying ones when only one shard exists).
        """
        rng = random.Random(f"chaos-schedule:{seed}")
        pool = list(kinds if kinds is not None else FAULT_KINDS)
        if len(shard_names) <= 1:
            pool = [k for k in pool if k not in (KILL_SHARD, RESTART_SHARD)]
        drawn: List[Fault] = []
        for _ in range(faults):
            kind = rng.choice(pool)
            at_s = round(rng.uniform(0.1, max(0.2, duration_s - 0.1)), 3)
            if kind in SHARD_KINDS:
                target = rng.choice(list(shard_names)) if shard_names else ""
                drawn.append(Fault(at_s, kind, target=target))
                continue
            target = rng.choice(list(meeting_ids)) if meeting_ids else ""
            factor = 0.0
            if kind in (DOWNLINK_COLLAPSE, UPLINK_COLLAPSE):
                factor = round(rng.uniform(0.05, 0.4), 3)
            elif kind == DELAY_REPORT:
                factor = round(rng.uniform(0.5, 2.5), 3)
            elif kind == DROP_REPORT:
                factor = float(rng.randint(1, 3))
            elif kind == STALE_SNAPSHOT:
                factor = float(rng.randint(1, 4))
            drawn.append(Fault(at_s, kind, target=target, factor=factor))
        return cls(drawn)
