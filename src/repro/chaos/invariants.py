"""Safety invariants checked after every chaos-driven solve.

Fault injection is only half a chaos subsystem; the other half is the
oracle that says what "survived" means.  Four invariant families are
checked (violating any one is a bug in the orchestration stack, never an
acceptable consequence of the injected fault):

* **constraints** — every configuration delivered to a meeting satisfies
  the three Sec. 4.1 constraint families (network bandwidth Eqs. 14-15,
  codec capability Eqs. 10-13, subscription Eq. 16), via the solution's
  own :meth:`~repro.core.solution.Solution.validate`;
* **kmr_convergence** — the KMR loop converged within the paper's bound
  (|publishers| x |resolutions|, plus the final solved iteration);
* **fallback_availability** — a meeting that ever held a configuration
  always holds *some* serviceable configuration, including across shard
  death and re-homing (Sec. 7: "the service could continue");
* **determinism** — identical seeds produce byte-identical run reports
  (checked at the soak level by comparing report digests);
* **shard_budget** — when a per-shard cost budget is configured, no shard
  ends the run over budget while the hot-shard detector still has an
  improving drain move available (a breached budget is tolerable only at
  the detector's fixpoint — e.g. one meeting alone exceeding the budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.constraints import Problem
from ..core.solution import Solution
from ..obs import names as obs_names
from ..obs.registry import get_registry

#: Invariant names (the ``invariant`` label of the chaos metrics).
INV_CONSTRAINTS = "constraints"
INV_CONVERGENCE = "kmr_convergence"
INV_AVAILABILITY = "fallback_availability"
INV_DETERMINISM = "determinism"
INV_SHARD_BUDGET = "shard_budget"

#: Every checked invariant.
ALL_INVARIANTS = (
    INV_CONSTRAINTS,
    INV_CONVERGENCE,
    INV_AVAILABILITY,
    INV_DETERMINISM,
    INV_SHARD_BUDGET,
)


def kmr_iteration_bound(problem: Problem) -> int:
    """The paper's convergence bound for one problem.

    Every KMR iteration either terminates or deletes one whole resolution
    from one publisher's feasible set, so iterations are bounded by the
    total resolution count across publishers, plus the final solved pass.
    """
    total = sum(
        len({s.resolution for s in problem.feasible_streams[pub]})
        for pub in problem.publishers
    )
    return max(1, total + 1)


@dataclass(frozen=True)
class Violation:
    """One failed invariant evaluation."""

    invariant: str
    at_s: float
    meeting_id: str
    detail: str

    def to_dict(self) -> dict:
        """JSON-friendly encoding (run-report verdicts)."""
        return {
            "invariant": self.invariant,
            "at_s": self.at_s,
            "meeting_id": self.meeting_id,
            "detail": self.detail,
        }


class InvariantChecker:
    """Accumulates invariant evaluations and violations for one run."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.checks: Dict[str, int] = {name: 0 for name in ALL_INVARIANTS}

    @property
    def ok(self) -> bool:
        """True while no invariant has failed."""
        return not self.violations

    # -- recording ------------------------------------------------------- #

    def _record(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.CHAOS_CHECKS, invariant=invariant).inc()

    def _violate(
        self, invariant: str, at_s: float, meeting_id: str, detail: str
    ) -> None:
        self.violations.append(
            Violation(invariant, at_s, meeting_id, detail)
        )
        reg = get_registry()
        if reg.enabled:
            reg.counter(
                obs_names.CHAOS_VIOLATIONS, invariant=invariant
            ).inc()

    # -- the checks ------------------------------------------------------ #

    def check_solution(
        self,
        meeting_id: str,
        problem: Problem,
        solution: Solution,
        at_s: float,
    ) -> bool:
        """Constraint families + convergence bound for one delivered
        configuration; returns True when both hold."""
        before = len(self.violations)
        self._record(INV_CONSTRAINTS)
        try:
            solution.validate(problem)
        except AssertionError as exc:
            self._violate(INV_CONSTRAINTS, at_s, meeting_id, str(exc))
        self._record(INV_CONVERGENCE)
        bound = kmr_iteration_bound(problem)
        if solution.iterations > bound:
            self._violate(
                INV_CONVERGENCE,
                at_s,
                meeting_id,
                f"{solution.iterations} iterations exceed the "
                f"|publishers| x |resolutions| bound of {bound}",
            )
        return len(self.violations) == before

    def check_availability(
        self,
        served_meetings: Iterable[str],
        holds_configuration: Dict[str, bool],
        at_s: float,
    ) -> bool:
        """Every meeting the service ever configured still holds *some*
        configuration (full solution, cached, or Sec. 7 fallback).

        Args:
            served_meetings: meetings that received at least one
                configuration so far in the run.
            holds_configuration: per meeting, whether a configuration is
                currently held (runner-side applied state AND the
                cluster-side record both count — losing either during
                re-homing is the bug this invariant exists to catch).
            at_s: current simulated time.
        """
        before = len(self.violations)
        for meeting_id in served_meetings:
            self._record(INV_AVAILABILITY)
            if not holds_configuration.get(meeting_id, False):
                self._violate(
                    INV_AVAILABILITY,
                    at_s,
                    meeting_id,
                    "meeting holds no serviceable configuration",
                )
        return len(self.violations) == before

    def check_determinism(
        self, digest_a: str, digest_b: str, seed: int
    ) -> bool:
        """Two runs of the same seed must produce identical reports."""
        self._record(INV_DETERMINISM)
        if digest_a != digest_b:
            self._violate(
                INV_DETERMINISM,
                0.0,
                "",
                f"seed {seed}: report digests differ "
                f"({digest_a[:16]}... vs {digest_b[:16]}...)",
            )
            return False
        return True

    def check_shard_budget(
        self,
        shard_loads: Dict[str, float],
        budget: float,
        drainable: Dict[str, bool],
        at_s: float,
    ) -> bool:
        """No shard may sit over its cost budget while an improving
        drain move still exists (see module docs).

        Args:
            shard_loads: assigned cost per live shard.
            budget: the per-shard cost budget (callers skip the check
                entirely when no budget is configured).
            drainable: per shard, whether the hot-shard detector still
                has an improving migration available off it.
            at_s: current simulated time.
        """
        before = len(self.violations)
        for shard in sorted(shard_loads):
            self._record(INV_SHARD_BUDGET)
            load = shard_loads[shard]
            if load > budget and drainable.get(shard, False):
                self._violate(
                    INV_SHARD_BUDGET,
                    at_s,
                    "",
                    f"shard {shard} holds cost {load:.1f} over budget "
                    f"{budget:.1f} with a drain move still available",
                )
        return len(self.violations) == before

    # -- export ---------------------------------------------------------- #

    def to_dict(self) -> dict:
        """JSON-friendly snapshot of checks and violations."""
        return {
            "checks": dict(sorted(self.checks.items())),
            "violations": [v.to_dict() for v in self.violations],
        }
