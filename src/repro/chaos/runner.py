"""The chaos runner: one seeded, fault-injected cluster run.

``ChaosRunner`` wires the three existing layers together and torments
them on a virtual clock:

* the discrete-event :class:`~repro.net.simulator.Simulator` provides
  deterministic time — meeting reports, scheduler ticks and faults are
  all simulator events;
* the :class:`~repro.cluster.ControllerCluster` is the system under
  test — the real sharded scheduler, cache, admission control and
  failover paths run unmodified, prodded only through the public
  injection hooks (``solve_interceptor``, ``defer_meeting``,
  ``drop_pending``, ``kill_shard``/``add_shard``);
* the :class:`~repro.chaos.world.ChaosWorld` supplies the meeting
  population and mutates it under bandwidth/membership faults;
* the :class:`~repro.chaos.invariants.InvariantChecker` judges every
  configuration the cluster delivers.

The output is a canonical :class:`~repro.chaos.report.RunReport` whose
digest is byte-identical across runs of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..cluster import ClusterConfig, ControllerCluster
from ..cluster.cluster import (
    SOURCE_FALLBACK,
    SOURCE_SHED,
    ServedSolution,
)
from ..core.engine import default_mckp_cache
from ..core.solution import Solution
from ..core.solver import SolverConfig
from ..net.simulator import PeriodicTask, Simulator
from ..obs import events as obs_events
from ..obs import names as obs_names
from ..obs.events import EventLog
from ..obs.registry import get_registry
from ..obs.slo import SloContext, SloEngine, SloVerdict, stage_budget_slos
from ..obs.spans import span
from ..obs.tracing import assemble_trees
from ..obs.timeseries import active_store
from ..placement.migration import HotShardDetector
from . import faults as F
from .faults import Fault, FaultSchedule
from .invariants import InvariantChecker, kmr_iteration_bound
from .report import RunReport, solution_digest
from .world import ChaosWorld

#: Reports land a quarter-interval before each tick so demand is always
#: pending when the scheduler rounds run.
REPORT_PHASE = 0.25
#: Ticks run half an interval into each period.
TICK_PHASE = 0.5


class InjectedSolverFault(RuntimeError):
    """Raised by the solve interceptor for a poisoned meeting."""


def _assignment_changes(
    previous: Optional[Solution], current: Solution
) -> List[str]:
    """Sorted human-readable diff of (subscriber <- publisher) streams.

    ``previous is None`` (the bootstrap single-stream default) diffs as
    all-added, so the first delivered configuration is itself a
    subscription change — matching what clients experience.
    """

    def stream_map(solution: Solution) -> Dict[tuple, tuple]:
        out: Dict[tuple, tuple] = {}
        for sub in solution.assignments:
            for pub, stream in solution.assignments[sub].items():
                out[(sub, pub)] = (stream.resolution.value, stream.bitrate_kbps)
        return out

    before = {} if previous is None else stream_map(previous)
    after = stream_map(current)
    changes: List[str] = []
    for key in sorted(set(before) | set(after)):
        sub, pub = key
        old = before.get(key)
        new = after.get(key)
        if old == new:
            continue
        if old is None:
            changes.append(f"{sub}<-{pub}:+{new[0]}")
        elif new is None:
            changes.append(f"{sub}<-{pub}:-{old[0]}")
        else:
            changes.append(f"{sub}<-{pub}:{old[0]}->{new[0]}")
    return changes


@dataclass
class ChaosConfig:
    """Sizing knobs of one chaos run."""

    seed: int = 1
    meetings: int = 4
    duration_s: float = 10.0
    #: Scheduler-round cadence (also the cluster's Fig. 12 min interval).
    tick_interval_s: float = 1.0
    #: SEMB/global-picture report cadence per meeting.
    report_interval_s: float = 1.0
    shards: int = 2
    cache_capacity: int = 256
    max_solves_per_round: int = 64
    mean_size: float = 4.0
    #: Placement policy homing meetings onto shards (see repro.placement).
    placement: str = "hash"
    #: Per-shard cost budget; > 0 arms the hot-shard detector every tick
    #: and the shard_budget invariant at run end.
    shard_cost_budget: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.tick_interval_s <= 0 or self.report_interval_s <= 0:
            raise ValueError("intervals must be positive")
        if self.meetings < 1:
            raise ValueError("need at least one meeting")

    def to_dict(self) -> dict:
        """JSON-friendly encoding (embedded in run reports)."""
        return {
            "seed": self.seed,
            "meetings": self.meetings,
            "duration_s": self.duration_s,
            "tick_interval_s": self.tick_interval_s,
            "report_interval_s": self.report_interval_s,
            "shards": self.shards,
            "cache_capacity": self.cache_capacity,
            "max_solves_per_round": self.max_solves_per_round,
            "mean_size": self.mean_size,
            "placement": self.placement,
            "shard_cost_budget": self.shard_cost_budget,
        }


class ChaosRunner:
    """Runs one fault schedule against a fresh cluster; see module docs."""

    def __init__(
        self,
        config: ChaosConfig,
        schedule: Optional[FaultSchedule] = None,
        scenario: str = "custom",
        slo_engine: Optional[SloEngine] = None,
    ) -> None:
        self.config = config
        self.schedule = schedule or FaultSchedule()
        self.scenario = scenario
        self.slo_engine = slo_engine or SloEngine()
        #: The run's structured event log (populated by :meth:`run`; kept
        #: on the runner so CLIs can render timelines afterwards).
        self.events: EventLog = EventLog()
        #: The full SLO verdict objects from the last run (the report only
        #: keeps their dict encodings, split deterministic/informational).
        self.slo_verdicts: List[SloVerdict] = []
        #: The trace plane assembled from the last run's event log
        #: (populated by :meth:`run`; kept for waterfalls and profiles).
        self.traces = assemble_trees(())

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def run(self) -> RunReport:
        """Execute the run and return its canonical report."""
        cfg = self.config
        # Seeded runs must be hermetic: drop the process-wide MCKP
        # instance cache so a double run replays the identical hit/miss
        # pattern (the determinism invariant compares metric samples too).
        default_mckp_cache().clear()
        self.sim = Simulator()
        self.world = ChaosWorld(
            seed=cfg.seed, meetings=cfg.meetings, mean_size=cfg.mean_size
        )
        self.cluster = ControllerCluster(
            ClusterConfig(
                shards=cfg.shards,
                min_interval_s=cfg.tick_interval_s,
                max_interval_s=3.0 * cfg.tick_interval_s,
                cache_capacity=cfg.cache_capacity,
                max_solves_per_round=cfg.max_solves_per_round,
                pool_workers=0,
                placement=cfg.placement,
                shard_cost_budget=cfg.shard_cost_budget,
                solver=SolverConfig(granularity_kbps=25),
            )
        )
        self.detector: Optional[HotShardDetector] = (
            HotShardDetector(cfg.shard_cost_budget)
            if cfg.shard_cost_budget > 0
            else None
        )
        self.checker = InvariantChecker()
        self.report = RunReport(
            scenario=self.scenario,
            seed=cfg.seed,
            duration_s=cfg.duration_s,
            config=self.config.to_dict(),
        )
        # Fault state the runner maintains between events.
        self._poisoned: Set[str] = set()
        self._drop_reports: Dict[str, int] = {}
        self._delay_next_report: Dict[str, float] = {}
        self._lose_next_tmmbr: Set[str] = set()
        self._applied: Dict[str, dict] = {}
        self._applied_solution: Dict[str, Optional[Solution]] = {}
        self._ever_served: Set[str] = set()
        self._fallback_since: Dict[str, int] = {}
        self._meeting_counters: Dict[str, Dict[str, int]] = {}
        self._tick_index = 0
        self._max_iteration_ratio = 0.0
        self.events = EventLog()
        self.slo_verdicts = []
        self.traces = assemble_trees(())

        self.cluster.solve_interceptor = self._intercept
        try:
            with span(obs_names.SPAN_CHAOS_RUN), \
                    obs_events.record_events(self.events):
                self._bootstrap()
                self.sim.run_until(cfg.duration_s)
                self._finalize()
        finally:
            self.cluster.close()
        return self.report

    def _bootstrap(self) -> None:
        """Register meetings, start the report/tick clocks, arm faults."""
        cfg = self.config
        for meeting_id in self.world.meeting_ids:
            self.cluster.register(meeting_id)
            # Clients boot in a safe single-stream default until the
            # first TMMBR push arrives (Sec. 7's floor configuration).
            self._applied[meeting_id] = {
                "source": "bootstrap",
                "t": 0.0,
                "digest": "",
            }
            self._applied_solution[meeting_id] = None
            self._meeting_counters[meeting_id] = {
                "reports_dropped": 0,
                "tmmbr_lost": 0,
                "fallback_recoveries": 0,
            }
            PeriodicTask(
                self.sim,
                cfg.report_interval_s,
                lambda mid=meeting_id: self._report(mid),
                start_offset=REPORT_PHASE * cfg.report_interval_s,
            )
        PeriodicTask(
            self.sim,
            cfg.tick_interval_s,
            self._tick,
            start_offset=TICK_PHASE * cfg.tick_interval_s,
        )
        for fault in self.schedule.until(cfg.duration_s):
            self.sim.schedule_at(
                fault.at_s, lambda f=fault: self._apply_fault(f)
            )

    def _finalize(self) -> None:
        """Closing availability check + per-meeting summaries."""
        self._check_availability()
        if self.detector is not None:
            live = self.cluster.live_shards
            self.checker.check_shard_budget(
                self.cluster.load_model.loads(live),
                self.detector.budget,
                {
                    shard: self.detector.drainable(self.cluster, shard)
                    for shard in live
                },
                self.sim.now,
            )
        for meeting_id in self.world.meeting_ids:
            record = self.cluster.meeting(meeting_id)
            state = self.world.meeting(meeting_id)
            applied = self._applied[meeting_id]
            self.report.meetings[meeting_id] = {
                "size": state.size,
                "picture_version": state.version,
                "solves": record.solves,
                "cache_hits": record.cache_hits,
                "fallbacks": record.fallbacks,
                "rehomes": record.rehomes,
                "applied_source": applied["source"],
                "applied_digest": applied["digest"],
                **self._meeting_counters[meeting_id],
            }
        self.report.checks = dict(self.checker.checks)
        self.report.violations = [
            v.to_dict() for v in self.checker.violations
        ]
        reg = get_registry()
        if reg.enabled:
            verdict = "pass" if self.report.ok else "fail"
            reg.counter(obs_names.CHAOS_RUNS, verdict=verdict).inc()
        # Assemble the trace plane before SLO evaluation so stage-budget
        # objectives can draw on the critical-path attribution.
        self.traces = assemble_trees(self.events.events)
        self._evaluate_slos()
        self.report.events_total = self.events.emitted
        self.report.event_digest = self.events.digest()
        self.report.trace_digest = self.traces.digest()

    def _evaluate_slos(self) -> None:
        """Attach SLO verdicts: deterministic ones enter the digested
        report; wall-clock ones (solve latency) stay informational."""
        ctx = SloContext(
            serves=self.report.serves,
            duration_s=self.config.duration_s,
            tick_interval_s=self.config.tick_interval_s,
            stats={"kmr_iteration_ratio_max": self._max_iteration_ratio},
            registry=get_registry(),
            stage_latencies=self.traces.stage_latencies(),
        )
        self.slo_verdicts = list(self.slo_engine.evaluate(ctx))
        self.slo_verdicts.extend(
            SloEngine(stage_budget_slos()).evaluate(ctx)
        )
        for verdict in self.slo_verdicts:
            row = verdict.to_dict()
            if verdict.deterministic:
                self.report.slo.append(row)
            else:
                self.report.slo_informational.append(row)

    # ------------------------------------------------------------------ #
    # Event callbacks
    # ------------------------------------------------------------------ #

    def _intercept(self, meeting_id: str, problem) -> None:
        """The cluster-side injection hook: poisoned meetings crash."""
        if meeting_id in self._poisoned:
            raise InjectedSolverFault(
                f"injected solver fault for {meeting_id}"
            )

    def _report(self, meeting_id: str) -> None:
        """One meeting's periodic SEMB/global-picture report."""
        remaining = self._drop_reports.get(meeting_id, 0)
        if remaining > 0:
            self._drop_reports[meeting_id] = remaining - 1
            self._meeting_counters[meeting_id]["reports_dropped"] += 1
            return
        delay = self._delay_next_report.pop(meeting_id, 0.0)
        if delay > 0:
            self.sim.schedule(
                delay, lambda: self._submit_current(meeting_id)
            )
        else:
            self._submit_current(meeting_id)

    def _submit_current(self, meeting_id: str) -> None:
        self.cluster.submit(
            meeting_id,
            self.world.current_problem(meeting_id),
            now_s=self.sim.now,
        )

    def _tick(self) -> None:
        """One scheduler round plus invariant checks on its deliveries."""
        self._tick_index += 1
        with span(obs_names.SPAN_CHAOS_TICK):
            for served in self.cluster.tick(self.sim.now):
                self._deliver(served)
            if self.detector is not None:
                # Drain over-budget shards; the degraded fallbacks served
                # mid-move are delivered like any other configuration.
                rebalance = self.detector.rebalance(
                    self.cluster, self.sim.now
                )
                for served in rebalance.served:
                    self._deliver(served)
            self._check_availability()
        store = active_store()
        if store is not None:
            store.sample_registry(get_registry(), self.sim.now)

    def _deliver(self, served: ServedSolution) -> None:
        """Judge and apply one configuration pushed by the cluster."""
        meeting_id = served.meeting_id
        record = self.cluster.meeting(meeting_id)
        assert record.last_problem is not None
        self.checker.check_solution(
            meeting_id, record.last_problem, served.solution, self.sim.now
        )
        bound = kmr_iteration_bound(record.last_problem)
        self._max_iteration_ratio = max(
            self._max_iteration_ratio, served.solution.iterations / bound
        )
        digest = solution_digest(served.solution)
        delivered = True
        if meeting_id in self._lose_next_tmmbr:
            # The TMMBR push is lost in flight: the configuration was
            # computed but the clients keep their previous one.  The next
            # delivery (the scheduler re-solves every tick) heals it.
            self._lose_next_tmmbr.discard(meeting_id)
            self._meeting_counters[meeting_id]["tmmbr_lost"] += 1
            delivered = False
        self.report.serves.append(
            {
                "t": self.sim.now,
                "tick": self._tick_index,
                "meeting": meeting_id,
                "cid": served.correlation_id,
                "source": served.source,
                "trigger": served.trigger,
                "solution": digest,
                "delivered": delivered,
            }
        )
        self._ever_served.add(meeting_id)
        self.events.emit(
            obs_events.TMMBR_PUSH if delivered else obs_events.TMMBR_LOST,
            t=self.sim.now,
            meeting=meeting_id,
            cid=served.correlation_id,
            shard=served.shard,
            publishers=len(served.solution.policies),
        )
        if delivered:
            previous = self._applied_solution.get(meeting_id)
            changes = _assignment_changes(previous, served.solution)
            if changes:
                self.events.emit(
                    obs_events.SUBSCRIPTION_CHANGE,
                    t=self.sim.now,
                    meeting=meeting_id,
                    cid=served.correlation_id,
                    shard=served.shard,
                    changed=len(changes),
                    changes=",".join(changes[:3]),
                )
            self._applied[meeting_id] = {
                "source": served.source,
                "t": self.sim.now,
                "digest": digest,
            }
            self._applied_solution[meeting_id] = served.solution
        self._track_recovery(meeting_id, served.source)

    def _track_recovery(self, meeting_id: str, source: str) -> None:
        """Measure how long meetings stay degraded on the fallback."""
        if source in (SOURCE_FALLBACK, SOURCE_SHED):
            self._fallback_since.setdefault(meeting_id, self._tick_index)
            return
        since = self._fallback_since.pop(meeting_id, None)
        if since is None:
            return
        self._meeting_counters[meeting_id]["fallback_recoveries"] += 1
        reg = get_registry()
        if reg.enabled:
            reg.histogram(obs_names.CHAOS_RECOVERY_TICKS).observe(
                self._tick_index - since
            )

    def _check_availability(self) -> None:
        """Fallback-availability invariant over every served meeting."""
        holds = {
            meeting_id: (
                self.cluster.meeting(meeting_id).last_solution is not None
                and self._applied.get(meeting_id) is not None
            )
            for meeting_id in self._ever_served
        }
        self.checker.check_availability(
            sorted(self._ever_served), holds, self.sim.now
        )

    # ------------------------------------------------------------------ #
    # Fault application
    # ------------------------------------------------------------------ #

    def _meeting_target(self, fault: Fault) -> str:
        return fault.target or self.world.meeting_ids[0]

    def _apply_fault(self, fault: Fault) -> None:
        """Dispatch one fault; records the outcome in the report."""
        outcome = "applied"
        detail: Dict[str, object] = {}
        kind = fault.kind
        # Emitted before dispatch so the fault precedes its effects
        # (handover fallbacks, re-homes) in the causal timeline.
        self.events.emit(
            obs_events.FAULT_INJECTED,
            t=self.sim.now,
            meeting=(
                fault.target
                if fault.target in self.world.meeting_ids
                else ""
            ),
            fault=kind,
            target=fault.target,
        )

        if kind == F.KILL_SHARD:
            live = self.cluster.live_shards
            target = fault.target or live[0]
            if len(live) <= 1 or target not in live:
                outcome = "skipped"
            else:
                handover = self.cluster.kill_shard(target, self.sim.now)
                for served in handover:
                    self._deliver(served)
                detail = {"shard": target, "rehomed": len(handover)}
        elif kind == F.RESTART_SHARD:
            dead = sorted(
                set(self.cluster.stats()["shards"])
                - set(self.cluster.live_shards)
            )
            target = fault.target or (dead[0] if dead else "")
            if not target or target in self.cluster.live_shards:
                outcome = "skipped"
            else:
                self.cluster.add_shard(target, self.sim.now)
                detail = {"shard": target}
        elif kind == F.ADD_SHARD:
            target = fault.target or None
            if target is not None and target in self.cluster.live_shards:
                outcome = "skipped"
            else:
                name = self.cluster.add_shard(target, self.sim.now)
                detail = {"shard": name}
        elif kind == F.OVERLOAD_SHARD:
            live = self.cluster.live_shards
            target = fault.target if fault.target in live else ""
            if not target:
                # Pick the busiest live shard by assigned cost.
                loads = self.cluster.load_model.loads(live)
                target = max(live, key=lambda s: (loads[s], s))
            joins = int(fault.factor) if fault.factor >= 1 else 2
            grown = 0
            for mid, _cost in self.cluster.load_model.meetings_on(target):
                if mid not in self.world.meeting_ids:
                    continue
                for _ in range(joins):
                    self.world.add_client(mid)
                self._submit_current(mid)
                grown += 1
            if not grown:
                outcome = "skipped"
            else:
                detail = {
                    "shard": target,
                    "meetings_grown": grown,
                    "joined_each": joins,
                }
        elif kind == F.DROP_REPORT:
            meeting_id = self._meeting_target(fault)
            dropped_pending = self.cluster.drop_pending(meeting_id)
            count = max(1, int(fault.factor))
            self._drop_reports[meeting_id] = (
                self._drop_reports.get(meeting_id, 0) + count
            )
            detail = {
                "meeting": meeting_id,
                "dropped_pending": dropped_pending,
                "suppressed": count,
            }
        elif kind == F.DELAY_REPORT:
            meeting_id = self._meeting_target(fault)
            deferred = self.cluster.defer_meeting(meeting_id, fault.factor)
            self._delay_next_report[meeting_id] = fault.factor
            detail = {"meeting": meeting_id, "deferred_pending": deferred}
        elif kind == F.LOSE_TMMBR:
            meeting_id = self._meeting_target(fault)
            self._lose_next_tmmbr.add(meeting_id)
            detail = {"meeting": meeting_id}
        elif kind in (F.DOWNLINK_COLLAPSE, F.UPLINK_COLLAPSE):
            meeting_id = self._meeting_target(fault)
            scales = (
                {"down_scale": fault.factor}
                if kind == F.DOWNLINK_COLLAPSE
                else {"up_scale": fault.factor}
            )
            client = self.world.scale_bandwidth(
                meeting_id, fault.client, **scales
            )
            self._submit_current(meeting_id)
            detail = {"meeting": meeting_id, "client": client}
        elif kind == F.BANDWIDTH_RECOVER:
            meeting_id = self._meeting_target(fault)
            client = self.world.scale_bandwidth(
                meeting_id, fault.client, up_scale=1.0, down_scale=1.0
            )
            self._submit_current(meeting_id)
            detail = {"meeting": meeting_id, "client": client}
        elif kind == F.PUBLISHER_LEAVE:
            meeting_id = self._meeting_target(fault)
            client = self.world.remove_client(meeting_id, fault.client)
            if not client:
                outcome = "skipped"
            else:
                self._submit_current(meeting_id)
                detail = {"meeting": meeting_id, "client": client}
        elif kind == F.PUBLISHER_JOIN:
            meeting_id = self._meeting_target(fault)
            client = self.world.add_client(meeting_id)
            self._submit_current(meeting_id)
            detail = {"meeting": meeting_id, "client": client}
        elif kind == F.STALE_SNAPSHOT:
            meeting_id = self._meeting_target(fault)
            version, problem = self.world.stale_problem(
                meeting_id, int(fault.factor)
            )
            self.cluster.submit(meeting_id, problem, now_s=self.sim.now)
            detail = {"meeting": meeting_id, "stale_version": version}
        elif kind == F.SOLVER_FAULT:
            meeting_id = self._meeting_target(fault)
            self._poisoned.add(meeting_id)
            detail = {"meeting": meeting_id}
        elif kind == F.CLEAR_SOLVER_FAULT:
            meeting_id = self._meeting_target(fault)
            if meeting_id in self._poisoned:
                self._poisoned.discard(meeting_id)
                detail = {"meeting": meeting_id}
            else:
                outcome = "skipped"
        else:  # pragma: no cover - Fault.__post_init__ rejects these
            outcome = "skipped"

        if outcome == "applied":
            reg = get_registry()
            if reg.enabled:
                reg.counter(obs_names.CHAOS_FAULTS, kind=kind).inc()
        self.report.faults.append(
            {**fault.to_dict(), "outcome": outcome, **detail}
        )
