"""Canonical run reports: the byte-identical evidence of a chaos run.

Determinism is an invariant, so the report format must itself be
deterministic: canonical JSON (sorted keys, fixed separators), simulated
time only (never wall clock), and content-addressed solution digests.
Two runs of the same scenario and seed must produce the same
:meth:`RunReport.digest` — the soak runner enforces it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Union

from ..core.solution import Solution

#: Report schema tag; bump on any encoding change.
#: v2: serves carry correlation ids, and the report embeds deterministic
#: SLO verdicts plus the event-log digest.
#: v3: the report embeds the assembled trace-plane digest, and the SLO
#: block includes per-stage latency-budget verdicts.
REPORT_SCHEMA = "repro.chaos_report/v3"


def solution_digest(solution: Solution) -> str:
    """A short content digest of one delivered configuration.

    Canonical over both views (policies and assignments), independent of
    dict construction order.
    """
    parts: List[str] = []
    for pub in sorted(solution.policies):
        for res in sorted(solution.policies[pub]):
            entry = solution.policies[pub][res]
            parts.append(
                f"P[{pub}@{res.value}]={entry.bitrate_kbps}->"
                f"{','.join(sorted(entry.audience))}"
            )
    for sub in sorted(solution.assignments):
        for pub in sorted(solution.assignments[sub]):
            stream = solution.assignments[sub][pub]
            parts.append(
                f"A[{sub}<-{pub}]={stream.bitrate_kbps}@"
                f"{stream.resolution.value}"
            )
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:16]


@dataclass
class RunReport:
    """Everything one chaos run observed, in canonical form.

    Attributes:
        scenario: scenario name driving the run.
        seed: world + schedule seed.
        duration_s: simulated run length.
        config: the runner's sizing knobs (for reproduction).
        faults: fault-application events, in order — each carries the
            fault dict plus an ``applied``/``skipped`` outcome.
        serves: every configuration delivery, in order: time, meeting,
            source, trigger, solution digest.
        checks: invariant evaluation counts.
        violations: failed invariant evaluations (empty on a healthy run).
        meetings: per-meeting closing summary.
        slo: deterministic SLO verdicts (simulated-time measures only —
            part of the digested canonical encoding).
        slo_informational: wall-clock SLO verdicts (solve latency).
            Reported by :meth:`summary` but **never digested**: wall time
            varies between identical seeded runs.
        events_total: structured events emitted during the run.
        event_digest: SHA-256 of the run's canonical event-log JSONL
            (two same-seed runs must match byte-for-byte).
        trace_digest: SHA-256 of the trace plane assembled from the
            event log (``repro.obs.tracing``) — same determinism
            contract as ``event_digest``.
    """

    scenario: str
    seed: int
    duration_s: float
    config: Dict[str, Union[int, float, str]] = field(default_factory=dict)
    faults: List[dict] = field(default_factory=list)
    serves: List[dict] = field(default_factory=list)
    checks: Dict[str, int] = field(default_factory=dict)
    violations: List[dict] = field(default_factory=list)
    meetings: Dict[str, dict] = field(default_factory=dict)
    slo: List[dict] = field(default_factory=list)
    slo_informational: List[dict] = field(default_factory=list)
    events_total: int = 0
    event_digest: str = ""
    trace_digest: str = ""

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    @property
    def slo_ok(self) -> bool:
        """True when every deterministic SLO verdict passed."""
        return all(v.get("ok", True) for v in self.slo)

    @property
    def served_by_source(self) -> Dict[str, int]:
        """Delivery counts per source (solve / cache / fallback / shed)."""
        out: Dict[str, int] = {}
        for serve in self.serves:
            out[serve["source"]] = out.get(serve["source"], 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        """The full canonical encoding."""
        return {
            "schema": REPORT_SCHEMA,
            "scenario": self.scenario,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "config": dict(sorted(self.config.items())),
            "faults": self.faults,
            "serves": self.serves,
            "served_by_source": self.served_by_source,
            "checks": dict(sorted(self.checks.items())),
            "violations": self.violations,
            "meetings": {k: self.meetings[k] for k in sorted(self.meetings)},
            "slo": self.slo,
            "slo_ok": self.slo_ok,
            "events_total": self.events_total,
            "event_digest": self.event_digest,
            "trace_digest": self.trace_digest,
            "ok": self.ok,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed separators, no whitespace
        variance — the byte string the digest is computed over."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON encoding."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def summary(self) -> str:
        """Human-readable one-screen summary."""
        lines = [
            f"chaos run: scenario={self.scenario} seed={self.seed} "
            f"duration={self.duration_s:g}s -> "
            f"{'OK' if self.ok else 'VIOLATIONS'}",
            f"  faults injected: {len(self.faults)}",
            f"  configurations served: {len(self.serves)} "
            f"{self.served_by_source}",
            f"  invariant checks: {dict(sorted(self.checks.items()))}",
        ]
        if self.events_total:
            lines.append(
                f"  events: {self.events_total} "
                f"(digest {self.event_digest[:16]})"
            )
        if self.trace_digest:
            lines.append(f"  traces: digest {self.trace_digest[:16]}")
        for verdict in self.slo + self.slo_informational:
            value = verdict.get("value")
            shown = "n/a" if value is None else f"{value:.3f}"
            word = "PASS" if verdict.get("ok") else (
                "BURN" if verdict.get("fast_burn") else "FAIL"
            )
            if value is None:
                word = "SKIP"
            det = "" if verdict.get("deterministic", True) else " (wall-clock)"
            lines.append(
                f"  SLO {word} {verdict['name']}: {shown} "
                f"{verdict.get('comparator', '<=')} "
                f"{verdict.get('threshold')}{det}"
            )
        for violation in self.violations:
            lines.append(
                f"  VIOLATION [{violation['invariant']}] "
                f"t={violation['at_s']:g} {violation['meeting_id']}: "
                f"{violation['detail']}"
            )
        lines.append(f"  report digest: {self.digest()}")
        return "\n".join(lines)


def write_jsonl(
    reports: Iterable[RunReport], path: Union[str, Path]
) -> Path:
    """Write one canonical JSON report per line; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for report in reports:
            handle.write(report.to_json())
            handle.write("\n")
    return target
