"""The soak runner: sweep scenarios x seeds, enforce every invariant.

Each (scenario, seed) cell runs **twice**: once for the verdict and once
to check the determinism invariant — the two runs must produce
byte-identical report digests.  Verdicts stream to a JSONL file (one
canonical report per line) and obs counters, and :func:`soak` returns a
:class:`SoakResult` whose ``ok`` is the CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .invariants import InvariantChecker
from .report import RunReport, write_jsonl
from .runner import ChaosConfig, ChaosRunner
from .scenarios import Scenario, get_scenario, list_scenarios


@dataclass
class SoakResult:
    """The outcome of one soak sweep."""

    reports: List[RunReport] = field(default_factory=list)
    #: Determinism failures: ``{"scenario", "seed", "detail"}`` dicts.
    determinism_failures: List[dict] = field(default_factory=list)

    @property
    def runs(self) -> int:
        """Verdict runs executed (each also ran a determinism re-run)."""
        return len(self.reports)

    @property
    def violations(self) -> int:
        """Total invariant violations across every report."""
        return sum(len(r.violations) for r in self.reports) + len(
            self.determinism_failures
        )

    @property
    def ok(self) -> bool:
        """True when every run passed every invariant, twice."""
        return self.violations == 0

    def summary(self) -> str:
        """Human-readable sweep summary."""
        by_scenario: Dict[str, List[RunReport]] = {}
        for report in self.reports:
            by_scenario.setdefault(report.scenario, []).append(report)
        lines = [
            f"chaos soak: {self.runs} runs x 2 (determinism re-runs) -> "
            f"{'OK' if self.ok else f'{self.violations} VIOLATIONS'}"
        ]
        for name in sorted(by_scenario):
            group = by_scenario[name]
            bad = sum(1 for r in group if not r.ok)
            serves = sum(len(r.serves) for r in group)
            faults = sum(len(r.faults) for r in group)
            lines.append(
                f"  {name}: {len(group)} seeds, {faults} faults, "
                f"{serves} serves, "
                f"{'all OK' if not bad else f'{bad} FAILED'}"
            )
        for failure in self.determinism_failures:
            lines.append(
                f"  DETERMINISM FAILURE {failure['scenario']} "
                f"seed={failure['seed']}: {failure['detail']}"
            )
        return "\n".join(lines)


def run_scenario(
    scenario: Union[str, Scenario],
    seed: int,
    config: Optional[ChaosConfig] = None,
) -> RunReport:
    """Run one scenario once at one seed; returns its report."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    cfg = config or ChaosConfig()
    if cfg.seed != seed or scenario.config_overrides:
        params = {**cfg.to_dict(), "seed": seed}
        params.update(scenario.config_overrides)
        cfg = ChaosConfig(**params)
    schedule = scenario.build(seed, cfg)
    return ChaosRunner(cfg, schedule, scenario=scenario.name).run()


def soak(
    seeds: int = 20,
    scenarios: Optional[Sequence[str]] = None,
    config: Optional[ChaosConfig] = None,
    out: Optional[Union[str, Path]] = None,
    base_seed: int = 0,
) -> SoakResult:
    """Sweep every requested scenario across ``seeds`` seeds.

    Args:
        seeds: seeds per scenario (``base_seed .. base_seed + seeds - 1``).
        scenarios: scenario names (default: every registered scenario).
        config: sizing template; its seed field is overridden per run.
        out: optional JSONL path for the verdict stream.
        base_seed: first seed of the sweep.

    Returns:
        The accumulated :class:`SoakResult`.
    """
    if seeds < 1:
        raise ValueError("need at least one seed")
    chosen = (
        [get_scenario(name) for name in scenarios]
        if scenarios is not None
        else list_scenarios()
    )
    result = SoakResult()
    for scenario in chosen:
        for seed in range(base_seed, base_seed + seeds):
            report = run_scenario(scenario, seed, config)
            result.reports.append(report)
            # Determinism is invariant #4: replay the identical run and
            # require a byte-identical report.
            replay = run_scenario(scenario, seed, config)
            checker = InvariantChecker()
            if not checker.check_determinism(
                report.digest(), replay.digest(), seed
            ):
                result.determinism_failures.append(
                    {
                        "scenario": scenario.name,
                        "seed": seed,
                        "detail": checker.violations[-1].detail,
                    }
                )
    if out is not None:
        write_jsonl(result.reports, out)
    return result
