"""Bandwidth traces: scheduled link-capacity changes.

The evaluation scenarios apply deterministic capacity schedules to links —
e.g. Fig. 7 limits a downlink to 750/625/500/375 kbps at t=20 s and restores
it at t=57 s.  A :class:`BandwidthTrace` is an ordered list of (time, kbps)
steps that can be applied to any :class:`~repro.net.link.Link`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .link import Link
from .simulator import Simulator


@dataclass(frozen=True)
class BandwidthStep:
    """One capacity change: at ``time_s``, set the link to ``kbps``."""

    time_s: float
    kbps: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("step time must be non-negative")
        if self.kbps <= 0:
            raise ValueError("step bandwidth must be positive")


class BandwidthTrace:
    """An ordered sequence of bandwidth steps.

    Example (the Fig. 7 schedule)::

        trace = BandwidthTrace.step_schedule(
            initial_kbps=1500,
            steps=[(20.0, 750.0)],
            recover_at_s=57.0,
        )
        trace.apply(sim, link)
    """

    def __init__(self, steps: Sequence[BandwidthStep]) -> None:
        self.steps: List[BandwidthStep] = sorted(steps, key=lambda s: s.time_s)

    @classmethod
    def step_schedule(
        cls,
        initial_kbps: float,
        steps: Sequence[Tuple[float, float]],
        recover_at_s: float = 0.0,
    ) -> "BandwidthTrace":
        """Build a limit-then-recover schedule.

        Args:
            initial_kbps: capacity restored at ``recover_at_s``.
            steps: (time_s, kbps) limit events.
            recover_at_s: when to restore ``initial_kbps`` (0 disables).
        """
        events = [BandwidthStep(t, kbps) for t, kbps in steps]
        if recover_at_s > 0:
            events.append(BandwidthStep(recover_at_s, initial_kbps))
        return cls(events)

    def apply(self, sim: Simulator, link: Link) -> None:
        """Schedule every step of the trace onto a link."""
        for step in self.steps:
            sim.schedule_at(
                step.time_s,
                lambda kbps=step.kbps: link.set_bandwidth_kbps(kbps),
            )

    def value_at(self, t: float, initial_kbps: float) -> float:
        """The capacity the trace prescribes at time ``t``."""
        current = initial_kbps
        for step in self.steps:
            if step.time_s <= t:
                current = step.kbps
        return current
