"""Discrete-event simulation core.

Everything in the reproduction that "happens over time" — media packets
traversing links, RTCP feedback, bandwidth estimator updates, controller
invocations — runs inside one :class:`Simulator` event loop with a
simulated clock.  The paper's systems are evaluated on real networks; the
simulator substitutes the IP layer while the protocol layers above it
(RTP/RTCP/SDP and the GSO control plane) run unmodified.

Determinism rules:

* no wall-clock reads — simulated seconds only;
* ties in event time break by insertion order (a monotonically increasing
  sequence number), so identical runs replay identically;
* all randomness is injected through explicit ``random.Random`` instances.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

#: Event callbacks take no arguments; capture context via closures.
EventCallback = Callable[[], None]


@dataclass(frozen=True)
class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    time: float
    seq: int


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, lambda: print(sim.now))
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = itertools.count()
        # Heap of (time, seq, callback); cancelled events hold callback=None.
        self._heap: List[Tuple[float, int, Optional[EventCallback]]] = []
        self._cancelled: set = set()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Args:
            delay: non-negative offset in simulated seconds.
            callback: zero-argument callable.

        Returns:
            A handle usable with :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        seq = next(self._seq)
        heapq.heappush(self._heap, (self._now + delay, seq, callback))
        return EventHandle(self._now + delay, seq)

    def schedule_at(self, when: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        return self.schedule(when - self._now, callback)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (no-op if it already fired)."""
        self._cancelled.add(handle.seq)

    def schedule_window(
        self,
        start_s: float,
        duration_s: float,
        on_start: EventCallback,
        on_end: EventCallback,
    ) -> Tuple[EventHandle, EventHandle]:
        """Schedule a bounded condition: ``on_start`` at ``start_s``,
        ``on_end`` at ``start_s + duration_s`` (absolute times).

        The canonical shape of a transient fault — a link blackout, a
        bandwidth collapse, a feedback outage — is "something breaks, then
        recovers".  This helper keeps the two edges paired so fault
        injectors cannot forget the recovery edge.

        Returns:
            The (start, end) event handles, both cancellable.
        """
        if duration_s < 0:
            raise ValueError("window duration must be non-negative")
        return (
            self.schedule_at(start_s, on_start),
            self.schedule_at(start_s + duration_s, on_end),
        )

    def run_until(self, t_end: float) -> None:
        """Process events in order until the clock reaches ``t_end``.

        The clock is left exactly at ``t_end`` (events scheduled at
        precisely ``t_end`` are executed).
        """
        while self._heap and self._heap[0][0] <= t_end:
            when, seq, callback = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._now = when
            if callback is not None:
                callback()
        self._now = max(self._now, t_end)

    def run(self) -> None:
        """Drain every pending event (use only with finite event chains)."""
        while self._heap:
            when, seq, callback = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._now = when
            if callback is not None:
                callback()

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._heap)


class PeriodicTask:
    """A repeating simulator task with drift-free scheduling.

    Used for frame generation, RTCP report timers, controller ticks, etc.
    The callback may call :meth:`stop` to cease rescheduling.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: EventCallback,
        start_offset: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._running = True
        self._next_time = sim.now + start_offset
        sim.schedule(start_offset, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._next_time += self._interval
            self._sim.schedule_at(self._next_time, self._fire)

    def stop(self) -> None:
        """Stop the task; the current in-flight callback still completes."""
        self._running = False

    @property
    def interval(self) -> float:
        """The firing interval in seconds."""
        return self._interval

    @interval.setter
    def interval(self, value: float) -> None:
        """The firing interval in seconds."""
        if value <= 0:
            raise ValueError(f"interval must be positive, got {value}")
        self._interval = value
