"""Discrete-event network substrate: simulator clock, links, traces."""

from .link import DuplexLink, Link, LinkStats, make_duplex
from .packet import IP_UDP_OVERHEAD_BYTES, Packet, packet_for_bytes
from .simulator import EventHandle, PeriodicTask, Simulator
from .trace import BandwidthStep, BandwidthTrace

__all__ = [
    "BandwidthStep",
    "BandwidthTrace",
    "DuplexLink",
    "EventHandle",
    "IP_UDP_OVERHEAD_BYTES",
    "Link",
    "LinkStats",
    "Packet",
    "PeriodicTask",
    "Simulator",
    "make_duplex",
    "packet_for_bytes",
]
