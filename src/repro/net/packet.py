"""Network packet model.

A :class:`Packet` is what traverses simulated links: an opaque payload (for
RTP/RTCP, real serialized bytes) plus the metadata the transport layers
need.  The simulator charges links by ``size_bytes``, which includes an
IP/UDP overhead allowance on top of the payload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Bytes of IP + UDP header charged per packet on every link.
IP_UDP_OVERHEAD_BYTES = 28

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One simulated datagram.

    Attributes:
        payload: the wire bytes (RTP/RTCP) or any structured object for
            layers that do not need byte fidelity.
        size_bytes: on-the-wire size including IP/UDP overhead.
        src: sender identifier (client or node id).
        dst: receiver identifier.
        sent_at: simulated time the packet entered the first link.
        packet_id: globally unique id (debugging, loss accounting).
        ecn_marked: set by links whose queue exceeds the marking threshold.
    """

    payload: Any
    size_bytes: int
    src: str = ""
    dst: str = ""
    sent_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    ecn_marked: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")


def packet_for_bytes(
    payload: bytes, src: str = "", dst: str = "", sent_at: float = 0.0
) -> Packet:
    """Wrap serialized wire bytes into a packet, adding IP/UDP overhead."""
    return Packet(
        payload=payload,
        size_bytes=len(payload) + IP_UDP_OVERHEAD_BYTES,
        src=src,
        dst=dst,
        sent_at=sent_at,
    )
