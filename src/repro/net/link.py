"""Rate-limited link model: the bottleneck element of the simulation.

A :class:`Link` models one direction of a network path as

* a FIFO **serialization queue** drained at the link bandwidth (time-varying
  via :meth:`set_bandwidth_kbps`), bounded by a byte-budget measured in
  milliseconds of queueing at the current rate — packets arriving to a full
  queue are tail-dropped (this is what congestion "looks like" to the
  congestion controller: growing one-way delay, then loss);
* a constant **propagation delay** plus random per-packet **jitter**;
* an i.i.d. random **loss** process (the Table 2 "loss 30 % / 50 %" cases).

Delivery callbacks fire inside the simulator event loop.  Jitter may
reorder packets — exactly why receivers need a jitter buffer.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .packet import Packet
from .simulator import Simulator

#: Delivery callbacks receive the packet and the delivery time.
DeliveryCallback = Callable[[Packet, float], None]


@dataclass
class LinkStats:
    """Counters accumulated over a link's lifetime."""

    sent_packets: int = 0
    delivered_packets: int = 0
    lost_packets: int = 0
    queue_dropped_packets: int = 0
    delivered_bytes: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets not delivered (random + queue drops)."""
        if self.sent_packets == 0:
            return 0.0
        return 1.0 - self.delivered_packets / self.sent_packets


class Link:
    """One direction of a network path.

    Args:
        sim: the event loop.
        bandwidth_kbps: initial serialization rate.
        propagation_ms: constant one-way delay.
        jitter_ms: mean of the exponentially-distributed per-packet extra
            delay (0 disables jitter).
        loss_rate: i.i.d. drop probability in [0, 1).
        queue_ms: queue capacity expressed as milliseconds of buffering at
            the current bandwidth (a common router sizing rule).
        rng: randomness source for loss and jitter; required when either is
            non-zero so runs stay reproducible.
        name: label used in diagnostics.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_kbps: float,
        propagation_ms: float = 20.0,
        jitter_ms: float = 0.0,
        loss_rate: float = 0.0,
        queue_ms: float = 300.0,
        rng: Optional[random.Random] = None,
        name: str = "link",
    ) -> None:
        if bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 <= loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        if (jitter_ms > 0 or loss_rate > 0) and rng is None:
            raise ValueError("rng is required when jitter or loss is enabled")
        self._sim = sim
        self._bandwidth_kbps = bandwidth_kbps
        self.propagation_ms = propagation_ms
        self.jitter_ms = jitter_ms
        self.loss_rate = loss_rate
        self.queue_ms = queue_ms
        self._rng = rng or random.Random(0)
        self.name = name
        self._busy_until = 0.0
        self._receiver: Optional[DeliveryCallback] = None
        self.stats = LinkStats()

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #

    @property
    def bandwidth_kbps(self) -> float:
        """The current serialization rate in kbps."""
        return self._bandwidth_kbps

    def set_bandwidth_kbps(self, value: float) -> None:
        """Change the link rate (Fig. 7's abrupt bandwidth steps)."""
        if value <= 0:
            raise ValueError("bandwidth must be positive")
        self._bandwidth_kbps = value

    def connect(self, receiver: DeliveryCallback) -> None:
        """Attach the delivery callback (the far end of the link)."""
        self._receiver = receiver

    # ------------------------------------------------------------------ #
    # Data path
    # ------------------------------------------------------------------ #

    def queue_delay_s(self) -> float:
        """Current backlog expressed in seconds of serialization time."""
        return max(0.0, self._busy_until - self._sim.now)

    def send(self, packet: Packet) -> bool:
        """Enqueue a packet for transmission.

        Returns:
            True if the packet was accepted (it may still be randomly
            lost in flight); False if it was tail-dropped by the queue.
        """
        if self._receiver is None:
            raise RuntimeError(f"{self.name}: send() before connect()")
        self.stats.sent_packets += 1

        if self.queue_delay_s() * 1000.0 > self.queue_ms:
            self.stats.queue_dropped_packets += 1
            return False

        serialization_s = packet.size_bytes * 8.0 / (self._bandwidth_kbps * 1000.0)
        start = max(self._sim.now, self._busy_until)
        self._busy_until = start + serialization_s

        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.stats.lost_packets += 1
            return True  # accepted, then lost in flight

        delay = self._busy_until - self._sim.now + self.propagation_ms / 1000.0
        if self.jitter_ms > 0:
            delay += self._rng.expovariate(1.0 / (self.jitter_ms / 1000.0))
        packet.sent_at = self._sim.now
        self._sim.schedule(delay, lambda: self._deliver(packet))
        return True

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size_bytes
        assert self._receiver is not None
        self._receiver(packet, self._sim.now)


class FaultyLink:
    """A fault-aware decorator around a :class:`Link` (chaos injection).

    Presents the same data-path surface as a link (``send`` / ``connect``
    / ``stats``) while injecting deterministic faults the wrapped link
    does not model on its own:

    * **blackouts** — scheduled windows during which every offered packet
      is dropped before it reaches the link (a loss *burst*, as opposed to
      the link's i.i.d. random loss);
    * **selective drops** — an optional predicate that silently discards
      matching packets (e.g. only one simulcast stream's SSRC), which is
      exactly the condition Sec. 7's client-side downgrade watchdog
      exists to detect;
    * **delay windows** — scheduled windows during which offered packets
      are held and re-offered to the link ``delay_s`` later (a control
      channel stall, as opposed to in-flight jitter).  Held packets are
      released in ``(release_time, offer_sequence)`` order, so two
      deliveries sharing a timestamp always replay in the order they were
      offered — seeded ingress replays depend on this.

    Injected drops are accounted separately (:attr:`injected_drops`) so a
    test can distinguish chaos from organic queue/loss behaviour;
    :attr:`injected_delays` counts packets held by a delay window.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        drop_predicate: Optional[Callable[[Packet], bool]] = None,
    ) -> None:
        self._sim = sim
        self.link = link
        self.drop_predicate = drop_predicate
        self.injected_drops = 0
        self.injected_delays = 0
        self._blackouts: List[Tuple[float, float]] = []
        self._delays: List[Tuple[float, float, float]] = []
        #: held packets, keyed by (release_time, offer_sequence) so that
        #: same-timestamp releases stay in offer order.
        self._held: List[Tuple[float, int, Packet]] = []
        self._hold_seq = 0

    def add_blackout(self, start_s: float, end_s: float) -> None:
        """Drop every packet offered in ``[start_s, end_s)``."""
        if end_s < start_s:
            raise ValueError("blackout must end at or after it starts")
        self._blackouts.append((start_s, end_s))

    def in_blackout(self, now_s: float) -> bool:
        """Whether ``now_s`` falls inside any scheduled blackout window."""
        return any(start <= now_s < end for start, end in self._blackouts)

    def add_delay_window(
        self, start_s: float, end_s: float, delay_s: float
    ) -> None:
        """Hold packets offered in ``[start_s, end_s)``; release after
        ``delay_s``."""
        if end_s < start_s:
            raise ValueError("delay window must end at or after it starts")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self._delays.append((start_s, end_s, delay_s))

    def delay_at(self, now_s: float) -> Optional[float]:
        """The injected hold time at ``now_s``, or None outside windows.

        Overlapping windows compound: a packet caught by several windows
        is held for their summed delay.
        """
        total = 0.0
        hit = False
        for start, end, delay_s in self._delays:
            if start <= now_s < end:
                total += delay_s
                hit = True
        return total if hit else None

    def _release_due(self) -> None:
        """Re-offer every held packet whose release time has arrived.

        The hold buffer is a heap keyed by ``(release_time, sequence)``:
        ties on release time break by the order packets were offered,
        keeping replays byte-deterministic.
        """
        now = self._sim.now
        while self._held and self._held[0][0] <= now + 1e-12:
            _, _, packet = heapq.heappop(self._held)
            self.link.send(packet)

    # -- Link surface ---------------------------------------------------- #

    @property
    def name(self) -> str:
        """The wrapped link's diagnostic label."""
        return self.link.name

    @property
    def stats(self) -> LinkStats:
        """The wrapped link's counters (injected drops never reach it)."""
        return self.link.stats

    def connect(self, receiver: DeliveryCallback) -> None:
        """Attach the delivery callback on the wrapped link."""
        self.link.connect(receiver)

    def send(self, packet: Packet) -> bool:
        """Offer a packet; chaos drops short-circuit the real link.

        Returns:
            False when the packet was dropped by an injected fault or the
            link's queue; True when the link accepted it.
        """
        if self.in_blackout(self._sim.now) or (
            self.drop_predicate is not None and self.drop_predicate(packet)
        ):
            self.injected_drops += 1
            return False
        delay_s = self.delay_at(self._sim.now)
        if delay_s is not None:
            self.injected_delays += 1
            self._hold_seq += 1
            release = self._sim.now + delay_s
            heapq.heappush(self._held, (release, self._hold_seq, packet))
            self._sim.schedule(delay_s, self._release_due)
            return True  # accepted, held in the fault buffer
        return self.link.send(packet)


@dataclass
class DuplexLink:
    """A bidirectional path as a pair of independent directional links.

    ``forward`` carries data from the nominal A side to the B side,
    ``backward`` the reverse (e.g. RTCP feedback).
    """

    forward: Link
    backward: Link


def make_duplex(
    sim: Simulator,
    up_kbps: float,
    down_kbps: float,
    propagation_ms: float = 20.0,
    jitter_ms: float = 0.0,
    loss_rate: float = 0.0,
    queue_ms: float = 300.0,
    rng: Optional[random.Random] = None,
    name: str = "path",
) -> DuplexLink:
    """Convenience constructor for a client's up/down path pair."""
    shared_rng = rng or random.Random(0)
    return DuplexLink(
        forward=Link(
            sim,
            up_kbps,
            propagation_ms,
            jitter_ms,
            loss_rate,
            queue_ms,
            shared_rng,
            name=f"{name}:up",
        ),
        backward=Link(
            sim,
            down_kbps,
            propagation_ms,
            jitter_ms,
            loss_rate,
            queue_ms,
            shared_rng,
            name=f"{name}:down",
        ),
    )
