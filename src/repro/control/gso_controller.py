"""The GSO controller runtime: when and how the solver runs in a meeting.

Sec. 6 / Fig. 12: "A proper control frequency is key ... In our deployment,
GSO-Simulcast orchestrates streams every 1.8 s on average.  The maximum
call interval is 3 s ... The minimum call interval is 1 s."

:class:`GsoControllerRuntime` implements that trigger policy:

* a **time trigger** guarantees a solve at least every ``max_interval_s``;
* an **event trigger** (the conference node's version counter — bumped by
  membership, subscription, or significant bandwidth changes) can pull a
  solve in earlier, but never closer than ``min_interval_s`` after the
  previous one.

Each solve snapshots the global picture, runs the KMR algorithm, and hands
the solution to the :class:`~repro.control.feedback.FeedbackExecutor`.  If
the solver raises, the runtime engages the Sec. 7 "design for failure"
fallback instead of taking the meeting down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..obs import names as obs_names
from ..obs.registry import get_registry
from ..obs.spans import span
from ..core.solution import Solution
from ..core.solver import GsoSolver, SolverConfig
from ..net.simulator import PeriodicTask, Simulator
from .conference_node import ConferenceNode
from .failover import single_stream_fallback
from .feedback import FeedbackExecutor


@dataclass
class ControllerConfig:
    """Trigger policy knobs (the Fig. 12 envelope)."""

    min_interval_s: float = 1.0
    max_interval_s: float = 3.0
    #: Granularity of the solver's knapsack grid.
    solver: SolverConfig = field(default_factory=lambda: SolverConfig(granularity_kbps=10))
    #: Minimum time between two *resolution-set upgrades* of one publisher.
    #: Downgrades always apply immediately; upgrades within the cooldown
    #: are suppressed by re-solving with the publisher's ladder capped at
    #: its current top resolution.  This is the orchestration-level half of
    #: the Sec. 7 quality-oscillation fix: resolution switches restart
    #: encoders (keyframe bursts) and reshuffle subscriptions, so they must
    #: not flap with estimator noise.
    upgrade_cooldown_s: float = 6.0
    #: How long a stream detected as dead (configured but not flowing, a
    #: sibling alive — Sec. 7's client-failure case) stays excluded from
    #: the publisher's feasible set before it may be retried.
    dead_stream_penalty_s: float = 10.0

    def __post_init__(self) -> None:
        if not 0 < self.min_interval_s <= self.max_interval_s:
            raise ValueError("need 0 < min_interval <= max_interval")
        if self.upgrade_cooldown_s < 0:
            raise ValueError("upgrade_cooldown_s must be non-negative")


class GsoControllerRuntime:
    """Periodic + event-triggered orchestration of one meeting."""

    def __init__(
        self,
        sim: Simulator,
        conference: ConferenceNode,
        executor: FeedbackExecutor,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        self._sim = sim
        self._conference = conference
        self._executor = executor
        self.config = config or ControllerConfig()
        self._solver = GsoSolver(self.config.solver)
        self._last_solve_time: Optional[float] = None
        self._last_seen_version = -1
        #: Fig. 12 data: gaps between consecutive control events.
        self.call_intervals: List[float] = []
        self.solutions: List[Solution] = []
        self.fallbacks_engaged = 0
        self.last_solution: Optional[Solution] = None
        self.upgrades_suppressed = 0
        #: Per publisher: top resolution last executed, and when the
        #: resolution set last changed.
        self._last_top_res: dict = {}
        self._last_res_change_s: dict = {}
        #: (publisher, resolution) -> exclusion expiry time (client-failure
        #: downgrades).
        self._dead_caps: dict = {}
        self.downgrades_applied = 0
        self._task = PeriodicTask(
            sim,
            interval=self.config.min_interval_s,
            callback=self._tick,
            start_offset=self.config.min_interval_s,
        )

    def stop(self) -> None:
        """Stop the periodic activity (idempotent)."""
        self._task.stop()

    # ------------------------------------------------------------------ #
    # Trigger policy
    # ------------------------------------------------------------------ #

    def _tick(self) -> None:
        now = self._sim.now
        if self._last_solve_time is None:
            self._solve(now)
            return
        elapsed = now - self._last_solve_time
        if elapsed + 1e-9 < self.config.min_interval_s:
            return
        version = self._conference.version
        time_triggered = elapsed + 1e-9 >= self.config.max_interval_s
        event_triggered = version != self._last_seen_version
        if time_triggered or event_triggered:
            self._solve(now)

    def force_solve(self) -> Optional[Solution]:
        """Immediate out-of-band solve (used by tests and failover)."""
        return self._solve(self._sim.now)

    def _solve(self, now: float) -> Optional[Solution]:
        reg = get_registry()
        if self._last_solve_time is not None:
            interval = now - self._last_solve_time
            self.call_intervals.append(interval)
            if reg.enabled:
                reg.histogram(
                    obs_names.CONTROLLER_CALL_INTERVAL_SECONDS
                ).observe(interval)
        self._last_solve_time = now
        self._last_seen_version = self._conference.version
        tick_start = time.perf_counter()
        with span(obs_names.SPAN_CONTROLLER_TICK):
            problem = self._conference.snapshot(now_s=now)
            problem = self._apply_dead_stream_caps(problem, now)
            incumbent = self._incumbent_assignments()
            try:
                solution = self._solver.solve(problem, incumbent=incumbent)
                solution = self._apply_upgrade_cooldown(
                    problem, solution, now, incumbent
                )
            except Exception:
                # Design for failure (Sec. 7): never take the meeting down —
                # drop every publisher to a single safe stream and continue.
                self.fallbacks_engaged += 1
                if reg.enabled:
                    reg.counter(obs_names.CONTROLLER_FALLBACKS).inc()
                solution = single_stream_fallback(problem)
            self._record_resolution_sets(solution, now)
            self.solutions.append(solution)
            self.last_solution = solution
            self._executor.execute(solution)
        if reg.enabled:
            reg.counter(obs_names.CONTROLLER_SOLVES).inc()
            reg.histogram(obs_names.CONTROLLER_TICK_SECONDS).observe(
                time.perf_counter() - tick_start
            )
        return solution

    # ------------------------------------------------------------------ #
    # Upgrade cooldown (resolution-switch hysteresis)
    # ------------------------------------------------------------------ #

    def _apply_dead_stream_caps(self, problem, now: float):
        """Exclude configured-but-silent streams (Sec. 7 downgrade logic)."""
        detector = getattr(self._executor, "dead_configured_streams", None)
        if detector is not None:
            for pub, res in detector(now):
                key = (pub, res)
                if key not in self._dead_caps or self._dead_caps[key] <= now:
                    self.downgrades_applied += 1
                    get_registry().counter(
                        obs_names.CONTROLLER_DOWNGRADES
                    ).inc()
                self._dead_caps[key] = now + self.config.dead_stream_penalty_s
        active = {
            key for key, expiry in self._dead_caps.items() if expiry > now
        }
        self._dead_caps = {
            key: expiry
            for key, expiry in self._dead_caps.items()
            if expiry > now
        }
        if not active:
            return problem
        from ..core.constraints import Problem

        restricted = {
            pub: [
                s
                for s in streams
                if (pub, s.resolution) not in active
            ]
            for pub, streams in problem.feasible_streams.items()
        }
        return Problem(
            feasible_streams=restricted,
            bandwidth=problem.bandwidth,
            subscriptions=problem.subscriptions,
            aliases=problem.aliases,
            owners=problem.owners,
        )

    def _incumbent_assignments(self):
        """(subscriber, literal publisher) -> currently received resolution."""
        if self.last_solution is None:
            return None
        return {
            (sub, pub): stream.resolution
            for sub, per_pub in self.last_solution.assignments.items()
            for pub, stream in per_pub.items()
        }

    def _apply_upgrade_cooldown(
        self, problem, solution: Solution, now: float, incumbent=None
    ) -> Solution:
        """Suppress too-soon resolution upgrades and re-solve once."""
        cooldown = self.config.upgrade_cooldown_s
        if cooldown <= 0:
            return solution
        caps = {}
        for pub in problem.publishers:
            entries = solution.policies.get(pub, {})
            new_top = max(entries) if entries else None
            old_top = self._last_top_res.get(pub)
            if new_top is None or old_top is None or new_top <= old_top:
                continue
            since = now - self._last_res_change_s.get(pub, float("-inf"))
            if since < cooldown:
                caps[pub] = old_top
        if not caps:
            return solution
        self.upgrades_suppressed += len(caps)
        get_registry().counter(obs_names.CONTROLLER_UPGRADES_SUPPRESSED).inc(
            len(caps)
        )
        restricted = {
            pub: [
                s
                for s in streams
                if pub not in caps or s.resolution <= caps[pub]
            ]
            for pub, streams in problem.feasible_streams.items()
        }
        from ..core.constraints import Problem

        capped_problem = Problem(
            feasible_streams=restricted,
            bandwidth=problem.bandwidth,
            subscriptions=problem.subscriptions,
            aliases=problem.aliases,
            owners=problem.owners,
        )
        return self._solver.solve(capped_problem, incumbent=incumbent)

    def _record_resolution_sets(self, solution: Solution, now: float) -> None:
        for pub, entries in solution.policies.items():
            new_top = max(entries) if entries else None
            if self._last_top_res.get(pub) != new_top:
                self._last_top_res[pub] = new_top
                self._last_res_change_s[pub] = now

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def mean_call_interval_s(self) -> float:
        """Mean gap between control events so far."""
        if not self.call_intervals:
            return 0.0
        return sum(self.call_intervals) / len(self.call_intervals)
