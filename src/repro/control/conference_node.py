"""The conference node: signaling endpoint and global-picture collection.

Sec. 3: the conference node "(1) handles the signaling with clients and
accessing nodes, and (2) captures the global picture of a conference,
which is used as inputs to the GSO controller."  The global picture is
three things (Sec. 4.2):

* **subscription information** — passed by participants over signaling;
* **codec capability information** — from SDP negotiation + simulcastInfo;
* **bandwidth information** — uplinks from client SEMB reports (in-band
  RTCP APP), downlinks read directly off the accessing nodes' sender-side
  estimators.

The node turns all of it into a :class:`~repro.core.constraints.Problem`
snapshot on demand, applying audio-protection headroom (Sec. 7) and the
upgrade-hysteresis damper (Sec. 7) at the measurement boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.constraints import Bandwidth, Problem, Subscription
from ..core.hysteresis import UpgradeDamper
from ..core.priority import PriorityPolicy
from ..core.types import ClientId, Resolution, StreamSpec
from ..core.virtual import screen_id, virtual_id
from ..rtp.semb import SembReport
from ..sdp.sdp import SessionDescription
from ..sdp.simulcast_info import (
    SimulcastInfo,
    build_answer,
    capability_from_info,
)


@dataclass
class ParticipantState:
    """Everything the conference node knows about one participant."""

    client: ClientId
    node_name: str
    feasible_streams: List[StreamSpec]
    ssrc_by_resolution: Dict[Resolution, int]
    uplink_kbps: Optional[int] = None
    downlink_kbps: Optional[int] = None
    last_uplink_report_s: float = -1.0


@dataclass
class ConferenceNodeConfig:
    """Snapshot-construction knobs."""

    #: Bandwidth assumed for directions not yet measured.
    default_bandwidth_kbps: int = 1_000
    #: Audio protection headroom subtracted per direction (Sec. 7), per
    #: audible remote participant (audio mixes are capped at a few
    #: concurrent speakers).
    audio_protection_kbps: int = 50
    #: At most this many concurrent audio streams are protected for.
    audio_mix_cap: int = 5
    #: Bitrate rungs per resolution synthesized from codec capability.
    levels_per_resolution: int = 5
    #: Hysteresis margin for upgrade damping (Sec. 7).
    upgrade_margin: float = 0.15
    #: Relative bandwidth change that counts as a control *event* (smaller
    #: changes are stored for the next periodic solve but do not trigger
    #: one early) — keeps the Fig. 12 call-interval distribution sane.
    significant_change: float = 0.15
    #: Snapshot budgets are floored to this grid so estimator wiggle does
    #: not flip the solver's assignments (and thus encoder configs) every
    #: control period — the stability half of the Sec. 7 oscillation fix.
    bandwidth_quantum_kbps: int = 50
    #: Fraction of the measured bandwidth handed to the solver; the rest
    #: absorbs RTP/IP framing, RTCP, and pacing burstiness.
    headroom_fraction: float = 0.93
    #: Clients report SEMB at least every second; a report older than this
    #: means reports are being *lost* (typically on a congested uplink) and
    #: the stored estimate cannot be trusted.
    uplink_report_stale_s: float = 3.0
    #: Conservative uplink assumed for a publisher with stale reports.
    stale_uplink_fallback_kbps: int = 300


class ConferenceNode:
    """Signaling + global-picture state for one meeting."""

    def __init__(self, config: Optional[ConferenceNodeConfig] = None) -> None:
        self.config = config or ConferenceNodeConfig()
        self._participants: Dict[ClientId, ParticipantState] = {}
        self._subscriptions: List[Subscription] = []
        self._aliases: Dict[ClientId, ClientId] = {}
        self._owners: Dict[ClientId, ClientId] = {}
        self._damper = UpgradeDamper(upgrade_margin=self.config.upgrade_margin)
        self.priority = PriorityPolicy()
        #: Monotone counter bumped on every state change (controller's
        #: event trigger reads it).
        self.version = 0

    # ------------------------------------------------------------------ #
    # Signaling
    # ------------------------------------------------------------------ #

    def join(
        self, info: SimulcastInfo, node_name: str
    ) -> ParticipantState:
        """Admit a participant; negotiates its feasible stream set.

        Args:
            info: the client's simulcastInfo (codec capability message).
            node_name: the accessing node the client is homed on.

        Returns:
            The registered participant state.
        """
        if info.client in self._participants:
            raise ValueError(f"client {info.client!r} already joined")
        feasible = capability_from_info(
            info, levels_per_resolution=self.config.levels_per_resolution
        )
        state = ParticipantState(
            client=info.client,
            node_name=node_name,
            feasible_streams=feasible,
            ssrc_by_resolution=info.ssrc_by_resolution(),
        )
        self._participants[info.client] = state
        self.version += 1
        return state

    def join_with_offer(
        self, offer_text: str, info_json: str, node_name: str
    ) -> Tuple[ParticipantState, str]:
        """Wire-format join: SDP offer text + simulcastInfo JSON in, SDP
        answer text out (the Sec. 4.2 negotiation as it crosses the
        signaling channel).

        Raises:
            ValueError: on malformed SDP/simulcastInfo, or when the offer's
                video SSRCs disagree with the simulcastInfo.
        """
        offer = SessionDescription.parse(offer_text)
        info = SimulcastInfo.from_json(info_json)
        offered_ssrcs = set()
        for section in offer.video_sections():
            for value in section.attribute_values("ssrc"):
                offered_ssrcs.add(int(value.split()[0]))
        declared = {cap.ssrc for cap in info.resolutions}
        if declared - offered_ssrcs:
            raise ValueError(
                "simulcastInfo declares SSRCs absent from the SDP offer: "
                f"{sorted(declared - offered_ssrcs)}"
            )
        state = self.join(info, node_name)
        answer = build_answer(offer, info)
        return state, answer.serialize()

    def join_screen_share(
        self, owner: ClientId, info: SimulcastInfo, node_name: str
    ) -> ParticipantState:
        """Register a screen-share source belonging to ``owner``.

        The simulcastInfo's client id must already be the screen entity id
        (``screen_id(owner)``); the entity shares the owner's uplink.
        """
        if owner not in self._participants:
            raise ValueError(f"unknown owner {owner!r}")
        if info.client != screen_id(owner):
            raise ValueError(
                f"screen share info must use id {screen_id(owner)!r}"
            )
        state = self.join(info, node_name)
        self._owners[info.client] = owner
        self.version += 1
        return state

    def leave(self, client: ClientId) -> None:
        """Remove a participant and all references to it."""
        self._participants.pop(client, None)
        self._subscriptions = [
            e
            for e in self._subscriptions
            if e.subscriber != client
            and self.canonical(e.publisher) != client
        ]
        for alias in [a for a, t in self._aliases.items() if t == client]:
            del self._aliases[alias]
        self._damper.reset(client)
        self.version += 1

    def canonical(self, publisher: ClientId) -> ClientId:
        """Resolve a possibly-virtual publisher id to its target."""
        return self._aliases.get(publisher, publisher)

    def subscribe(
        self,
        subscriber: ClientId,
        publisher: ClientId,
        max_resolution: Resolution = Resolution.P720,
    ) -> None:
        """Record a subscription intent from signaling."""
        if subscriber not in self._participants:
            raise ValueError(f"unknown subscriber {subscriber!r}")
        if self.canonical(publisher) not in self._participants:
            raise ValueError(f"unknown publisher {publisher!r}")
        self._subscriptions.append(
            Subscription(subscriber, publisher, max_resolution)
        )
        self.version += 1

    def subscribe_dual(
        self,
        subscriber: ClientId,
        publisher: ClientId,
        primary_max: Resolution = Resolution.P720,
        secondary_max: Resolution = Resolution.P180,
    ) -> ClientId:
        """Record a speaker-first dual subscription (Sec. 4.4)."""
        vid = virtual_id(publisher, tag=f"@{subscriber}")
        self._aliases.setdefault(vid, publisher)
        self.subscribe(subscriber, publisher, primary_max)
        self.subscribe(subscriber, vid, secondary_max)
        return vid

    def set_speaker(self, client: Optional[ClientId]) -> None:
        """Mark the active speaker; their streams get priority QoE weight.

        Meeting-specific data like "who is the current speaker" is part of
        the global picture the conference node collects (Sec. 3).
        """
        speaker = client or ""
        if speaker and speaker not in self._participants:
            raise ValueError(f"unknown speaker {client!r}")
        if self.priority.speaker != speaker:
            self.priority.speaker = speaker
            self.version += 1

    def set_host(self, client: Optional[ClientId]) -> None:
        """Mark the meeting host (elevated QoE weight)."""
        host = client or ""
        if host and host not in self._participants:
            raise ValueError(f"unknown host {client!r}")
        if self.priority.host != host:
            self.priority.host = host
            self.version += 1

    def unsubscribe(self, subscriber: ClientId, publisher: ClientId) -> None:
        """Remove one subscription edge (no-op if absent)."""
        before = len(self._subscriptions)
        self._subscriptions = [
            e
            for e in self._subscriptions
            if not (e.subscriber == subscriber and e.publisher == publisher)
        ]
        if len(self._subscriptions) != before:
            self.version += 1

    # ------------------------------------------------------------------ #
    # Bandwidth collection
    # ------------------------------------------------------------------ #

    def _is_significant(self, old: Optional[int], new: int) -> bool:
        if old is None:
            return True
        baseline = max(old, 1)
        return abs(new - old) / baseline >= self.config.significant_change

    def on_semb_report(
        self, client: ClientId, report: SembReport, now_s: float
    ) -> None:
        """Ingest an uplink bandwidth report (client-side, via RTCP APP).

        The value is always stored (the next periodic solve sees it), but
        the controller's event trigger only fires on significant changes.
        """
        state = self._participants.get(client)
        if state is None:
            return
        damped = self._damper.filter(client, "uplink", report.bitrate_kbps)
        if self._is_significant(state.uplink_kbps, damped):
            self.version += 1
        state.uplink_kbps = damped
        state.last_uplink_report_s = now_s

    def update_downlink(self, client: ClientId, estimate_kbps: float) -> None:
        """Ingest a downlink estimate read off an accessing node."""
        state = self._participants.get(client)
        if state is None:
            return
        damped = self._damper.filter(client, "downlink", int(estimate_kbps))
        if self._is_significant(state.downlink_kbps, damped):
            self.version += 1
        state.downlink_kbps = damped

    # ------------------------------------------------------------------ #
    # Snapshot for the controller
    # ------------------------------------------------------------------ #

    def participants(self) -> List[ClientId]:
        """All joined participant ids, sorted."""
        return sorted(self._participants)

    def participant(self, client: ClientId) -> ParticipantState:
        """State of one participant (KeyError if unknown)."""
        return self._participants[client]

    def ssrc_for(self, publisher: ClientId, resolution: Resolution) -> Optional[int]:
        """The negotiated SSRC of (publisher, resolution), or None."""
        state = self._participants.get(publisher)
        if state is None:
            return None
        return state.ssrc_by_resolution.get(resolution)

    def _budget(self, measured_kbps: int) -> int:
        """Headroom + quantization applied to one measured bandwidth."""
        cfg = self.config
        usable = measured_kbps * cfg.headroom_fraction
        quantum = max(1, cfg.bandwidth_quantum_kbps)
        return int(usable // quantum) * quantum

    def snapshot(self, now_s: Optional[float] = None) -> Problem:
        """Build the orchestration problem from the current global picture.

        Args:
            now_s: current time; when provided, publishers whose SEMB
                reports have gone stale (lost on a congested uplink) fall
                back to a conservative uplink budget — the server half of
                the Sec. 7 design-for-failure story.
        """
        cfg = self.config
        feasible: Dict[ClientId, List[StreamSpec]] = {}
        bandwidth: Dict[ClientId, Bandwidth] = {}
        for client, state in self._participants.items():
            if client in self._owners:
                # Screen entities publish but have no own network budget.
                feasible[client] = state.feasible_streams
                continue
            feasible[client] = state.feasible_streams
            uplink = (
                state.uplink_kbps
                if state.uplink_kbps is not None
                else cfg.default_bandwidth_kbps
            )
            if (
                now_s is not None
                and state.uplink_kbps is not None
                and state.last_uplink_report_s >= 0
                and now_s - state.last_uplink_report_s > cfg.uplink_report_stale_s
            ):
                uplink = min(uplink, cfg.stale_uplink_fallback_kbps)
            downlink = (
                state.downlink_kbps
                if state.downlink_kbps is not None
                else cfg.default_bandwidth_kbps
            )
            audible = min(
                max(0, len(self._participants) - len(self._owners) - 1),
                cfg.audio_mix_cap,
            )
            bandwidth[client] = Bandwidth(
                uplink_kbps=self._budget(uplink),
                downlink_kbps=self._budget(downlink),
                audio_protection_kbps=cfg.audio_protection_kbps
                * max(1, audible),
            )
        weighted = self.priority.apply(feasible)
        return Problem(
            feasible_streams=weighted,
            bandwidth=bandwidth,
            subscriptions=list(self._subscriptions),
            aliases=dict(self._aliases),
            owners=dict(self._owners),
        )
