"""Feedback execution: turning solutions into TMMBR + forwarding updates.

Once the controller has a new solution, two things must change in the
running conference (Sec. 4.3):

* every publisher whose stream configuration changed receives a GSO TMMBR
  (one FCI entry per resolution SSRC; zero mantissa disables a stream),
  delivered reliably (retransmit until the TMMBN arrives);
* every accessing node's forwarding tables are updated so each subscriber
  receives exactly the assigned stream SSRC from each publisher entity.

:class:`FeedbackExecutor` performs both, diffing against the previously
executed solution so unchanged publishers/subscribers see no churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..core.solution import Solution
from ..core.types import ClientId, Resolution
from ..obs import names as obs_names
from ..obs.registry import get_registry
from ..media.sfu import AccessingNode
from ..net.simulator import Simulator
from ..rtp.tmmbr import GsoTmmbn, ReliableTmmbrSender, TmmbrEntry
from .conference_node import ConferenceNode

#: A publisher's wire configuration: resolution -> kbps (absent = stopped).
WireConfig = Dict[Resolution, int]


@dataclass
class FeedbackStats:
    """Counters for tests and the orchestration benchmarks."""

    tmmbr_sent: int = 0
    forwarding_updates: int = 0
    executions: int = 0


class FeedbackExecutor:
    """Applies solutions to the media plane and the user plane."""

    def __init__(
        self,
        sim: Simulator,
        conference: ConferenceNode,
        nodes: Mapping[str, AccessingNode],
        controller_ssrc: int = 0xC0FFEE,
        retransmit_interval_s: float = 0.25,
        max_attempts: int = 8,
    ) -> None:
        self._sim = sim
        self._conference = conference
        self._nodes = dict(nodes)
        self._controller_ssrc = controller_ssrc
        self._reliable = ReliableTmmbrSender(
            transmit=self._transmit_tmmbr,
            schedule=lambda delay, cb: sim.schedule(delay, cb),
            retransmit_interval_s=retransmit_interval_s,
            max_attempts=max_attempts,
        )
        self._last_config: Dict[ClientId, WireConfig] = {}
        self._config_installed_s: Dict[ClientId, float] = {}
        #: (publisher, resolution) -> since when that stream is expected.
        self._expected_since: Dict[Tuple[ClientId, Resolution], float] = {}
        self._consumed_failures = 0
        self._last_forwarding: Dict[Tuple[ClientId, ClientId], Optional[int]] = {}
        self.stats = FeedbackStats()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(self, solution: Solution) -> None:
        """Push a solution out: TMMBR to changed publishers, forwarding
        updates to accessing nodes."""
        self.stats.executions += 1
        # Targets whose last TMMBR was never acknowledged (gave up after
        # max retransmits, e.g. on a badly lossy downlink) are re-sent:
        # forget their recorded config so the diff fires again.
        failures = self._reliable.failed_targets
        while self._consumed_failures < len(failures):
            self._last_config.pop(failures[self._consumed_failures], None)
            self._consumed_failures += 1
        tmmbr_before = self.stats.tmmbr_sent
        updates_before = self.stats.forwarding_updates
        self._execute_publisher_configs(solution)
        self._execute_forwarding(solution)
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.FEEDBACK_EXECUTIONS).inc()
            reg.counter(obs_names.FEEDBACK_TMMBR_SENT).inc(
                self.stats.tmmbr_sent - tmmbr_before
            )
            reg.counter(obs_names.FEEDBACK_FORWARDING_UPDATES).inc(
                self.stats.forwarding_updates - updates_before
            )
            reg.histogram(obs_names.FEEDBACK_FANOUT).observe(
                self.stats.tmmbr_sent - tmmbr_before
            )

    def _desired_configs(self, solution: Solution) -> Dict[ClientId, WireConfig]:
        """Per publisher entity, the resolution->kbps config to install.

        Entities that published before but are absent from the solution
        must be explicitly stopped (the Fig. 3a fix: "the controller will
        inform the publisher to stop pushing that stream").
        """
        desired: Dict[ClientId, WireConfig] = {
            pub: {res: e.bitrate_kbps for res, e in entries.items()}
            for pub, entries in solution.policies.items()
        }
        for pub in self._last_config:
            desired.setdefault(pub, {})
        return desired

    def _execute_publisher_configs(self, solution: Solution) -> None:
        for pub, config in sorted(self._desired_configs(solution).items()):
            if self._last_config.get(pub) == config:
                continue
            try:
                entries = self._build_entries(pub, config)
            except KeyError:
                # The publisher left the conference: drop its state.
                self._last_config.pop(pub, None)
                continue
            if not entries:
                self._last_config[pub] = config
                continue
            self._reliable.send(
                target=pub,
                sender_ssrc=self._controller_ssrc,
                entries=entries,
            )
            self.stats.tmmbr_sent += 1
            self._last_config[pub] = config
            self._config_installed_s[pub] = self._sim.now
            for res, kbps in config.items():
                if kbps > 0:
                    self._expected_since.setdefault((pub, res), self._sim.now)
            for key in list(self._expected_since):
                if key[0] == pub and config.get(key[1], 0) <= 0:
                    del self._expected_since[key]

    def _build_entries(
        self, publisher: ClientId, config: WireConfig
    ) -> List[TmmbrEntry]:
        """One TMMBR entry per negotiated resolution: configured rungs get
        their bitrate, everything else an explicit zero (stop)."""
        state = self._conference.participant(publisher)
        entries: List[TmmbrEntry] = []
        for resolution, ssrc in sorted(state.ssrc_by_resolution.items()):
            kbps = config.get(resolution, 0)
            entries.append(
                TmmbrEntry(ssrc=ssrc, bitrate_bps=int(kbps) * 1000)
            )
        return entries

    def _execute_forwarding(self, solution: Solution) -> None:
        desired: Dict[Tuple[ClientId, ClientId], Optional[int]] = {}
        for sub, per_pub in solution.assignments.items():
            for literal_pub, stream in per_pub.items():
                canonical = self._conference.canonical(literal_pub)
                ssrc = self._conference.ssrc_for(canonical, stream.resolution)
                desired[(sub, literal_pub)] = ssrc
        # Clear forwarding for pairs that lost their stream.
        for key in self._last_forwarding:
            desired.setdefault(key, None)
        for (sub, literal_pub), ssrc in sorted(
            desired.items(), key=lambda item: item[0]
        ):
            if self._last_forwarding.get(sub_pub_key := (sub, literal_pub)) == ssrc:
                continue
            node = self._node_of(sub)
            if node is not None and sub in node.attached_clients:
                node.set_video_forwarding(sub, literal_pub, ssrc)
                self.stats.forwarding_updates += 1
            self._last_forwarding[sub_pub_key] = ssrc

    # ------------------------------------------------------------------ #
    # Stream-liveness watchdog (Sec. 7 client-failure downgrade)
    # ------------------------------------------------------------------ #

    def dead_configured_streams(
        self, now: float, grace_s: float = 0.8, stale_s: float = 0.8
    ) -> List[Tuple[ClientId, Resolution]]:
        """Configured streams that are NOT flowing while a sibling is.

        The paper's client-failure scenario: "while a server instructs a
        client to send multiple streams, only a low bitrate stream is
        received".  A stream counts as dead only if its configuration has
        been installed for at least ``grace_s`` (time to start encoding)
        and the client is otherwise demonstrably *up* — another of its
        streams, its audio, or its RTCP is still arriving.  A client from
        which nothing arrives at all is a network outage, where a
        downgrade would not help.
        """
        dead: List[Tuple[ClientId, Resolution]] = []
        for (pub, res), since in self._expected_since.items():
            if now - since < grace_s:
                continue
            try:
                state = self._conference.participant(pub)
            except KeyError:
                continue
            node = self._nodes.get(state.node_name)
            if node is None:
                continue
            if node.stream_alive(
                state.ssrc_by_resolution.get(res), now, within_s=stale_s
            ):
                continue
            owner = pub.split(":", 1)[0]  # screen entities share the client
            sibling_alive = any(
                node.stream_alive(ssrc, now, within_s=stale_s)
                for other, ssrc in state.ssrc_by_resolution.items()
                if other != res
            )
            if sibling_alive or node.client_alive(owner, now, within_s=stale_s):
                dead.append((pub, res))
        return dead

    # ------------------------------------------------------------------ #
    # Transport plumbing
    # ------------------------------------------------------------------ #

    def _node_of(self, client: ClientId) -> Optional[AccessingNode]:
        try:
            state = self._conference.participant(client)
        except KeyError:
            return None
        return self._nodes.get(state.node_name)

    def _transmit_tmmbr(self, target: ClientId, request) -> None:
        node = self._node_of(target)
        if node is None or target not in node.attached_clients:
            return  # client left (or never attached): nothing to configure
        node.send_rtcp_to_client(target, request.to_app_packet().serialize())

    def on_tmmbn(self, client: ClientId, notification: GsoTmmbn) -> bool:
        """Feed an incoming TMMBN (from the accessing node's RTCP hook)."""
        return self._reliable.on_tmmbn(client, notification)

    @property
    def pending_acks(self) -> int:
        """Outstanding unacknowledged TMMBR count."""
        return self._reliable.pending_count

    @property
    def failed_targets(self) -> List[ClientId]:
        """Clients whose TMMBR delivery gave up (retried next solve)."""
        return self._reliable.failed_targets
