"""Control plane: conference node, GSO controller runtime, feedback, failover."""

from .conference_node import (
    ConferenceNode,
    ConferenceNodeConfig,
    ParticipantState,
)
from .failover import (
    StreamLiveness,
    SubscriptionWatchdog,
    single_stream_fallback,
)
from .feedback import FeedbackExecutor, FeedbackStats
from .gso_controller import ControllerConfig, GsoControllerRuntime

__all__ = [
    "ConferenceNode",
    "ConferenceNodeConfig",
    "ControllerConfig",
    "FeedbackExecutor",
    "FeedbackStats",
    "GsoControllerRuntime",
    "ParticipantState",
    "StreamLiveness",
    "SubscriptionWatchdog",
    "single_stream_fallback",
]
