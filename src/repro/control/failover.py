"""Design for failure (Sec. 7).

Two mechanisms keep a meeting alive when things break:

* **server-side fallback** — "when an exception is raised, GSO-Simulcast
  would ask clients to fall back to single stream configuration so that
  the service could continue, however, at the cost of reduced QoE."
  :func:`single_stream_fallback` builds that degenerate solution directly
  from the problem, without running the solver.

* **client-side downgrade** — "while a server instructs a client to send
  multiple streams, however, only a low bitrate stream is received.  In
  such a scenario, GSO-Simulcast implements a downgrade logic that
  automatically switches the high-bitrate subscription to a low-bitrate
  subscription."  :class:`SubscriptionWatchdog` tracks per-stream packet
  liveness at a subscriber and reports which subscriptions should be
  switched down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..core.constraints import Problem
from ..core.solution import PolicyEntry, Solution
from ..core.types import ClientId, Resolution, StreamSpec


def single_stream_fallback(problem: Problem) -> Solution:
    """The degenerate safe configuration: one small stream per publisher.

    Every publisher keeps only its *lowest* bitrate stream; every
    subscriber of that publisher receives it (capped by the subscription
    resolution; edges whose cap excludes the stream get nothing).  The
    result always satisfies the codec constraints and, because the chosen
    streams are minimal, has the best possible chance of satisfying the
    network constraints; downlink-overflowing assignments are dropped
    smallest-publisher-last to restore feasibility.
    """
    policies: Dict[ClientId, Dict[Resolution, PolicyEntry]] = {}
    assignments: Dict[ClientId, Dict[ClientId, StreamSpec]] = {}
    audiences: Dict[ClientId, Set[ClientId]] = {}
    chosen: Dict[ClientId, StreamSpec] = {}
    for pub in problem.publishers:
        streams = problem.feasible_streams[pub]
        if not streams:
            continue
        # Tie-break equal bitrates by resolution so the chosen fallback
        # stream is invariant to the ordering of the feasible set.
        smallest = min(streams, key=lambda s: (s.bitrate_kbps, s.resolution))
        if smallest.bitrate_kbps > problem.uplink_budget(problem.owner(pub)):
            continue
        chosen[pub] = smallest
    for edge in problem.subscriptions:
        pub = problem.canonical(edge.publisher)
        stream = chosen.get(pub)
        if stream is None or stream.resolution > edge.max_resolution:
            continue
        current = assignments.setdefault(edge.subscriber, {})
        # Respect the downlink budget: add publishers until it is full.
        used = sum(s.bitrate_kbps for s in current.values())
        if used + stream.bitrate_kbps > problem.downlink_budget(edge.subscriber):
            continue
        current[edge.publisher] = stream
        audiences.setdefault(pub, set()).add(edge.subscriber)
    for pub, audience in audiences.items():
        stream = chosen[pub]
        policies[pub] = {
            stream.resolution: PolicyEntry(
                stream=stream, audience=frozenset(audience)
            )
        }
    # Uplink check per owner: drop publishers whose owner would overflow.
    by_owner: Dict[ClientId, List[ClientId]] = {}
    for pub in policies:
        by_owner.setdefault(problem.owner(pub), []).append(pub)
    for owner, pubs in by_owner.items():
        total = sum(
            e.bitrate_kbps
            for pub in pubs
            for e in policies[pub].values()
        )
        budget = problem.uplink_budget(owner)
        for pub in sorted(
            pubs,
            key=lambda p: -next(iter(policies[p].values())).bitrate_kbps,
        ):
            if total <= budget:
                break
            entry = next(iter(policies[pub].values()))
            total -= entry.bitrate_kbps
            for member in entry.audience:
                for literal in [
                    lp
                    for lp, s in assignments.get(member, {}).items()
                    if problem.canonical(lp) == pub
                ]:
                    del assignments[member][literal]
            del policies[pub]
    return Solution(policies=policies, assignments=assignments, iterations=0)


@dataclass
class StreamLiveness:
    """Packet-liveness record of one received stream."""

    last_packet_s: float = -1.0
    packets: int = 0


class SubscriptionWatchdog:
    """Client-side downgrade detector.

    Args:
        stale_after_s: a subscribed stream with no packets for this long,
            while another (lower) stream of the same publisher IS flowing,
            triggers a downgrade recommendation.
    """

    def __init__(self, stale_after_s: float = 2.0) -> None:
        if stale_after_s <= 0:
            raise ValueError("stale_after_s must be positive")
        self.stale_after_s = stale_after_s
        #: (publisher, resolution) -> liveness.
        self._streams: Dict[Tuple[ClientId, Resolution], StreamLiveness] = {}

    def on_packet(
        self, publisher: ClientId, resolution: Resolution, now_s: float
    ) -> None:
        """Record one arriving packet."""
        record = self._streams.setdefault(
            (publisher, resolution), StreamLiveness()
        )
        record.last_packet_s = now_s
        record.packets += 1

    def stale_subscriptions(
        self, expected: Mapping[Tuple[ClientId, Resolution], bool], now_s: float
    ) -> List[Tuple[ClientId, Resolution]]:
        """Which expected (publisher, resolution) streams have gone stale.

        Args:
            expected: the streams this subscriber should currently receive.
            now_s: current time.

        Returns:
            Stale keys: streams expected but silent for ``stale_after_s``
            while at least one other stream of the same publisher flows.
        """
        stale: List[Tuple[ClientId, Resolution]] = []
        for key in expected:
            publisher, resolution = key
            record = self._streams.get(key)
            silent = (
                record is None
                or now_s - record.last_packet_s > self.stale_after_s
            )
            if not silent:
                continue
            sibling_alive = any(
                other_pub == publisher
                and other_res != resolution
                and now_s - other.last_packet_s <= self.stale_after_s
                for (other_pub, other_res), other in self._streams.items()
            )
            if sibling_alive:
                stale.append(key)
        return stale

    def downgrade_target(
        self, publisher: ClientId, below: Resolution, now_s: float
    ) -> Optional[Resolution]:
        """The best live lower-resolution stream of a publisher, if any."""
        candidates = [
            res
            for (pub, res), record in self._streams.items()
            if pub == publisher
            and res < below
            and now_s - record.last_packet_s <= self.stale_after_s
        ]
        return max(candidates) if candidates else None
