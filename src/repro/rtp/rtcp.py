"""RTCP packet wire formats (RFC 3550 §6, RFC 4585 framing).

The reproduction uses three RTCP packet types:

* **Receiver Report (RR, PT=201)** — loss fraction and jitter feedback from
  receivers (drives the loss-based part of bandwidth estimation);
* **APP (PT=204)** — the paper's extension vehicle: both the SEMB uplink
  bandwidth report (Sec. 4.2) and the GSO TMMBR stream-configuration
  feedback (Sec. 4.3) travel as application-defined packets;
* **Transport-layer FB (RTPFB, PT=205)** — transport-wide congestion
  control feedback (Sec. 7 mentions TWCC), serialized in a simplified but
  byte-real layout.

All packets share the RTCP common header::

       0 1 2 3 4 5 6 7 8 9 ...
      +-+-+-+-+-+-+-+-+-+-+-+-+
      |V=2|P| RC/FMT  |   PT  |      length (32-bit words - 1)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

RTCP_VERSION = 2

#: RTCP packet types.
PT_SR = 200
PT_RR = 201
PT_SDES = 202
PT_BYE = 203
PT_APP = 204
PT_RTPFB = 205
PT_PSFB = 206


def _common_header(count_or_fmt: int, packet_type: int, body_len: int) -> bytes:
    """The 4-byte RTCP common header for a body of ``body_len`` bytes."""
    if body_len % 4 != 0:
        raise ValueError(f"RTCP body must be 32-bit aligned, got {body_len}")
    length_words = body_len // 4
    byte0 = (RTCP_VERSION << 6) | (count_or_fmt & 0x1F)
    return struct.pack("!BBH", byte0, packet_type, length_words)


def parse_common_header(data: bytes) -> Tuple[int, int, int]:
    """Parse an RTCP common header.

    Returns:
        (count_or_fmt, packet_type, total_packet_len_bytes).
    """
    if len(data) < 4:
        raise ValueError("RTCP packet too short")
    byte0, packet_type, length_words = struct.unpack("!BBH", data[:4])
    if byte0 >> 6 != RTCP_VERSION:
        raise ValueError(f"unsupported RTCP version {byte0 >> 6}")
    return byte0 & 0x1F, packet_type, 4 * (length_words + 1)


@dataclass(frozen=True)
class ReportBlock:
    """One RR report block (RFC 3550 §6.4.1)."""

    ssrc: int
    fraction_lost: int  # 0..255, fixed-point fraction of packets lost
    cumulative_lost: int
    highest_seq: int
    jitter: int

    def serialize(self) -> bytes:
        """Encode to wire bytes."""
        lost24 = self.cumulative_lost & 0xFFFFFF
        return struct.pack(
            "!IIIII",
            self.ssrc,
            ((self.fraction_lost & 0xFF) << 24) | lost24,
            self.highest_seq,
            self.jitter,
            0,  # LSR/DLSR unused by the simulation
        ) [:20]

    @classmethod
    def parse(cls, data: bytes) -> "ReportBlock":
        """Decode from wire bytes (raises ValueError on malformed input)."""
        if len(data) < 24:
            raise ValueError("report block too short")
        ssrc, frac_lost_word, highest_seq, jitter, _lsr, _dlsr = struct.unpack(
            "!IIIIII", data[:24]
        )
        return cls(
            ssrc=ssrc,
            fraction_lost=frac_lost_word >> 24,
            cumulative_lost=frac_lost_word & 0xFFFFFF,
            highest_seq=highest_seq,
            jitter=jitter,
        )


@dataclass(frozen=True)
class ReceiverReport:
    """An RR packet with zero or more report blocks."""

    sender_ssrc: int
    blocks: Tuple[ReportBlock, ...] = ()

    def serialize(self) -> bytes:
        """Encode to wire bytes."""
        body = struct.pack("!I", self.sender_ssrc)
        for block in self.blocks:
            # Re-serialize to the full 24-byte RFC layout.
            lost24 = block.cumulative_lost & 0xFFFFFF
            body += struct.pack(
                "!IIIIII",
                block.ssrc,
                ((block.fraction_lost & 0xFF) << 24) | lost24,
                block.highest_seq,
                block.jitter,
                0,
                0,
            )
        return _common_header(len(self.blocks), PT_RR, len(body)) + body

    @classmethod
    def parse(cls, data: bytes) -> "ReceiverReport":
        """Decode from wire bytes (raises ValueError on malformed input)."""
        count, packet_type, total = parse_common_header(data)
        if packet_type != PT_RR:
            raise ValueError(f"not an RR packet (PT={packet_type})")
        if len(data) < total:
            raise ValueError("RR packet truncated")
        sender_ssrc = struct.unpack("!I", data[4:8])[0]
        blocks: List[ReportBlock] = []
        offset = 8
        for _ in range(count):
            blocks.append(ReportBlock.parse(data[offset : offset + 24]))
            offset += 24
        return cls(sender_ssrc=sender_ssrc, blocks=tuple(blocks))


@dataclass(frozen=True)
class AppPacket:
    """An application-defined RTCP packet (PT=204, RFC 3550 §6.7).

    The paper uses APP packets for both SEMB reports and GSO stream
    feedback; the 4-character ``name`` disambiguates them, and ``subtype``
    is available for versioning.
    """

    subtype: int
    ssrc: int
    name: bytes  # exactly 4 ASCII bytes
    data: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.subtype < 32:
            raise ValueError(f"APP subtype out of range: {self.subtype}")
        if len(self.name) != 4:
            raise ValueError(f"APP name must be 4 bytes, got {self.name!r}")
        if len(self.data) % 4 != 0:
            raise ValueError("APP data must be 32-bit aligned")

    def serialize(self) -> bytes:
        """Encode to wire bytes."""
        body = struct.pack("!I", self.ssrc) + self.name + self.data
        return _common_header(self.subtype, PT_APP, len(body)) + body

    @classmethod
    def parse(cls, data: bytes) -> "AppPacket":
        """Decode from wire bytes (raises ValueError on malformed input)."""
        subtype, packet_type, total = parse_common_header(data)
        if packet_type != PT_APP:
            raise ValueError(f"not an APP packet (PT={packet_type})")
        if len(data) < total or total < 12:
            raise ValueError("APP packet truncated")
        ssrc = struct.unpack("!I", data[4:8])[0]
        return cls(
            subtype=subtype,
            ssrc=ssrc,
            name=data[8:12],
            data=data[12:total],
        )


@dataclass(frozen=True)
class TwccFeedback:
    """Simplified transport-wide congestion control feedback (PT=205, FMT=15).

    The real TWCC wire format (packet status chunks, receive deltas) is
    substituted by an explicit (seq, arrival_time_us) list — byte-real and
    parseable, carrying the same information content the GCC estimator
    needs, without the chunk-encoding bookkeeping that is irrelevant to the
    paper's contribution.
    """

    sender_ssrc: int
    base_seq: int
    arrivals: Tuple[Tuple[int, int], ...]  # (seq, arrival_time_us); -1 = lost

    FMT = 15

    def serialize(self) -> bytes:
        """Encode to wire bytes."""
        body = struct.pack(
            "!IHH", self.sender_ssrc, self.base_seq, len(self.arrivals)
        )
        for seq, arrival_us in self.arrivals:
            body += struct.pack("!Hhi", seq, 0, arrival_us)
        return _common_header(self.FMT, PT_RTPFB, len(body)) + body

    @classmethod
    def parse(cls, data: bytes) -> "TwccFeedback":
        """Decode from wire bytes (raises ValueError on malformed input)."""
        fmt, packet_type, total = parse_common_header(data)
        if packet_type != PT_RTPFB or fmt != cls.FMT:
            raise ValueError("not a TWCC feedback packet")
        sender_ssrc, base_seq, n = struct.unpack("!IHH", data[4:12])
        arrivals: List[Tuple[int, int]] = []
        offset = 12
        for _ in range(n):
            seq, _pad, arrival_us = struct.unpack(
                "!Hhi", data[offset : offset + 8]
            )
            arrivals.append((seq, arrival_us))
            offset += 8
        return cls(sender_ssrc=sender_ssrc, base_seq=base_seq, arrivals=tuple(arrivals))


def parse_compound(data: bytes) -> List[bytes]:
    """Split a compound RTCP datagram into individual packet byte strings."""
    packets: List[bytes] = []
    offset = 0
    while offset < len(data):
        _, _, total = parse_common_header(data[offset:])
        if offset + total > len(data):
            raise ValueError("compound RTCP truncated")
        packets.append(data[offset : offset + total])
        offset += total
    return packets
