"""REMB — Receiver Estimated Maximum Bitrate (draft-alvestrand-rmcat-remb).

The paper's SEMB message is defined "following the definition of receiver
estimated maximum bitrate (REMB)" but travels sender-to-server.  The
original REMB is the *receiver-driven* signal classic simulcast systems
use: the receiver estimates its own downlink from incoming traffic and
tells the sender.  The competitor-1 archetype (receiver-driven switching)
uses this real wire format.

Layout (PSFB, PT=206, FMT=15)::

       0               1               2               3
      | common header (V/P/FMT=15, PT=206, length)                   |
      | SSRC of packet sender                                        |
      | SSRC of media source (always 0 for REMB)                     |
      | 'R' 'E' 'M' 'B'                                              |
      | Num SSRC      | BR Exp    |       BR Mantissa                |
      | SSRC feedback applies to (repeated Num SSRC times)           |
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from .rtcp import PT_PSFB, _common_header, parse_common_header
from .semb import decode_exp_mantissa, encode_exp_mantissa

#: PSFB format number used by REMB ("application layer feedback").
REMB_FMT = 15

_REMB_ID = b"REMB"
_EXP_BITS = 6
_MANTISSA_BITS = 18


@dataclass(frozen=True)
class RembPacket:
    """One REMB message: the receiver can accept ``bitrate_bps`` in total."""

    sender_ssrc: int
    bitrate_bps: int
    media_ssrcs: Tuple[int, ...] = ()

    def serialize(self) -> bytes:
        """Encode to wire bytes."""
        exp, mantissa = encode_exp_mantissa(
            self.bitrate_bps, mantissa_bits=_MANTISSA_BITS
        )
        body = struct.pack("!II", self.sender_ssrc, 0)
        body += _REMB_ID
        body += struct.pack(
            "!I",
            (len(self.media_ssrcs) << 24) | (exp << _MANTISSA_BITS) | mantissa,
        )
        for ssrc in self.media_ssrcs:
            body += struct.pack("!I", ssrc)
        return _common_header(REMB_FMT, PT_PSFB, len(body)) + body

    @classmethod
    def parse(cls, data: bytes) -> "RembPacket":
        """Decode from wire bytes (raises ValueError on malformed input)."""
        fmt, packet_type, total = parse_common_header(data)
        if packet_type != PT_PSFB or fmt != REMB_FMT:
            raise ValueError("not a REMB packet")
        if total < 20 or data[12:16] != _REMB_ID:
            raise ValueError("missing REMB identifier")
        sender_ssrc = struct.unpack("!I", data[4:8])[0]
        word = struct.unpack("!I", data[16:20])[0]
        num = word >> 24
        exp = (word >> _MANTISSA_BITS) & ((1 << _EXP_BITS) - 1)
        mantissa = word & ((1 << _MANTISSA_BITS) - 1)
        if total < 20 + 4 * num:
            raise ValueError("REMB SSRC list truncated")
        ssrcs = struct.unpack(f"!{num}I", data[20 : 20 + 4 * num])
        return cls(
            sender_ssrc=sender_ssrc,
            bitrate_bps=decode_exp_mantissa(exp, mantissa),
            media_ssrcs=tuple(ssrcs),
        )

    @property
    def bitrate_kbps(self) -> int:
        """The configured bitrate in kbps."""
        return self.bitrate_bps // 1000


def is_remb(data: bytes) -> bool:
    """Cheap test whether an RTCP packet is a REMB."""
    try:
        fmt, packet_type, total = parse_common_header(data)
    except ValueError:
        return False
    return (
        packet_type == PT_PSFB
        and fmt == REMB_FMT
        and total >= 20
        and data[12:16] == _REMB_ID
    )
