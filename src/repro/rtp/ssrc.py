"""SSRC allocation: one synchronization source per stream resolution.

Sec. 4.2: "we assign a different synchronization source (SSRC) for each
stream resolution to facilitate the feedback control" — the SSRC field of a
TMMBR entry then addresses exactly one simulcast sub-stream.

The allocator hands out deterministic, collision-free 32-bit SSRCs and
keeps the bidirectional mapping between SSRCs and (client, kind) keys,
where ``kind`` is a resolution, "audio", or "rtcp".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..core.types import ClientId, Resolution

#: What one SSRC is bound to: a video resolution, audio, or the RTCP channel.
StreamKind = Union[Resolution, str]


@dataclass(frozen=True)
class SsrcKey:
    """Identity of one RTP stream: who sends it and what it carries."""

    client: ClientId
    kind: StreamKind


class SsrcAllocator:
    """Deterministic SSRC assignment.

    SSRCs are allocated sequentially from a base offset; determinism keeps
    simulation traces reproducible and makes debugging readable (SSRCs
    allocate in join order).
    """

    _BASE = 0x10_000

    def __init__(self) -> None:
        self._next = self._BASE
        self._by_key: Dict[SsrcKey, int] = {}
        self._by_ssrc: Dict[int, SsrcKey] = {}

    def allocate(self, client: ClientId, kind: StreamKind) -> int:
        """Allocate (or return the existing) SSRC for a stream."""
        key = SsrcKey(client, kind)
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        ssrc = self._next
        self._next += 1
        self._by_key[key] = ssrc
        self._by_ssrc[ssrc] = key
        return ssrc

    def lookup(self, ssrc: int) -> Optional[SsrcKey]:
        """Reverse-map an SSRC to its (client, kind) identity."""
        return self._by_ssrc.get(ssrc)

    def ssrc_of(self, client: ClientId, kind: StreamKind) -> Optional[int]:
        """Forward lookup without allocating."""
        return self._by_key.get(SsrcKey(client, kind))

    def streams_of(self, client: ClientId) -> Dict[StreamKind, int]:
        """All SSRCs currently allocated to one client."""
        return {
            key.kind: ssrc
            for key, ssrc in self._by_key.items()
            if key.client == client
        }

    def release_client(self, client: ClientId) -> None:
        """Free every SSRC of a departing client."""
        for key in [k for k in self._by_key if k.client == client]:
            ssrc = self._by_key.pop(key)
            del self._by_ssrc[ssrc]
