"""GSO stream-configuration feedback: TMMBR/TMMBN in APP packets (Sec. 4.3).

The controller configures each publisher's streams by sending a Temporary
Maximum Media Stream Bit Rate Request (TMMBR, RFC 5104 §4.2.1) per stream
SSRC.  To avoid ambiguity with congestion-control TMMBR (RFC 8888 usage),
the paper wraps GSO's TMMBR inside an application-defined RTCP packet
(PT=204).  Disabling a stream sets the MxTBR mantissa to zero.

Reliability: RTCP is unreliable, so the receiver of a TMMBR answers with a
TMMBN (notification) echoing the configured values; the accessing node
retransmits the TMMBR until the matching TMMBN arrives
(:class:`ReliableTmmbrSender`).

FCI entry layout (RFC 5104)::

       0                   1                   2                   3
      +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
      |                              SSRC                             |
      +---------------------------------------------------------------+
      | MxTBR Exp |        MxTBR Mantissa             | Overhead      |
      |  (6 bits) |         (17 bits)                 | (9 bits)      |
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import names as obs_names
from ..obs.registry import get_registry
from .rtcp import AppPacket
from .semb import decode_exp_mantissa, encode_exp_mantissa


def _count_message(kind: str, direction: str) -> None:
    """Bump the GSO TMMBR/TMMBN codec counter (no-op while obs is off)."""
    reg = get_registry()
    if reg.enabled:
        reg.counter(
            obs_names.RTP_TMMBR_MESSAGES, kind=kind, direction=direction
        ).inc()

#: APP names for wrapped TMMBR (request) and TMMBN (notification).
GSO_TMMBR_NAME = b"GTBR"
GSO_TMMBN_NAME = b"GTBN"

_TMMBR_MANTISSA_BITS = 17


@dataclass(frozen=True)
class TmmbrEntry:
    """One FCI entry: configure stream ``ssrc`` to at most ``bitrate_bps``.

    A ``bitrate_bps`` of zero disables the stream (zero mantissa, per the
    paper).  ``overhead_bytes`` is the per-packet overhead field of RFC
    5104 (we carry the IP+UDP 28 bytes).
    """

    ssrc: int
    bitrate_bps: int
    overhead_bytes: int = 28

    def __post_init__(self) -> None:
        if not 0 <= self.ssrc < 2**32:
            raise ValueError("ssrc out of range")
        if self.bitrate_bps < 0:
            raise ValueError("bitrate must be non-negative")
        if not 0 <= self.overhead_bytes < 2**9:
            raise ValueError("overhead out of range")

    def serialize(self) -> bytes:
        """Encode to wire bytes."""
        exp, mantissa = encode_exp_mantissa(
            self.bitrate_bps, mantissa_bits=_TMMBR_MANTISSA_BITS
        )
        word = (exp << 26) | (mantissa << 9) | self.overhead_bytes
        return struct.pack("!II", self.ssrc, word)

    @classmethod
    def parse(cls, data: bytes) -> "TmmbrEntry":
        """Decode from wire bytes (raises ValueError on malformed input)."""
        if len(data) < 8:
            raise ValueError("TMMBR FCI entry too short")
        ssrc, word = struct.unpack("!II", data[:8])
        exp = word >> 26
        mantissa = (word >> 9) & ((1 << _TMMBR_MANTISSA_BITS) - 1)
        return cls(
            ssrc=ssrc,
            bitrate_bps=decode_exp_mantissa(exp, mantissa),
            overhead_bytes=word & 0x1FF,
        )

    @property
    def disables_stream(self) -> bool:
        """True when the entry's zero mantissa stops the stream."""
        return self.bitrate_bps == 0


@dataclass(frozen=True)
class GsoTmmbr:
    """A GSO stream-configuration request: one TMMBR FCI entry per stream.

    ``request_id`` makes retransmissions idempotent: the TMMBN echoes it so
    the reliability layer can match notifications to requests.
    """

    sender_ssrc: int
    request_id: int
    entries: Tuple[TmmbrEntry, ...]

    def to_app_packet(self) -> AppPacket:
        """Wrap into the application-defined RTCP carrier packet."""
        data = struct.pack("!I", self.request_id)
        for entry in self.entries:
            data += entry.serialize()
        _count_message("tmmbr", "encoded")
        return AppPacket(
            subtype=1, ssrc=self.sender_ssrc, name=GSO_TMMBR_NAME, data=data
        )

    @classmethod
    def from_app_packet(cls, packet: AppPacket) -> "GsoTmmbr":
        """Extract from the carrying APP packet."""
        if packet.name != GSO_TMMBR_NAME:
            raise ValueError(f"not a GSO TMMBR packet: {packet.name!r}")
        if len(packet.data) < 4 or (len(packet.data) - 4) % 8 != 0:
            raise ValueError("malformed GSO TMMBR payload")
        request_id = struct.unpack("!I", packet.data[:4])[0]
        entries = [
            TmmbrEntry.parse(packet.data[off : off + 8])
            for off in range(4, len(packet.data), 8)
        ]
        _count_message("tmmbr", "parsed")
        return cls(
            sender_ssrc=packet.ssrc,
            request_id=request_id,
            entries=tuple(entries),
        )


@dataclass(frozen=True)
class GsoTmmbn:
    """The notification a client sends back after applying a GSO TMMBR."""

    sender_ssrc: int
    request_id: int
    entries: Tuple[TmmbrEntry, ...]

    def to_app_packet(self) -> AppPacket:
        """Wrap into the application-defined RTCP carrier packet."""
        data = struct.pack("!I", self.request_id)
        for entry in self.entries:
            data += entry.serialize()
        _count_message("tmmbn", "encoded")
        return AppPacket(
            subtype=2, ssrc=self.sender_ssrc, name=GSO_TMMBN_NAME, data=data
        )

    @classmethod
    def from_app_packet(cls, packet: AppPacket) -> "GsoTmmbn":
        """Extract from the carrying APP packet."""
        if packet.name != GSO_TMMBN_NAME:
            raise ValueError(f"not a GSO TMMBN packet: {packet.name!r}")
        request_id = struct.unpack("!I", packet.data[:4])[0]
        entries = [
            TmmbrEntry.parse(packet.data[off : off + 8])
            for off in range(4, len(packet.data), 8)
        ]
        _count_message("tmmbn", "parsed")
        return cls(
            sender_ssrc=packet.ssrc,
            request_id=request_id,
            entries=tuple(entries),
        )

    @classmethod
    def acknowledge(cls, request: GsoTmmbr, sender_ssrc: int) -> "GsoTmmbn":
        """Build the TMMBN that acknowledges ``request``."""
        return cls(
            sender_ssrc=sender_ssrc,
            request_id=request.request_id,
            entries=request.entries,
        )


class ReliableTmmbrSender:
    """Retransmit-until-acknowledged delivery of GSO TMMBR requests.

    The accessing node keeps at most one outstanding request per target
    client; a newer configuration for the same target supersedes the old
    one (its TMMBN is then ignored).  ``transmit`` is the raw send hook;
    ``schedule`` arms the retransmission timer (both injected so the class
    is transport- and clock-agnostic, and trivially testable).

    Args:
        transmit: callable(target, GsoTmmbr) performing one send attempt.
        schedule: callable(delay_s, callback) arming a timer.
        retransmit_interval_s: delay between attempts.
        max_attempts: give up (and report failure) after this many sends.
    """

    def __init__(
        self,
        transmit: Callable[[str, GsoTmmbr], None],
        schedule: Callable[[float, Callable[[], None]], None],
        retransmit_interval_s: float = 0.25,
        max_attempts: int = 5,
    ) -> None:
        if retransmit_interval_s <= 0:
            raise ValueError("retransmit interval must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._transmit = transmit
        self._schedule = schedule
        self._interval = retransmit_interval_s
        self._max_attempts = max_attempts
        self._next_request_id = 1
        #: target -> (request, attempts_so_far)
        self._outstanding: Dict[str, Tuple[GsoTmmbr, int]] = {}
        self.failed_targets: List[str] = []

    def send(self, target: str, sender_ssrc: int, entries: Sequence[TmmbrEntry]) -> GsoTmmbr:
        """Send a new configuration to ``target``, superseding any pending one."""
        request = GsoTmmbr(
            sender_ssrc=sender_ssrc,
            request_id=self._next_request_id,
            entries=tuple(entries),
        )
        self._next_request_id += 1
        self._outstanding[target] = (request, 1)
        self._transmit(target, request)
        self._schedule(self._interval, lambda: self._retry(target, request.request_id))
        return request

    def on_tmmbn(self, target: str, notification: GsoTmmbn) -> bool:
        """Process an incoming TMMBN.

        Returns:
            True if it acknowledged the currently outstanding request.
        """
        pending = self._outstanding.get(target)
        if pending is None or pending[0].request_id != notification.request_id:
            return False  # stale or duplicate acknowledgement
        del self._outstanding[target]
        return True

    def _retry(self, target: str, request_id: int) -> None:
        pending = self._outstanding.get(target)
        if pending is None or pending[0].request_id != request_id:
            return  # acknowledged or superseded
        request, attempts = pending
        if attempts >= self._max_attempts:
            del self._outstanding[target]
            self.failed_targets.append(target)
            return
        self._outstanding[target] = (request, attempts + 1)
        self._transmit(target, request)
        self._schedule(self._interval, lambda: self._retry(target, request_id))

    @property
    def pending_count(self) -> int:
        """Outstanding unacknowledged requests."""
        return len(self._outstanding)
