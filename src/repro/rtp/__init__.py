"""RTP/RTCP wire formats: RFC 3550 headers, SEMB and GSO TMMBR extensions."""

from .packet import (
    AUDIO_CLOCK_HZ,
    AUDIO_PAYLOAD_TYPE,
    RTP_HEADER_LEN,
    VIDEO_CLOCK_HZ,
    VIDEO_PAYLOAD_TYPE,
    RtpPacket,
    seq_distance,
    seq_less_than,
)
from .rtcp import (
    PT_APP,
    PT_RR,
    PT_RTPFB,
    AppPacket,
    ReceiverReport,
    ReportBlock,
    TwccFeedback,
    parse_common_header,
    parse_compound,
)
from .nack import GenericNack, NackTracker, RetransmissionCache, is_nack
from .remb import RembPacket, is_remb
from .semb import SembReport, decode_exp_mantissa, encode_exp_mantissa
from .ssrc import SsrcAllocator, SsrcKey
from .tmmbr import (
    GsoTmmbn,
    GsoTmmbr,
    ReliableTmmbrSender,
    TmmbrEntry,
)

__all__ = [
    "AUDIO_CLOCK_HZ",
    "AUDIO_PAYLOAD_TYPE",
    "AppPacket",
    "GenericNack",
    "GsoTmmbn",
    "GsoTmmbr",
    "NackTracker",
    "RembPacket",
    "RetransmissionCache",
    "PT_APP",
    "PT_RR",
    "PT_RTPFB",
    "RTP_HEADER_LEN",
    "ReceiverReport",
    "ReliableTmmbrSender",
    "ReportBlock",
    "RtpPacket",
    "SembReport",
    "SsrcAllocator",
    "SsrcKey",
    "TmmbrEntry",
    "TwccFeedback",
    "VIDEO_CLOCK_HZ",
    "VIDEO_PAYLOAD_TYPE",
    "decode_exp_mantissa",
    "encode_exp_mantissa",
    "is_nack",
    "is_remb",
    "parse_common_header",
    "parse_compound",
    "seq_distance",
    "seq_less_than",
]
