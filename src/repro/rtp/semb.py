"""SEMB — Sender Estimated Maximum Bitrate (Sec. 4.2).

Uplink bandwidths are measured sender-side at clients and must reach the
conference node quickly: the global picture of Sec. 4.2 needs the uplink
budget ``B_u_i`` of every publisher ``i`` before the Step-3 uplink checks
(Eq. 14-17) can run.  The paper defines SEMB "following the definition of
receiver estimated maximum bitrate (REMB)" and ships it *in-band* — over
the media path, not the signaling channel — so a report survives exactly
when the link it describes is alive.

**Carrier.** SEMB rides in an application-defined RTCP packet
(**APP, PT=204**, RFC 3550 §6.7) whose 4-byte name field is ``"SEMB"``
(:data:`SEMB_NAME`).  Using APP rather than a new PT keeps middleboxes and
existing RTCP demuxers untouched — the same trick the paper uses for the
GSO TMMBR/TMMBN configuration messages (:mod:`repro.rtp.tmmbr`).

**Encoding.** The reported bandwidth is ``B = Mantissa * 2^Exp`` with a
6-bit exponent and an 18-bit mantissa, exactly the REMB draft's floating
point (`draft-alvestrand-rmcat-remb-03 §2.2
<https://datatracker.ietf.org/doc/html/draft-alvestrand-rmcat-remb-03>`__).
:func:`encode_exp_mantissa` rounds **up** so the decoded value never
understates the measurement; with 18 mantissa bits the representable range
tops out at ``(2^18 - 1) * 2^63`` bps, far beyond any real link.

Wire layout of the APP data field (after the 4-byte name ``"SEMB"``)::

       0                   1                   2                   3
      +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
      |  Num SSRC     | BR Exp    |        BR Mantissa              |
      +---------------------------------------------------------------+
      |  SSRC feedback applies to (repeated Num SSRC times)           |

The conference node consumes reports via
``ConferenceNode.on_semb_report`` (uplink half of the global picture);
the downlink half arrives server-side from the accessing nodes.  Encoded
and parsed message counts are observable as the
``repro_rtp_semb_messages_total`` counter (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..obs import names as obs_names
from ..obs.registry import get_registry
from .rtcp import AppPacket

#: 4-byte APP name identifying SEMB packets.
SEMB_NAME = b"SEMB"

_EXP_BITS = 6
_MANTISSA_BITS = 18
_MAX_MANTISSA = (1 << _MANTISSA_BITS) - 1
_MAX_EXP = (1 << _EXP_BITS) - 1


def encode_exp_mantissa(
    bitrate_bps: int, mantissa_bits: int = _MANTISSA_BITS
) -> Tuple[int, int]:
    """Encode a bitrate as (exp, mantissa) with ``mantissa * 2^exp >= value``
    minimal — the REMB/TMMBR rounding convention (round up, never report
    less than measured).

    Args:
        bitrate_bps: the value to encode, in bits per second.
        mantissa_bits: mantissa width (18 for REMB/SEMB, 17 for TMMBR).

    Returns:
        (exp, mantissa).

    Raises:
        ValueError: if the value cannot be represented.
    """
    if bitrate_bps < 0:
        raise ValueError("bitrate must be non-negative")
    max_mantissa = (1 << mantissa_bits) - 1
    exp = 0
    value = bitrate_bps
    while value > max_mantissa:
        # Round up when truncating so the decoded value never understates.
        value = (value + 1) // 2
        exp += 1
        if exp > _MAX_EXP:
            raise ValueError(f"bitrate {bitrate_bps} too large to encode")
    return exp, value


def decode_exp_mantissa(exp: int, mantissa: int) -> int:
    """Decode ``mantissa * 2^exp`` back to bits per second."""
    if exp < 0 or mantissa < 0:
        raise ValueError("exp and mantissa must be non-negative")
    return mantissa << exp


@dataclass(frozen=True)
class SembReport:
    """An uplink bandwidth report from a client.

    Attributes:
        sender_ssrc: the reporting client's RTCP SSRC.
        bitrate_bps: the sender-side estimated uplink capacity.
        media_ssrcs: the streams the estimate covers (empty = whole link).
    """

    sender_ssrc: int
    bitrate_bps: int
    media_ssrcs: Tuple[int, ...] = ()

    def to_app_packet(self) -> AppPacket:
        """Wrap into the PT=204 APP packet the paper prescribes."""
        exp, mantissa = encode_exp_mantissa(self.bitrate_bps)
        word = (len(self.media_ssrcs) << 24) | (exp << _MANTISSA_BITS) | mantissa
        data = struct.pack("!I", word)
        for ssrc in self.media_ssrcs:
            data += struct.pack("!I", ssrc)
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.RTP_SEMB_MESSAGES, direction="encoded").inc()
        return AppPacket(
            subtype=0, ssrc=self.sender_ssrc, name=SEMB_NAME, data=data
        )

    @classmethod
    def from_app_packet(cls, packet: AppPacket) -> "SembReport":
        """Parse a SEMB report back out of an APP packet.

        Raises:
            ValueError: if the APP packet is not a SEMB packet.
        """
        if packet.name != SEMB_NAME:
            raise ValueError(f"not a SEMB packet: name={packet.name!r}")
        if len(packet.data) < 4:
            raise ValueError("SEMB payload too short")
        word = struct.unpack("!I", packet.data[:4])[0]
        num_ssrc = word >> 24
        exp = (word >> _MANTISSA_BITS) & _MAX_EXP
        mantissa = word & _MAX_MANTISSA
        if len(packet.data) < 4 + 4 * num_ssrc:
            raise ValueError("SEMB SSRC list truncated")
        ssrcs = struct.unpack(f"!{num_ssrc}I", packet.data[4 : 4 + 4 * num_ssrc])
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.RTP_SEMB_MESSAGES, direction="parsed").inc()
        return cls(
            sender_ssrc=packet.ssrc,
            bitrate_bps=decode_exp_mantissa(exp, mantissa),
            media_ssrcs=tuple(ssrcs),
        )

    @property
    def bitrate_kbps(self) -> int:
        """The report rounded down to kbps (solver units)."""
        return self.bitrate_bps // 1000
