"""RTP packet wire format (RFC 3550 §5.1 + RFC 8285 header extension).

Simulcast sub-streams are distinguished purely by SSRC (the paper assigns
one SSRC per stream resolution, Sec. 4.2).  Payload bytes are synthetic —
the simulation never decodes video — but sizes, sequence numbers,
timestamps, marker bits and the transport-wide-CC sequence extension are
all real, so the receive path (jitter buffer, loss accounting, TWCC)
behaves faithfully.

The only header extension implemented is the transport-wide congestion
control sequence number (draft-holmer-rmcat-transport-wide-cc-extensions,
cited by the paper in Sec. 7), carried as RFC 8285 one-byte-header element
id 1.  Like a real SFU, the accessing node rewrites this extension
per-transport when forwarding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

#: RTP version used by everything since RFC 3550.
RTP_VERSION = 2

#: Fixed header length without CSRCs.
RTP_HEADER_LEN = 12

#: Dynamic payload type used for the synthetic video codec.
VIDEO_PAYLOAD_TYPE = 96

#: Dynamic payload type used for audio (Opus-like).
AUDIO_PAYLOAD_TYPE = 111

#: RTP timestamp clock rate for video (RFC 3551 convention).
VIDEO_CLOCK_HZ = 90_000

#: RTP timestamp clock rate for audio.
AUDIO_CLOCK_HZ = 48_000

#: RFC 8285 one-byte-header extension profile marker.
_ONE_BYTE_PROFILE = 0xBEDE

#: Extension element id carrying the TWCC sequence number.
_TWCC_EXT_ID = 1


@dataclass(frozen=True)
class RtpPacket:
    """A parsed/serializable RTP packet.

    Attributes:
        ssrc: synchronization source; one per (publisher, resolution).
        seq: 16-bit sequence number (wraps).
        timestamp: 32-bit media timestamp (wraps).
        payload_type: 7-bit PT.
        marker: set on the last packet of a video frame.
        payload: media bytes (synthetic).
        twcc_seq: transport-wide CC sequence number, or None when the
            extension is absent.  Rewritten hop-by-hop by the SFU.
    """

    ssrc: int
    seq: int
    timestamp: int
    payload_type: int = VIDEO_PAYLOAD_TYPE
    marker: bool = False
    payload: bytes = b""
    twcc_seq: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.ssrc < 2**32:
            raise ValueError(f"ssrc out of range: {self.ssrc}")
        if not 0 <= self.seq < 2**16:
            raise ValueError(f"seq out of range: {self.seq}")
        if not 0 <= self.timestamp < 2**32:
            raise ValueError(f"timestamp out of range: {self.timestamp}")
        if not 0 <= self.payload_type < 2**7:
            raise ValueError(f"payload_type out of range: {self.payload_type}")
        if self.twcc_seq is not None and not 0 <= self.twcc_seq < 2**16:
            raise ValueError(f"twcc_seq out of range: {self.twcc_seq}")

    def serialize(self) -> bytes:
        """Encode to wire bytes (fixed header [+ extension] + payload)."""
        has_ext = self.twcc_seq is not None
        byte0 = (RTP_VERSION << 6) | (int(has_ext) << 4)  # P=0, CC=0
        byte1 = (int(self.marker) << 7) | self.payload_type
        header = struct.pack(
            "!BBHII", byte0, byte1, self.seq, self.timestamp, self.ssrc
        )
        if has_ext:
            # One 32-bit extension word: [id=1|len=1][seq hi][seq lo][pad].
            element = struct.pack(
                "!BHB", (_TWCC_EXT_ID << 4) | 0x01, self.twcc_seq, 0
            )
            header += struct.pack("!HH", _ONE_BYTE_PROFILE, 1) + element
        return header + self.payload

    @property
    def wire_size(self) -> int:
        """Serialized size in bytes."""
        ext = 8 if self.twcc_seq is not None else 0
        return RTP_HEADER_LEN + ext + len(self.payload)

    def with_twcc_seq(self, twcc_seq: Optional[int]) -> "RtpPacket":
        """A copy with the transport-wide sequence rewritten (SFU hop)."""
        return RtpPacket(
            ssrc=self.ssrc,
            seq=self.seq,
            timestamp=self.timestamp,
            payload_type=self.payload_type,
            marker=self.marker,
            payload=self.payload,
            twcc_seq=twcc_seq,
        )

    @classmethod
    def parse(cls, data: bytes) -> "RtpPacket":
        """Decode wire bytes.

        Raises:
            ValueError: on truncated input or wrong RTP version.
        """
        if len(data) < RTP_HEADER_LEN:
            raise ValueError(f"RTP packet too short: {len(data)} bytes")
        byte0, byte1, seq, timestamp, ssrc = struct.unpack(
            "!BBHII", data[:RTP_HEADER_LEN]
        )
        version = byte0 >> 6
        if version != RTP_VERSION:
            raise ValueError(f"unsupported RTP version {version}")
        has_ext = bool((byte0 >> 4) & 1)
        cc = byte0 & 0x0F
        offset = RTP_HEADER_LEN + 4 * cc
        twcc_seq: Optional[int] = None
        if has_ext:
            if len(data) < offset + 4:
                raise ValueError("RTP packet truncated in extension header")
            profile, length_words = struct.unpack(
                "!HH", data[offset : offset + 4]
            )
            ext_start = offset + 4
            ext_end = ext_start + 4 * length_words
            if len(data) < ext_end:
                raise ValueError("RTP packet truncated in extension body")
            if profile == _ONE_BYTE_PROFILE:
                pos = ext_start
                while pos < ext_end:
                    header = data[pos]
                    if header == 0:  # padding
                        pos += 1
                        continue
                    ext_id = header >> 4
                    ext_len = (header & 0x0F) + 1
                    if ext_id == _TWCC_EXT_ID and ext_len == 2:
                        twcc_seq = struct.unpack(
                            "!H", data[pos + 1 : pos + 3]
                        )[0]
                    pos += 1 + ext_len
            offset = ext_end
        if len(data) < offset:
            raise ValueError("RTP packet truncated")
        return cls(
            ssrc=ssrc,
            seq=seq,
            timestamp=timestamp,
            payload_type=byte1 & 0x7F,
            marker=bool(byte1 >> 7),
            payload=data[offset:],
            twcc_seq=twcc_seq,
        )


def seq_less_than(a: int, b: int) -> bool:
    """RFC 1982 serial-number comparison for 16-bit sequence numbers."""
    return (b - a) % 2**16 < 2**15 and a != b


def seq_distance(a: int, b: int) -> int:
    """Forward distance from ``a`` to ``b`` modulo 2^16."""
    return (b - a) % 2**16
