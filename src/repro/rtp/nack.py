"""Packet-loss repair: Generic NACK (RFC 4585 §6.2.1) + retransmission.

Real-time video at the loss rates of Table 2 (30-50 %) is only usable with
repair: receivers NACK missing sequence numbers and senders retransmit
from a short cache.  Both hops repair independently, like production SFUs:

* client -> node (uplink): the node tracks ingest gaps per SSRC and NACKs
  the publishing client, which retransmits from its send cache;
* node -> client (downlink): the client tracks gaps per SSRC and NACKs the
  node, which retransmits from its forwarding cache.

Wire format (RTPFB, PT=205, FMT=1), FCI entries of ``PID`` (first lost
seq) + ``BLP`` (bitmask of the following 16 seqs).
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .packet import RtpPacket, seq_distance
from .rtcp import PT_RTPFB, _common_header, parse_common_header

#: RTPFB format number of the Generic NACK.
NACK_FMT = 1

_SEQ_MOD = 2**16


def _pack_fci(seqs: Sequence[int]) -> bytes:
    """Group sorted sequence numbers into (PID, BLP) FCI entries."""
    out = b""
    ordered = sorted(set(s % _SEQ_MOD for s in seqs))
    index = 0
    while index < len(ordered):
        pid = ordered[index]
        blp = 0
        index += 1
        while index < len(ordered):
            offset = seq_distance(pid, ordered[index])
            if not 1 <= offset <= 16:
                break
            blp |= 1 << (offset - 1)
            index += 1
        out += struct.pack("!HH", pid, blp)
    return out


def _unpack_fci(data: bytes) -> List[int]:
    seqs: List[int] = []
    for off in range(0, len(data), 4):
        pid, blp = struct.unpack("!HH", data[off : off + 4])
        seqs.append(pid)
        for bit in range(16):
            if blp & (1 << bit):
                seqs.append((pid + bit + 1) % _SEQ_MOD)
    return seqs


@dataclass(frozen=True)
class GenericNack:
    """A Generic NACK: request retransmission of ``seqs`` on ``media_ssrc``."""

    sender_ssrc: int
    media_ssrc: int
    seqs: Tuple[int, ...]

    def serialize(self) -> bytes:
        """Encode to wire bytes."""
        body = struct.pack("!II", self.sender_ssrc, self.media_ssrc)
        body += _pack_fci(self.seqs)
        return _common_header(NACK_FMT, PT_RTPFB, len(body)) + body

    @classmethod
    def parse(cls, data: bytes) -> "GenericNack":
        """Decode from wire bytes (raises ValueError on malformed input)."""
        fmt, packet_type, total = parse_common_header(data)
        if packet_type != PT_RTPFB or fmt != NACK_FMT:
            raise ValueError("not a Generic NACK packet")
        sender_ssrc, media_ssrc = struct.unpack("!II", data[4:12])
        return cls(
            sender_ssrc=sender_ssrc,
            media_ssrc=media_ssrc,
            seqs=tuple(_unpack_fci(data[12:total])),
        )


def is_nack(data: bytes) -> bool:
    """Cheap test whether an RTCP packet is a Generic NACK."""
    try:
        fmt, packet_type, _ = parse_common_header(data)
    except ValueError:
        return False
    return packet_type == PT_RTPFB and fmt == NACK_FMT


class RetransmissionCache:
    """Bounded per-SSRC cache of recently sent RTP packets.

    Retransmissions reuse the original SSRC and sequence number (legacy
    same-SSRC RTX) — receivers dedupe naturally by sequence number.
    """

    def __init__(self, depth_per_ssrc: int = 512) -> None:
        if depth_per_ssrc < 1:
            raise ValueError("cache depth must be positive")
        self._depth = depth_per_ssrc
        self._cache: Dict[int, "OrderedDict[int, RtpPacket]"] = {}
        self.hits = 0
        self.misses = 0

    def store(self, packet: RtpPacket) -> None:
        """Cache one sent packet for potential retransmission."""
        per_ssrc = self._cache.setdefault(packet.ssrc, OrderedDict())
        per_ssrc[packet.seq] = packet
        while len(per_ssrc) > self._depth:
            per_ssrc.popitem(last=False)

    def lookup(self, ssrc: int, seq: int) -> Optional[RtpPacket]:
        """Fetch a cached packet by (ssrc, seq), or None."""
        packet = self._cache.get(ssrc, {}).get(seq)
        if packet is None:
            self.misses += 1
        else:
            self.hits += 1
        return packet


@dataclass
class _MissingSeq:
    first_seen_s: float
    attempts: int = 0
    last_request_s: float = -1.0


class NackTracker:
    """Receiver-side gap detection and NACK scheduling for one stream set.

    Feed every received (ssrc, seq); call :meth:`due_requests` on a short
    periodic cadence to collect the (ssrc, seqs) batches that should be
    NACKed now.  Sequences are re-requested up to ``max_attempts`` times,
    then abandoned (the jitter buffer will declare the frame lost).

    Args:
        initial_delay_s: wait before the first NACK (reordering grace).
        retry_interval_s: spacing between repeat NACKs.
        max_attempts: total NACKs per missing packet.
        max_tracked: bound on concurrently tracked losses per SSRC.
    """

    def __init__(
        self,
        initial_delay_s: float = 0.01,
        retry_interval_s: float = 0.06,
        max_attempts: int = 5,
        max_tracked: int = 256,
    ) -> None:
        self._initial_delay = initial_delay_s
        self._retry_interval = retry_interval_s
        self._max_attempts = max_attempts
        self._max_tracked = max_tracked
        self._highest: Dict[int, int] = {}
        self._missing: Dict[int, Dict[int, _MissingSeq]] = {}
        #: Lifetime counters (receiver-side loss approximation).
        self.packets_seen = 0
        self.holes_seen = 0
        #: Adaptive reordering tolerance: how late "missing" packets turn
        #: out to arrive on their own.  Paths with heavy jitter reorder
        #: constantly; NACKing reordered packets wastes bandwidth on
        #: useless retransmissions, so the initial NACK delay tracks the
        #: observed reorder window.
        self._reorder_window_s = 0.0

    def on_packet(self, ssrc: int, seq: int, now_s: float) -> None:
        """Record one received packet; detect holes behind it."""
        self.packets_seen += 1
        missing = self._missing.setdefault(ssrc, {})
        record = missing.pop(seq, None)  # a reordered packet or an RTX
        if record is not None and record.attempts == 0:
            # It arrived before we ever asked: pure reordering.  Widen the
            # tolerance window toward this observed lateness.
            lateness = now_s - record.first_seen_s
            self._reorder_window_s = max(
                self._reorder_window_s * 0.98, min(lateness * 1.25, 0.35)
            )
        highest = self._highest.get(ssrc)
        if highest is None:
            self._highest[ssrc] = seq
            return
        gap = seq_distance(highest, seq)
        if gap == 0 or gap >= 2**15:
            return  # duplicate or reordered packet from the past
        for k in range(1, gap):
            lost = (highest + k) % _SEQ_MOD
            if lost not in missing and len(missing) < self._max_tracked:
                missing[lost] = _MissingSeq(first_seen_s=now_s)
                self.holes_seen += 1
        self._highest[ssrc] = seq

    def due_requests(self, now_s: float) -> List[Tuple[int, List[int]]]:
        """The (ssrc, seqs) NACK batches due at ``now_s``."""
        batches: List[Tuple[int, List[int]]] = []
        for ssrc, missing in self._missing.items():
            due: List[int] = []
            for seq in list(missing):
                record = missing[seq]
                if record.attempts >= self._max_attempts:
                    del missing[seq]
                    continue
                first_wait = max(self._initial_delay, self._reorder_window_s)
                ready = (
                    record.attempts == 0
                    and now_s - record.first_seen_s >= first_wait
                ) or (
                    record.attempts > 0
                    and now_s - record.last_request_s >= self._retry_interval
                )
                if ready:
                    record.attempts += 1
                    record.last_request_s = now_s
                    due.append(seq)
            if due:
                batches.append((ssrc, sorted(due)))
        return batches

    @property
    def outstanding(self) -> int:
        """Missing sequence numbers currently tracked."""
        return sum(len(m) for m in self._missing.values())
