"""Signaling substrate: minimal SDP plus the simulcastInfo extension."""

from .sdp import MediaSection, SessionDescription
from .simulcast_info import (
    ResolutionCapability,
    SimulcastInfo,
    build_offer,
    capability_from_info,
)

__all__ = [
    "MediaSection",
    "ResolutionCapability",
    "SessionDescription",
    "SimulcastInfo",
    "build_offer",
    "capability_from_info",
]
