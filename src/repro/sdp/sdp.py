"""Minimal SDP offer/answer (RFC 4566 subset).

Codec capability collection happens "through the SDP negotiation process,
which is carried out before a participant joins a meeting" (Sec. 4.2).  The
reproduction implements the subset of SDP the negotiation needs: session
header, media sections with payload-type maps, direction attributes, and
free-form ``a=`` attributes (used to attach per-resolution SSRCs).

The serializer and parser round-trip through real ``\\r\\n``-terminated SDP
text so signaling fidelity is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class MediaSection:
    """One ``m=`` section of an SDP document.

    Attributes:
        media: "audio" or "video".
        port: nominal port (9 = discard convention in bundled WebRTC SDPs).
        protocol: transport token, e.g. "UDP/TLS/RTP/SAVPF".
        payload_types: the PT numbers offered.
        attributes: ordered (key, value) attribute list; value None encodes
            a flag attribute like ``a=sendrecv``.
    """

    media: str
    port: int = 9
    protocol: str = "UDP/TLS/RTP/SAVPF"
    payload_types: List[int] = field(default_factory=list)
    attributes: List[Tuple[str, Optional[str]]] = field(default_factory=list)

    def add_attribute(self, key: str, value: Optional[str] = None) -> None:
        """Append one a= attribute (value None = flag form)."""
        self.attributes.append((key, value))

    def attribute_values(self, key: str) -> List[str]:
        """All values of a repeated attribute (e.g. ``a=ssrc``)."""
        return [v for k, v in self.attributes if k == key and v is not None]

    def first_attribute(self, key: str) -> Optional[str]:
        """First value of an attribute, or None."""
        values = self.attribute_values(key)
        return values[0] if values else None

    def serialize(self) -> str:
        """Encode to wire bytes."""
        lines = [
            f"m={self.media} {self.port} {self.protocol} "
            + " ".join(str(pt) for pt in self.payload_types)
        ]
        for key, value in self.attributes:
            lines.append(f"a={key}" if value is None else f"a={key}:{value}")
        return "\r\n".join(lines)


@dataclass
class SessionDescription:
    """A full SDP document: session header plus media sections."""

    session_id: int
    origin_user: str = "-"
    session_name: str = "gso-conference"
    media: List[MediaSection] = field(default_factory=list)

    def serialize(self) -> str:
        """Encode to wire bytes."""
        lines = [
            "v=0",
            f"o={self.origin_user} {self.session_id} 1 IN IP4 0.0.0.0",
            f"s={self.session_name}",
            "t=0 0",
        ]
        for section in self.media:
            lines.append(section.serialize())
        return "\r\n".join(lines) + "\r\n"

    @classmethod
    def parse(cls, text: str) -> "SessionDescription":
        """Parse SDP text.

        Raises:
            ValueError: on structurally invalid documents.
        """
        session: Optional[SessionDescription] = None
        current: Optional[MediaSection] = None
        for raw in text.replace("\r\n", "\n").split("\n"):
            line = raw.strip()
            if not line:
                continue
            if len(line) < 2 or line[1] != "=":
                raise ValueError(f"malformed SDP line: {line!r}")
            kind, value = line[0], line[2:]
            if kind == "v":
                if value != "0":
                    raise ValueError(f"unsupported SDP version {value!r}")
                session = cls(session_id=0)
            elif session is None:
                raise ValueError("SDP must start with v=0")
            elif kind == "o":
                parts = value.split()
                if len(parts) < 2:
                    raise ValueError(f"malformed o= line: {value!r}")
                session.origin_user = parts[0]
                session.session_id = int(parts[1])
            elif kind == "s":
                session.session_name = value
            elif kind == "m":
                parts = value.split()
                if len(parts) < 3:
                    raise ValueError(f"malformed m= line: {value!r}")
                current = MediaSection(
                    media=parts[0],
                    port=int(parts[1]),
                    protocol=parts[2],
                    payload_types=[int(pt) for pt in parts[3:]],
                )
                session.media.append(current)
            elif kind == "a":
                target = current
                if target is None:
                    continue  # session-level attributes are not modelled
                if ":" in value:
                    key, attr_value = value.split(":", 1)
                    target.add_attribute(key, attr_value)
                else:
                    target.add_attribute(value, None)
            # c=, t=, b= lines are accepted and ignored.
        if session is None:
            raise ValueError("empty SDP document")
        return session

    def video_sections(self) -> List[MediaSection]:
        """The m=video sections."""
        return [m for m in self.media if m.media == "video"]

    def audio_sections(self) -> List[MediaSection]:
        """The m=audio sections."""
        return [m for m in self.media if m.media == "audio"]
