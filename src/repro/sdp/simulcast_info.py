"""The simulcastInfo negotiation message (Sec. 4.2).

The paper augments SDP negotiation: "We also send a customized
simulcastInfo message together with the SDP offer ... so that the
conference node is not only able to collect the video codec type and the
number of streams supported, but also the stream resolutions and the
maximum bitrates with respect to each resolution.  In the negotiation, we
assign a different synchronization source (SSRC) for each stream
resolution."

:class:`SimulcastInfo` is that message; :func:`build_offer` produces the
SDP offer + simulcastInfo pair a client presents when joining, and
:func:`capability_from_info` converts a negotiated simulcastInfo into the
feasible stream set (``S_i``) the GSO controller optimizes over.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.ladder import qoe_utility
from ..core.types import ClientId, Resolution, StreamSpec, validate_feasible_set
from .sdp import MediaSection, SessionDescription


@dataclass(frozen=True)
class ResolutionCapability:
    """One resolution a device's codec can simulcast.

    Attributes:
        resolution: the encoding resolution.
        max_bitrate_kbps: the device's encoder ceiling at this resolution.
        min_bitrate_kbps: below this the encoder cannot hold the resolution.
        ssrc: the SSRC negotiated for this resolution's stream.
    """

    resolution: Resolution
    max_bitrate_kbps: int
    min_bitrate_kbps: int
    ssrc: int

    def __post_init__(self) -> None:
        if self.min_bitrate_kbps <= 0:
            raise ValueError("min bitrate must be positive")
        if self.max_bitrate_kbps < self.min_bitrate_kbps:
            raise ValueError("max bitrate below min bitrate")


@dataclass(frozen=True)
class SimulcastInfo:
    """The customized negotiation message sent with the SDP offer."""

    client: ClientId
    codec: str  # e.g. "H264", "VP8"
    max_streams: int
    resolutions: Tuple[ResolutionCapability, ...]

    def __post_init__(self) -> None:
        if self.max_streams < 1:
            raise ValueError("a publisher supports at least one stream")
        if len(self.resolutions) > self.max_streams:
            raise ValueError(
                f"{len(self.resolutions)} resolutions exceed "
                f"max_streams={self.max_streams}"
            )
        seen = set()
        for cap in self.resolutions:
            if cap.resolution in seen:
                raise ValueError(f"duplicate resolution {cap.resolution}")
            seen.add(cap.resolution)

    def to_json(self) -> str:
        """Serialize for the signaling channel."""
        return json.dumps(
            {
                "client": self.client,
                "codec": self.codec,
                "maxStreams": self.max_streams,
                "resolutions": [
                    {
                        "res": cap.resolution.value,
                        "maxKbps": cap.max_bitrate_kbps,
                        "minKbps": cap.min_bitrate_kbps,
                        "ssrc": cap.ssrc,
                    }
                    for cap in self.resolutions
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "SimulcastInfo":
        """Parse a signaling-channel message.

        Raises:
            ValueError: on malformed JSON or missing fields.
        """
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed simulcastInfo JSON: {exc}") from exc
        try:
            return cls(
                client=doc["client"],
                codec=doc["codec"],
                max_streams=doc["maxStreams"],
                resolutions=tuple(
                    ResolutionCapability(
                        resolution=Resolution(entry["res"]),
                        max_bitrate_kbps=entry["maxKbps"],
                        min_bitrate_kbps=entry["minKbps"],
                        ssrc=entry["ssrc"],
                    )
                    for entry in doc["resolutions"]
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"incomplete simulcastInfo: {exc}") from exc

    def ssrc_by_resolution(self) -> Dict[Resolution, int]:
        """Mapping resolution -> negotiated SSRC."""
        return {cap.resolution: cap.ssrc for cap in self.resolutions}


def build_offer(
    info: SimulcastInfo, session_id: int
) -> Tuple[SessionDescription, str]:
    """Build the SDP offer + simulcastInfo JSON a joining client sends.

    The SDP carries one audio section and one video section whose ``ssrc``
    attributes enumerate the per-resolution SSRCs, matching the paper's
    negotiation flow.
    """
    audio = MediaSection(media="audio", payload_types=[111])
    audio.add_attribute("rtpmap", "111 opus/48000/2")
    audio.add_attribute("sendrecv")
    video = MediaSection(media="video", payload_types=[96])
    video.add_attribute("rtpmap", f"96 {info.codec}/90000")
    video.add_attribute("sendrecv")
    for cap in info.resolutions:
        video.add_attribute(
            "ssrc", f"{cap.ssrc} label:{info.client}-{cap.resolution.value}p"
        )
    offer = SessionDescription(
        session_id=session_id,
        origin_user=info.client,
        media=[audio, video],
    )
    return offer, info.to_json()


def build_answer(
    offer: SessionDescription, accepted: SimulcastInfo
) -> SessionDescription:
    """Build the SDP answer the conference node returns to a joining client.

    The answer mirrors the offer's media sections (same payload types),
    confirms the negotiated per-resolution SSRCs, and flips directionality:
    the node receives what the client sends and vice versa.
    """
    answer = SessionDescription(
        session_id=offer.session_id,
        origin_user="conference",
        session_name=offer.session_name,
    )
    for section in offer.media:
        mirrored = MediaSection(
            media=section.media,
            port=section.port,
            protocol=section.protocol,
            payload_types=list(section.payload_types),
        )
        rtpmap = section.first_attribute("rtpmap")
        if rtpmap is not None:
            mirrored.add_attribute("rtpmap", rtpmap)
        mirrored.add_attribute("sendrecv")
        if section.media == "video":
            for cap in accepted.resolutions:
                mirrored.add_attribute(
                    "ssrc",
                    f"{cap.ssrc} label:{accepted.client}-"
                    f"{cap.resolution.value}p",
                )
        answer.media.append(mirrored)
    return answer


def capability_from_info(
    info: SimulcastInfo,
    levels_per_resolution: int = 5,
    qoe_exponent: float = 0.85,
) -> List[StreamSpec]:
    """Synthesize the feasible stream set ``S_i`` from negotiated capability.

    The controller "generate[s] vectors of fine-grained stream bitrates that
    each client is able to send" (Sec. 3): within each negotiated
    resolution's [min, max] bitrate range, ``levels_per_resolution`` rungs
    are placed evenly and weighted by the standard QoE utility curve.
    Bitrate collisions across resolutions are nudged down 1 kbps.
    """
    if levels_per_resolution < 1:
        raise ValueError("levels_per_resolution must be >= 1")
    used: set = set()
    streams: List[StreamSpec] = []
    for cap in sorted(info.resolutions, key=lambda c: -c.resolution):
        lo, hi = cap.min_bitrate_kbps, cap.max_bitrate_kbps
        if levels_per_resolution == 1 or lo == hi:
            rates = sorted({hi, lo}, reverse=True)[:levels_per_resolution]
        else:
            step = (hi - lo) / (levels_per_resolution - 1)
            rates = [round(lo + k * step) for k in range(levels_per_resolution)]
        for rate in rates:
            while rate in used:
                rate -= 1
            if rate <= 0:
                raise ValueError(
                    f"cannot derive distinct rungs for {cap.resolution}"
                )
            used.add(rate)
            streams.append(
                StreamSpec(
                    bitrate_kbps=rate,
                    resolution=cap.resolution,
                    qoe=qoe_utility(rate, qoe_exponent),
                )
            )
    return validate_feasible_set(streams)
