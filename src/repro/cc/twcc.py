"""Transport-wide congestion control bookkeeping (sender and receiver).

Sec. 7: "we use transport-wide congestion control for its flexibility."
Every outgoing packet of a client — across all its simulcast streams —
carries one transport-wide sequence number.  The receiver batches
(seq, arrival time) pairs into periodic feedback; the sender matches them
against its send-time log and produces the
:class:`~repro.cc.gcc.FeedbackSample` list the GCC estimator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rtp.rtcp import TwccFeedback
from .gcc import FeedbackSample

_SEQ_MOD = 2**16


@dataclass
class _SentRecord:
    send_time_s: float
    size_bytes: int


class TwccSender:
    """Sender half: stamps sequence numbers and matches feedback."""

    def __init__(self, history_limit: int = 4096, loss_window_batches: int = 20) -> None:
        self._next_seq = 0
        self._history: Dict[int, _SentRecord] = {}
        self._history_limit = history_limit
        self.lost_reported = 0
        self.acked_reported = 0
        #: (acked, lost) per feedback batch, for the windowed loss fraction.
        self._batch_stats: List[Tuple[int, int]] = []
        self._loss_window_batches = loss_window_batches

    def register_send(self, size_bytes: int, now_s: float) -> int:
        """Record an outgoing packet; returns its transport-wide seq."""
        seq = self._next_seq
        self._next_seq = (self._next_seq + 1) % _SEQ_MOD
        self._history[seq] = _SentRecord(now_s, size_bytes)
        if len(self._history) > self._history_limit:
            # Drop the oldest entries (unacked packets presumed lost).
            for old in sorted(self._history)[: len(self._history) // 4]:
                del self._history[old]
        return seq

    def on_feedback(self, feedback: TwccFeedback) -> List[FeedbackSample]:
        """Match a feedback packet to the send log.

        Returns:
            Samples for acknowledged packets, in send order.  Packets
            reported lost (arrival time -1) increment ``lost_reported``.
        """
        samples: List[Tuple[int, FeedbackSample]] = []
        batch_acked = 0
        batch_lost = 0
        for seq, arrival_us in feedback.arrivals:
            record = self._history.pop(seq, None)
            if record is None:
                continue
            if arrival_us < 0:
                self.lost_reported += 1
                batch_lost += 1
                continue
            self.acked_reported += 1
            batch_acked += 1
            samples.append(
                (
                    seq,
                    FeedbackSample(
                        send_time_s=record.send_time_s,
                        arrival_time_s=arrival_us / 1e6,
                        size_bytes=record.size_bytes,
                    ),
                )
            )
        samples.sort(key=lambda pair: pair[1].send_time_s)
        if batch_acked or batch_lost:
            self._batch_stats.append((batch_acked, batch_lost))
            if len(self._batch_stats) > 4 * self._loss_window_batches:
                del self._batch_stats[: -self._loss_window_batches]
        return [sample for _, sample in samples]

    def loss_fraction(self) -> float:
        """Loss fraction over everything reported so far (lifetime)."""
        total = self.lost_reported + self.acked_reported
        if total == 0:
            return 0.0
        return self.lost_reported / total

    def recent_loss_fraction(self) -> float:
        """Loss fraction over the recent feedback window.

        This is what the loss-based controller should consume: a lifetime
        fraction would keep punishing the rate long after one congestion
        episode ended.
        """
        window = self._batch_stats[-self._loss_window_batches :]
        acked = sum(a for a, _ in window)
        lost = sum(l for _, l in window)
        total = acked + lost
        if total == 0:
            return 0.0
        return lost / total


class TwccReceiver:
    """Receiver half: logs arrivals and emits periodic feedback."""

    def __init__(self, sender_ssrc: int = 0) -> None:
        self._sender_ssrc = sender_ssrc
        self._pending: List[Tuple[int, int]] = []  # (seq, arrival_us)
        self._expected_next: Optional[int] = None

    def on_packet(self, twcc_seq: int, now_s: float) -> None:
        """Record one arriving packet."""
        arrival_us = int(now_s * 1e6)
        if self._expected_next is not None:
            gap = (twcc_seq - self._expected_next) % _SEQ_MOD
            if 0 < gap < 100:
                # Report the sequence-number holes as losses.
                for missing in range(gap):
                    self._pending.append(
                        ((self._expected_next + missing) % _SEQ_MOD, -1)
                    )
        self._expected_next = (twcc_seq + 1) % _SEQ_MOD
        self._pending.append((twcc_seq, arrival_us))

    def build_feedback(self) -> Optional[TwccFeedback]:
        """Drain pending arrivals into one feedback packet (None if empty)."""
        if not self._pending:
            return None
        base_seq = self._pending[0][0]
        feedback = TwccFeedback(
            sender_ssrc=self._sender_ssrc,
            base_seq=base_seq,
            arrivals=tuple(self._pending),
        )
        self._pending = []
        return feedback
