"""Bandwidth-report scheduling: time trigger + event trigger (Sec. 7).

"It is critical to control bandwidth reporting message frequency.
Otherwise, we might overwhelm the conference node.  We implement both a
time trigger and an event trigger.  The time trigger periodically updates
the measurements while the event trigger is fired to update bandwidth only
if its change is significant."

:class:`ReportScheduler` decides, for each new measurement, whether a SEMB
report should be emitted now.  It is clock-agnostic (times are passed in)
so both the packet-level simulation and the fleet simulation reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ReportSchedulerConfig:
    """Report-rate limiting knobs."""

    #: Periodic (time-trigger) reporting interval.
    period_s: float = 1.0
    #: Relative change that fires the event trigger.
    significant_change: float = 0.10
    #: Hard floor between two reports, whatever the trigger.
    min_spacing_s: float = 0.2

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.min_spacing_s < 0:
            raise ValueError("invalid scheduler periods")
        if self.significant_change <= 0:
            raise ValueError("significant_change must be positive")
        if self.min_spacing_s > self.period_s:
            raise ValueError("min spacing cannot exceed the period")


class ReportScheduler:
    """Per-link decision logic for emitting bandwidth reports."""

    def __init__(self, config: Optional[ReportSchedulerConfig] = None) -> None:
        self.config = config or ReportSchedulerConfig()
        self._last_report_time: Optional[float] = None
        self._last_reported_kbps: Optional[float] = None
        self.reports_sent = 0
        self.reports_suppressed = 0

    def should_report(self, now_s: float, measured_kbps: float) -> bool:
        """Decide whether to report this measurement.

        Call once per new measurement; when True is returned the caller
        must actually send the report (the scheduler records it).
        """
        cfg = self.config
        if self._last_report_time is None:
            self._record(now_s, measured_kbps)
            return True
        elapsed = now_s - self._last_report_time
        if elapsed < cfg.min_spacing_s:
            self.reports_suppressed += 1
            return False
        if elapsed >= cfg.period_s:
            self._record(now_s, measured_kbps)
            return True
        # Event trigger: significant relative change since the last report.
        assert self._last_reported_kbps is not None
        baseline = max(self._last_reported_kbps, 1e-9)
        change = abs(measured_kbps - baseline) / baseline
        if change >= cfg.significant_change:
            self._record(now_s, measured_kbps)
            return True
        self.reports_suppressed += 1
        return False

    def _record(self, now_s: float, kbps: float) -> None:
        self._last_report_time = now_s
        self._last_reported_kbps = kbps
        self.reports_sent += 1

    @property
    def last_reported_kbps(self) -> Optional[float]:
        """The most recently reported value, or None."""
        return self._last_reported_kbps
