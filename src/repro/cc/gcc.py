"""GCC-style sender-side bandwidth estimation.

GSO-Simulcast "rel[ies] on sender-side bandwidth estimation, which offers
better accuracy than receiver-side estimation" (Sec. 4.2) and uses
"transport-wide congestion control for its flexibility" (Sec. 7).  This
module implements the two halves of a Google-Congestion-Control-like
estimator working on transport-wide feedback:

* a **delay-based controller**: a trendline filter estimates the one-way
  queuing-delay gradient from (send, arrival) timestamp pairs; a growing
  gradient signals overuse and multiplicatively backs off toward the
  measured receive rate, otherwise the rate additively/multiplicatively
  increases;
* a **loss-based controller**: the RFC-style rule — back off by half the
  loss fraction above 10 % loss, hold between 2-10 %, increase below 2 %.

The final estimate is the minimum of the two, clamped to configured
bounds.  The paper's Sec. 7 lesson — GCC-like estimators *over-estimate* on
small streams because low rates never build a queue — emerges naturally
here, and :meth:`on_probe_result` implements the paper's fix: pacer-driven
probe bursts supply ground-truth capacity samples that cap the estimate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class FeedbackSample:
    """One acknowledged packet: when it was sent, when it arrived."""

    send_time_s: float
    arrival_time_s: float
    size_bytes: int


@dataclass
class GccConfig:
    """Tuning of the estimator (values follow the GCC draft's spirit)."""

    min_rate_kbps: float = 100.0
    max_rate_kbps: float = 10_000.0
    initial_rate_kbps: float = 1_000.0
    #: Initial/floor trendline slope threshold (s of delay growth per s)
    #: for overuse.  The live threshold adapts upward on noisy (jittery)
    #: paths, as in the GCC draft's adaptive detector, so random jitter
    #: does not masquerade as congestion.
    overuse_threshold: float = 0.01
    #: Adaptation gains of the live threshold (toward |slope|).
    threshold_gain_up: float = 0.12
    threshold_gain_down: float = 0.05
    #: Ceiling of the adaptive threshold.
    overuse_threshold_max: float = 0.25
    #: Multiplicative backoff applied to the receive rate on overuse.
    beta: float = 0.85
    #: Multiplicative increase per update in the far-from-capacity regime.
    eta: float = 1.08
    #: Additive increase (kbps) per update when near capacity.
    additive_kbps: float = 40.0
    #: Samples in the trendline window.
    window: int = 20
    #: Loss fraction above which the loss controller backs off.
    loss_high: float = 0.10
    #: Loss fraction below which the loss controller may increase.
    loss_low: float = 0.02
    #: Consecutive overuse detections required before backing off (real
    #: GCC's over-use detector also requires sustained overuse).
    overuse_persistence: int = 3
    #: Minimum spacing between two multiplicative backoffs, in arrival time.
    backoff_interval_s: float = 0.3
    #: Receive-rate measurement window (trailing, by arrival time).  Kept
    #: short so the backoff target tracks the *current* incoming rate (a
    #: long window lags behind rate upgrades and turns the first keyframe
    #: burst after an upgrade into a crash).
    receive_window_s: float = 0.5
    #: Absolute queuing delay (above the path's base delay) treated as
    #: overuse even when the delay *slope* is flat — a tail-drop queue
    #: pinned at its cap has zero slope but is maximally congested.
    queuing_overuse_s: float = 0.08


class TrendlineFilter:
    """Linear-regression slope of smoothed one-way delay over arrival time.

    This is the core of GCC's delay-based detector: the slope of the
    (arrival_time, accumulated_delay_change) cloud approximates the queuing
    delay derivative — positive when the bottleneck queue is filling.
    """

    def __init__(self, window: int = 20, smoothing: float = 0.9) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self._window = window
        self._smoothing = smoothing
        self._points: Deque[Tuple[float, float]] = deque(maxlen=window)
        self._prev: Optional[FeedbackSample] = None
        self._accumulated = 0.0
        self._smoothed = 0.0

    def update(self, sample: FeedbackSample) -> None:
        """Feed one acknowledged packet (must be in send order)."""
        if self._prev is not None:
            delta_arrival = sample.arrival_time_s - self._prev.arrival_time_s
            delta_send = sample.send_time_s - self._prev.send_time_s
            delay_change = delta_arrival - delta_send
            self._accumulated += delay_change
            self._smoothed = (
                self._smoothing * self._smoothed
                + (1 - self._smoothing) * self._accumulated
            )
            self._points.append((sample.arrival_time_s, self._smoothed))
        self._prev = sample

    def slope(self) -> Optional[float]:
        """Least-squares slope, or None until the window has 2+ points."""
        if len(self._points) < 2:
            return None
        n = len(self._points)
        mean_x = sum(x for x, _ in self._points) / n
        mean_y = sum(y for _, y in self._points) / n
        var = sum((x - mean_x) ** 2 for x, _ in self._points)
        if var == 0:
            return 0.0
        cov = sum((x - mean_x) * (y - mean_y) for x, y in self._points)
        return cov / var


class GccEstimator:
    """The combined delay + loss bandwidth estimator."""

    def __init__(self, config: Optional[GccConfig] = None) -> None:
        self.config = config or GccConfig()
        self._rate_kbps = self.config.initial_rate_kbps
        # The loss controller starts unconstrained; only actual loss reports
        # pull it below the delay-based estimate.
        self._loss_rate_kbps = self.config.max_rate_kbps
        self._trendline = TrendlineFilter(window=self.config.window)
        self._recent: Deque[FeedbackSample] = deque(maxlen=400)
        self._probe_cap_kbps: Optional[float] = None
        self.state = "normal"  # "normal" | "overuse" | "underuse"
        self._overuse_streak = 0
        self._last_backoff_arrival_s = float("-inf")
        self._threshold = self.config.overuse_threshold
        self._base_delay_s = float("inf")
        #: Recent (arrival_time, one-way delay) pairs for the windowed-min
        #: queuing measure.
        self._recent_delays: Deque[Tuple[float, float]] = deque(maxlen=200)


    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #

    def on_feedback(self, samples: Sequence[FeedbackSample]) -> None:
        """Process one transport-wide feedback batch (delay controller)."""
        if not samples:
            return
        for sample in samples:
            self._trendline.update(sample)
            self._recent.append(sample)
            delay = sample.arrival_time_s - sample.send_time_s
            self._base_delay_s = min(self._base_delay_s, delay)
            self._recent_delays.append((sample.arrival_time_s, delay))

        slope = self._trendline.slope()
        if slope is None:
            return
        cfg = self.config
        receive_rate = self._receive_rate_kbps()
        # Adaptive threshold (jitter tolerance): drift toward the observed
        # |slope| — fast when exceeded, slowly back down when calm.  Like
        # the GCC draft's detector, adaptation is skipped when the slope
        # overshoots the threshold by more than 4x: such spikes are genuine
        # congestion onsets, and raising the threshold on them would blind
        # the detector exactly when it is needed.
        err = abs(slope) - self._threshold
        if abs(slope) <= 4.0 * self._threshold:
            gain = cfg.threshold_gain_up if err > 0 else cfg.threshold_gain_down
            self._threshold = min(
                cfg.overuse_threshold_max,
                max(cfg.overuse_threshold, self._threshold + gain * err),
            )
        if slope > self._threshold or self.queuing_delay_s() > cfg.queuing_overuse_s:
            self.state = "overuse"
            self._overuse_streak += 1
            last_arrival = samples[-1].arrival_time_s
            sustained = self._overuse_streak >= cfg.overuse_persistence
            spaced = (
                last_arrival - self._last_backoff_arrival_s
                >= cfg.backoff_interval_s
            )
            if sustained and spaced:
                # One backoff never cuts more than half the current rate —
                # deep congestion still converges through repeated
                # backoffs, but a single noisy receive-rate sample cannot
                # crash the estimate.
                target = max(
                    cfg.beta * (receive_rate or self._rate_kbps),
                    0.5 * self._rate_kbps,
                )
                self._rate_kbps = min(self._rate_kbps, target)
                self._last_backoff_arrival_s = last_arrival
        elif slope < -self._threshold:
            # Queues are draining: hold and let them empty.
            self.state = "underuse"
            self._overuse_streak = 0
        else:
            self.state = "normal"
            self._overuse_streak = 0
            if receive_rate and self._rate_kbps > 1.5 * receive_rate:
                # Far above what actually arrives: additive creep only.
                self._rate_kbps += cfg.additive_kbps
            else:
                self._rate_kbps = (
                    self._rate_kbps * cfg.eta + cfg.additive_kbps * 0.1
                )
        self._clamp()

    def on_loss_report(self, loss_fraction: float) -> None:
        """Process a loss report (loss controller).

        Loss that arrives *without* delay growth is random path loss, not
        congestion (think radio links); backing off cannot fix it and the
        media layer repairs it with NACK/RTX instead.  Like libwebrtc's
        newer loss-based estimation, the backoff is therefore softened when
        the delay detector is not simultaneously in overuse.
        """
        if not 0 <= loss_fraction <= 1:
            raise ValueError(f"loss fraction out of range: {loss_fraction}")
        cfg = self.config
        if loss_fraction > cfg.loss_high:
            target = self._rate_kbps * (1 - 0.5 * loss_fraction)
            congested = (
                self.state == "overuse"
                or self.queuing_delay_s() > cfg.queuing_overuse_s
            )
            if congested and self._loss_cut_allowed():
                # Congestion loss: the delay controller may be blind when
                # the bottleneck queue is pinned at its cap (flat delay),
                # so pull the delay-based rate down too — but spaced like
                # delay backoffs (10 reports/s of compounding cuts would
                # crash the estimate to the floor within a second).
                self._rate_kbps = min(
                    self._rate_kbps, max(target, 0.5 * self._rate_kbps)
                )
                if self._recent:
                    self._last_backoff_arrival_s = self._recent[-1].arrival_time_s
            else:
                # Random path loss: repairable by NACK/RTX; backing off
                # cannot fix it, so only soften.
                target = max(target, 0.8 * self._rate_kbps)
            self._loss_rate_kbps = target
        elif loss_fraction < cfg.loss_low:
            self._loss_rate_kbps = max(
                self._loss_rate_kbps, self._rate_kbps
            ) * 1.05
        # else: hold.
        self._clamp()

    def on_probe_result(self, delivered_kbps: float, congested: bool) -> None:
        """Feed a pacer probe-burst outcome (the Sec. 7 over-estimation fix).

        Args:
            delivered_kbps: goodput the probe cluster achieved.
            congested: True when the probe saw delay growth or loss — then
                the delivered rate is treated as a capacity *ceiling*;
                otherwise it is evidence capacity is at least that high.
        """
        if delivered_kbps <= 0:
            return
        if congested:
            self._probe_cap_kbps = delivered_kbps
            self._rate_kbps = min(self._rate_kbps, delivered_kbps)
        else:
            self._probe_cap_kbps = None
            self._rate_kbps = max(self._rate_kbps, 0.85 * delivered_kbps)
        self._clamp()

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #

    def _loss_cut_allowed(self) -> bool:
        """Loss-driven rate cuts respect the same spacing as delay backoffs."""
        if not self._recent:
            return True
        return (
            self._recent[-1].arrival_time_s - self._last_backoff_arrival_s
            >= self.config.backoff_interval_s
        )

    def queuing_delay_s(self) -> float:
        """Standing queue above the path's base delay.

        Measured as the *minimum* one-way delay over the trailing window:
        random per-packet jitter leaves the minimum near the base delay,
        whereas a bottleneck queue pinned at its cap raises the delay of
        *every* packet — exactly the congestion/jitter discriminator the
        overuse and loss logic needs.
        """
        if not self._recent_delays or self._base_delay_s == float("inf"):
            return 0.0
        cutoff = self._recent_delays[-1][0] - 1.0
        window_min = min(
            (d for t, d in self._recent_delays if t >= cutoff),
            default=self._base_delay_s,
        )
        return max(0.0, window_min - self._base_delay_s)

    def peak_queuing_delay_s(self, window_s: float = 0.8) -> float:
        """High-quantile (p90) one-way delay above base, trailing window.

        Complements :meth:`queuing_delay_s` (a windowed *minimum*, robust
        to jitter): a probe burst that queued shifts the upper quantiles.
        A p90 rather than the maximum keeps heavy-tailed jitter (whose
        maxima grow with the sample count) from reading as congestion.
        """
        if not self._recent_delays or self._base_delay_s == float("inf"):
            return 0.0
        cutoff = self._recent_delays[-1][0] - window_s
        window = sorted(
            d for t, d in self._recent_delays if t >= cutoff
        )
        if not window:
            return 0.0
        p90 = window[min(len(window) - 1, int(0.9 * len(window)))]
        return max(0.0, p90 - self._base_delay_s)

    def typical_jitter_s(self) -> float:
        """The path's typical per-packet delay deviation.

        Computed as the *median* of |delay - base| over the retained
        samples: medians stay honest even when a probe burst or keyframe
        contaminates a third of the window with queueing delay, which an
        EWMA would absorb into the "typical" level.
        """
        if not self._recent_delays or self._base_delay_s == float("inf"):
            return 0.0
        deviations = sorted(
            abs(d - self._base_delay_s) for _, d in self._recent_delays
        )
        return deviations[len(deviations) // 2]

    def receive_rate_kbps(self) -> Optional[float]:
        """Public accessor for the trailing-window receive rate."""
        return self._receive_rate_kbps()

    @property
    def sample_count(self) -> int:
        """Feedback samples seen so far (probe-evaluation warm-up gate)."""
        return len(self._recent)

    def estimate_kbps(self) -> float:
        """The current bandwidth estimate (min of both controllers)."""
        estimate = min(self._rate_kbps, self._loss_rate_kbps)
        if self._probe_cap_kbps is not None:
            estimate = min(estimate, self._probe_cap_kbps)
        return max(self.config.min_rate_kbps, estimate)

    def _receive_rate_kbps(self) -> Optional[float]:
        """Goodput over the trailing receive window (by arrival time).

        Measuring over a fixed trailing window rather than "everything in
        the deque" keeps idle gaps between feedback batches from deflating
        the rate — a deflated rate would turn each backoff into a crash.
        """
        if len(self._recent) < 2:
            return None
        cutoff = self._recent[-1].arrival_time_s - self.config.receive_window_s
        window = [s for s in self._recent if s.arrival_time_s >= cutoff]
        if len(window) < 2:
            return None
        span = window[-1].arrival_time_s - window[0].arrival_time_s
        if span <= 0:
            return None
        total_bytes = sum(s.size_bytes for s in window[1:])
        return total_bytes * 8.0 / span / 1000.0

    def _clamp(self) -> None:
        cfg = self.config
        self._rate_kbps = min(max(self._rate_kbps, cfg.min_rate_kbps), cfg.max_rate_kbps)
        self._loss_rate_kbps = min(
            max(self._loss_rate_kbps, cfg.min_rate_kbps), cfg.max_rate_kbps
        )
