"""Pacer with probe bursts (Sec. 7, "Addressing bandwidth over-estimation").

Media packets are smoothed onto the wire at a small multiple of the target
bitrate instead of in per-frame bursts.  On top of pacing, the paper's fix
for GCC's small-stream over-estimation is implemented here: "we send
probing packets in short bursts controlled by a pacer to probe the
bandwidth upper bound", with the probing redundancy kept low to bound the
traffic overhead.

A probe cluster sends ``probe_packets`` padding packets at
``probe_rate_factor`` x the current estimate; the observed delivery rate
and congestion signals go back to the estimator via
:meth:`GccEstimator.on_probe_result`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from ..net.packet import Packet
from ..net.simulator import Simulator


@dataclass
class PacerConfig:
    """Pacing and probing knobs."""

    #: Pace at this multiple of the target bitrate (WebRTC uses 2.5 for
    #: bursts; a mild 1.5 keeps queues calm in steady state).
    pacing_factor: float = 1.5
    #: Packets per probe cluster.
    probe_packets: int = 15
    #: Probe at this multiple of the current estimate.
    probe_rate_factor: float = 2.0
    #: Bytes per probe padding packet.
    probe_packet_bytes: int = 500
    #: Minimum spacing between probe clusters (redundancy control).
    probe_min_interval_s: float = 5.0


class Pacer:
    """Rate-smoothing send queue feeding one uplink.

    Args:
        sim: the event loop.
        send: the raw transmit hook (typically ``link.send``).
        target_kbps: initial pacing target.
        config: pacing/probing configuration.
    """

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[Packet], None],
        target_kbps: float = 1000.0,
        config: Optional[PacerConfig] = None,
    ) -> None:
        if target_kbps <= 0:
            raise ValueError("target rate must be positive")
        self._sim = sim
        self._send = send
        self._target_kbps = target_kbps
        self.config = config or PacerConfig()
        self._queue: Deque[Packet] = deque()
        self._draining = False
        self._next_send_time = 0.0
        self._last_probe_time = -1e9
        self.sent_packets = 0
        self.sent_probe_packets = 0

    # ------------------------------------------------------------------ #
    # Media path
    # ------------------------------------------------------------------ #

    @property
    def target_kbps(self) -> float:
        """Current pacing target in kbps."""
        return self._target_kbps

    def set_target_kbps(self, value: float) -> None:
        """Update the pacing target."""
        if value <= 0:
            raise ValueError("target rate must be positive")
        self._target_kbps = value

    def enqueue(self, packet: Packet) -> None:
        """Queue a media packet for paced transmission."""
        self._queue.append(packet)
        if not self._draining:
            self._draining = True
            delay = max(0.0, self._next_send_time - self._sim.now)
            self._sim.schedule(delay, self._drain_one)

    def _drain_one(self) -> None:
        if not self._queue:
            self._draining = False
            return
        packet = self._queue.popleft()
        self._send(packet)
        self.sent_packets += 1
        pace_rate_kbps = self._target_kbps * self.config.pacing_factor
        gap = packet.size_bytes * 8.0 / (pace_rate_kbps * 1000.0)
        self._next_send_time = self._sim.now + gap
        if self._queue:
            self._sim.schedule(gap, self._drain_one)
        else:
            self._draining = False

    @property
    def queue_len(self) -> int:
        """Packets currently waiting in the pacer queue."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #

    def maybe_probe(
        self,
        estimate_kbps: float,
        make_probe: Callable[[int], Packet],
    ) -> bool:
        """Launch one probe cluster if the redundancy budget allows.

        Args:
            estimate_kbps: the estimator's current value; the cluster is
                paced at ``probe_rate_factor`` times it.
            make_probe: factory producing the k-th padding packet.

        Returns:
            True if a cluster was scheduled.
        """
        cfg = self.config
        if self._sim.now - self._last_probe_time < cfg.probe_min_interval_s:
            return False
        self._last_probe_time = self._sim.now
        probe_rate_kbps = max(estimate_kbps * cfg.probe_rate_factor, 1.0)
        gap = cfg.probe_packet_bytes * 8.0 / (probe_rate_kbps * 1000.0)
        for k in range(cfg.probe_packets):
            packet = make_probe(k)
            self._sim.schedule(k * gap, lambda p=packet: self._send_probe(p))
        return True

    def _send_probe(self, packet: Packet) -> None:
        self._send(packet)
        self.sent_probe_packets += 1
