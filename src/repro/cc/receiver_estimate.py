"""Receiver-side bandwidth estimation (the classic REMB-style estimator).

The paper argues sender-side estimation "offers better accuracy than
receiver-side estimation" (Sec. 4.2); the receiver-side variant is what
the receiver-driven competitor archetype runs.  It is intentionally the
cruder mechanism the industry used before TWCC:

* the estimate ramps multiplicatively over the measured incoming rate
  while loss is low (a receiver can only *see* traffic that was sent, so
  the estimate trails actual capacity);
* loss above a threshold multiplicatively decreases it;
* no delay-gradient signal at all — congestion is only visible once it
  turns into loss.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple


@dataclass
class ReceiverEstimatorConfig:
    """Tuning of the receiver-side estimator."""

    min_rate_kbps: float = 100.0
    max_rate_kbps: float = 10_000.0
    initial_rate_kbps: float = 800.0
    #: Estimate ceiling as a multiple of the measured incoming rate.
    incoming_multiple: float = 1.6
    #: Multiplicative ramp per update when healthy.
    ramp: float = 1.05
    #: Loss fraction above which the estimate backs off.
    loss_high: float = 0.10
    #: Incoming-rate measurement window.
    window_s: float = 1.0


class ReceiverEstimator:
    """Estimates the local downlink from incoming bytes + observed loss."""

    def __init__(self, config: Optional[ReceiverEstimatorConfig] = None) -> None:
        self.config = config or ReceiverEstimatorConfig()
        self._rate_kbps = self.config.initial_rate_kbps
        self._arrivals: Deque[Tuple[float, int]] = deque()

    def on_packet(self, size_bytes: int, now_s: float) -> None:
        """Record one arriving packet."""
        self._arrivals.append((now_s, size_bytes))
        cutoff = now_s - self.config.window_s
        while self._arrivals and self._arrivals[0][0] < cutoff:
            self._arrivals.popleft()

    def incoming_rate_kbps(self, now_s: float) -> float:
        """Measured incoming rate over the trailing window."""
        cutoff = now_s - self.config.window_s
        total = sum(b for t, b in self._arrivals if t >= cutoff)
        return total * 8.0 / self.config.window_s / 1000.0

    def update(self, loss_fraction: float, now_s: float) -> float:
        """Periodic update; returns the new estimate in kbps."""
        if not 0 <= loss_fraction <= 1:
            raise ValueError(f"loss fraction out of range: {loss_fraction}")
        cfg = self.config
        incoming = self.incoming_rate_kbps(now_s)
        if loss_fraction > cfg.loss_high:
            self._rate_kbps *= 1 - 0.5 * loss_fraction
        else:
            # A receiver can only validate what arrives: ramp, bounded by a
            # multiple of the incoming rate.
            ramped = self._rate_kbps * cfg.ramp
            if incoming > 0:
                ramped = min(ramped, cfg.incoming_multiple * incoming)
            self._rate_kbps = max(self._rate_kbps * 0.999, ramped)
        self._rate_kbps = min(
            max(self._rate_kbps, cfg.min_rate_kbps), cfg.max_rate_kbps
        )
        return self._rate_kbps

    def estimate_kbps(self) -> float:
        """The current bandwidth estimate in kbps."""
        return self._rate_kbps
