"""Congestion-control substrate: GCC-like estimation, TWCC, pacing, reports."""

from .gcc import FeedbackSample, GccConfig, GccEstimator, TrendlineFilter
from .pacer import Pacer, PacerConfig
from .receiver_estimate import ReceiverEstimator, ReceiverEstimatorConfig
from .reporting import ReportScheduler, ReportSchedulerConfig
from .twcc import TwccReceiver, TwccSender

__all__ = [
    "FeedbackSample",
    "GccConfig",
    "GccEstimator",
    "Pacer",
    "PacerConfig",
    "ReceiverEstimator",
    "ReceiverEstimatorConfig",
    "ReportScheduler",
    "ReportSchedulerConfig",
    "TrendlineFilter",
    "TwccReceiver",
    "TwccSender",
]
