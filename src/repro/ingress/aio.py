"""Deterministic async runtime on top of the discrete-event simulator.

The ingress plane is written as coroutines (mailbox consumers, a solve
executor), but wall-clock ``asyncio`` cannot give the repo's core
guarantee — *same seed, byte-identical run* — because its ready-queue
interleaving depends on host timing.  This module is the replacement: a
minimal awaitable vocabulary (:class:`SimFuture`, :class:`SimTask`,
:meth:`SimRuntime.sleep`) whose **every wakeup is routed through**
:meth:`repro.net.simulator.Simulator.schedule`.  The simulator's heap
orders callbacks by ``(time, insertion_seq)``, so coroutine interleaving
is a pure function of the event timeline — two runs of the same seeded
stream step their tasks in exactly the same order.

This is the same design trade ``asyncio``'s own test loops make
(virtual time, deterministic ready queue), specialized to the repo's
existing simulator so ingress, chaos and net code share one clock.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Callable,
    Coroutine,
    Deque,
    Generator,
    List,
    Optional,
)

from ..net.simulator import Simulator


class SimFuture:
    """A single-assignment result cell, awaitable from a :class:`SimTask`.

    The first ``set_result``/``set_exception`` wins; later calls are
    ignored (this is what makes racing a timer against a mailbox put
    safe — the loser's callback becomes a no-op).
    """

    __slots__ = ("_runtime", "_done", "_result", "_exc", "_callbacks")

    def __init__(self, runtime: "SimRuntime") -> None:
        self._runtime = runtime
        self._done = False
        self._result: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimFuture"], None]] = []

    @property
    def done(self) -> bool:
        """Whether a result or exception has been set."""
        return self._done

    def result(self) -> Any:
        """The resolved value (raises the stored exception, if any)."""
        if not self._done:
            raise RuntimeError("future is not done")
        if self._exc is not None:
            raise self._exc
        return self._result

    def set_result(self, value: Any = None) -> bool:
        """Resolve the future; returns False if it was already done."""
        if self._done:
            return False
        self._done = True
        self._result = value
        self._fire()
        return True

    def set_exception(self, exc: BaseException) -> bool:
        """Fail the future; returns False if it was already done."""
        if self._done:
            return False
        self._done = True
        self._exc = exc
        self._fire()
        return True

    def add_done_callback(
        self, callback: Callable[["SimFuture"], None]
    ) -> None:
        """Run ``callback(self)`` once resolved (immediately if done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __await__(self) -> Generator["SimFuture", None, Any]:
        if not self._done:
            yield self
        if self._exc is not None:
            raise self._exc
        return self._result


class SimTask(SimFuture):
    """A coroutine driven to completion by the simulator.

    Each step runs the coroutine until it awaits a pending
    :class:`SimFuture` (or finishes).  Wakeups never run inline: the
    awaited future's resolution schedules the next step through
    ``sim.schedule(0, ...)``, so sibling wakeups at one instant execute
    in deterministic insertion order.
    """

    __slots__ = ("_coro", "_name")

    def __init__(
        self,
        runtime: "SimRuntime",
        coro: Coroutine[Any, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(runtime)
        self._coro = coro
        self._name = name or getattr(coro, "__name__", "task")

    @property
    def name(self) -> str:
        """Diagnostic label of the task."""
        return self._name

    def _step(self) -> None:
        if self._done:
            self._coro.close()
            return
        try:
            awaited = self._coro.send(None)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 — stored, not hidden
            self.set_exception(exc)
            return
        if not isinstance(awaited, SimFuture):
            self.set_exception(
                TypeError(
                    f"task {self._name!r} awaited {type(awaited).__name__}; "
                    "only SimFuture/SimTask are awaitable on this runtime"
                )
            )
            return
        awaited.add_done_callback(self._wake)

    def _wake(self, _fut: SimFuture) -> None:
        self._runtime.sim.schedule(0.0, self._step)

    def cancel(self) -> bool:
        """Resolve the task without running it further."""
        return self.set_result(None)


class SimRuntime:
    """The task spawner/clock facade over one :class:`Simulator`."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim or Simulator()
        self.tasks: List[SimTask] = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.sim.now

    def future(self) -> SimFuture:
        """A fresh unresolved future bound to this runtime."""
        return SimFuture(self)

    def spawn(
        self, coro: Coroutine[Any, Any, Any], name: str = ""
    ) -> SimTask:
        """Schedule a coroutine; its first step runs at the current time."""
        task = SimTask(self, coro, name=name)
        self.tasks.append(task)
        self.sim.schedule(0.0, task._step)
        return task

    def sleep(self, delay_s: float) -> SimFuture:
        """An awaitable that resolves ``delay_s`` virtual seconds later."""
        fut = self.future()
        self.sim.schedule(max(0.0, delay_s), fut.set_result)
        return fut

    def call_at(self, at_s: float, callback: Callable[[], None]):
        """Schedule a plain callback at an absolute virtual time."""
        return self.sim.schedule_at(at_s, callback)

    def run_until(self, t_end_s: float) -> None:
        """Drive the simulator (and with it every task) to ``t_end_s``."""
        self.sim.run_until(t_end_s)

    def raise_task_errors(self) -> None:
        """Re-raise the first stored task exception, if any finished badly."""
        for task in self.tasks:
            if task.done and task._exc is not None:
                raise task._exc


class VirtualSemaphore:
    """A FIFO counting semaphore over :class:`SimFuture` waiters.

    Models the solve pool's bounded concurrency in virtual time: at most
    ``slots`` holders at once, waiters resumed strictly in arrival order
    (deterministic, unlike a wall-clock semaphore).
    """

    def __init__(self, runtime: SimRuntime, slots: int) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self._runtime = runtime
        self.slots = slots
        self._in_use = 0
        self._waiters: Deque[SimFuture] = deque()

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def waiting(self) -> int:
        """Acquirers currently queued."""
        return len(self._waiters)

    async def acquire(self) -> None:
        if self._in_use < self.slots:
            self._in_use += 1
            return
        fut = self._runtime.future()
        self._waiters.append(fut)
        await fut
        # the releaser transferred its slot to us; _in_use already counts it

    def release(self) -> None:
        if self._waiters:
            # hand the slot to the oldest waiter without decrementing
            self._waiters.popleft().set_result(None)
            return
        if self._in_use <= 0:
            raise RuntimeError("release() without a held slot")
        self._in_use -= 1
