"""Canonical run report of one ingress-plane run.

Same contract as the chaos :class:`~repro.chaos.report.RunReport`: every
field is simulated-time only, the JSON encoding is canonical (sorted
keys, fixed separators), and :meth:`IngressReport.digest` over it is the
byte-determinism check — two same-seed runs must produce identical
digests *and* identical event-log digests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Union

#: v2: the report embeds the assembled trace-plane digest and the
#: per-stage critical-path latency attribution.
REPORT_SCHEMA = "repro.ingress_report/v2"


@dataclass
class IngressReport:
    """Everything one ingress run observed, in canonical form.

    Attributes:
        seed: stream + world seed.
        duration_s: stream horizon in virtual seconds.
        config: the run's sizing knobs (for reproduction).
        totals: dispatcher/worker counters (offered, enqueued, coalesced,
            shed, dropped, delayed, decisions, idle refreshes).
        decisions_by_source: decision counts per serve source.
        decisions: every committed decision, in order: time, meeting,
            cid, trigger, source, batch size, solution digest, latency.
        latency: virtual decision-latency quantiles (p50/p95/max).
        checks: invariant evaluation counts.
        violations: failed invariant evaluations (empty on a healthy run).
        meetings: per-meeting closing summary (decisions, mailbox stats).
        events_total: structured events emitted during the run.
        event_digest: SHA-256 of the run's canonical event-log JSONL.
        trace_digest: SHA-256 of the trace plane assembled from the
            event log (``repro.obs.tracing``).
        stages: per-stage critical-path attribution — span count and
            total attributed virtual seconds per stage name.
    """

    seed: int
    duration_s: float
    config: Dict[str, Union[int, float, str, bool]] = field(
        default_factory=dict
    )
    totals: Dict[str, int] = field(default_factory=dict)
    decisions_by_source: Dict[str, int] = field(default_factory=dict)
    decisions: List[dict] = field(default_factory=list)
    latency: Dict[str, float] = field(default_factory=dict)
    checks: Dict[str, int] = field(default_factory=dict)
    violations: List[dict] = field(default_factory=list)
    meetings: Dict[str, dict] = field(default_factory=dict)
    events_total: int = 0
    event_digest: str = ""
    trace_digest: str = ""
    stages: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def to_dict(self) -> dict:
        """The full canonical encoding."""
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "config": dict(sorted(self.config.items())),
            "totals": dict(sorted(self.totals.items())),
            "decisions_by_source": dict(
                sorted(self.decisions_by_source.items())
            ),
            "decisions": self.decisions,
            "latency": {k: self.latency[k] for k in sorted(self.latency)},
            "checks": dict(sorted(self.checks.items())),
            "violations": self.violations,
            "meetings": {k: self.meetings[k] for k in sorted(self.meetings)},
            "events_total": self.events_total,
            "event_digest": self.event_digest,
            "trace_digest": self.trace_digest,
            "stages": {k: self.stages[k] for k in sorted(self.stages)},
            "ok": self.ok,
        }

    def to_json(self) -> str:
        """Canonical JSON: the byte string the digest is computed over."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON encoding."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def summary(self) -> str:
        """Human-readable one-screen summary."""
        totals = dict(sorted(self.totals.items()))
        lines = [
            f"ingress run: seed={self.seed} duration={self.duration_s:g}s "
            f"-> {'OK' if self.ok else 'VIOLATIONS'}",
            f"  events offered: {totals.get('offered', 0)} "
            f"(dropped {totals.get('dropped', 0)}, "
            f"delayed {totals.get('delayed', 0)})",
            f"  decisions: {totals.get('decisions', 0)} "
            f"{self.decisions_by_source} "
            f"(coalesced {totals.get('coalesced', 0)}, "
            f"shed {totals.get('shed', 0)})",
            f"  latency (virtual): p50={self.latency.get('p50_s', 0.0):.3f}s "
            f"p95={self.latency.get('p95_s', 0.0):.3f}s "
            f"max={self.latency.get('max_s', 0.0):.3f}s",
            f"  invariant checks: {dict(sorted(self.checks.items()))}",
        ]
        if self.events_total:
            lines.append(
                f"  events: {self.events_total} "
                f"digest={self.event_digest[:12]}…"
            )
        if self.trace_digest:
            shares = " ".join(
                f"{stage}={info.get('total_s', 0.0):.3f}s"
                for stage, info in sorted(self.stages.items())
            )
            lines.append(
                f"  traces: digest={self.trace_digest[:12]}… {shares}"
            )
        if self.violations:
            lines.append(f"  VIOLATIONS: {len(self.violations)}")
            for violation in self.violations[:5]:
                lines.append(
                    f"    [{violation.get('at_s', 0)}s] "
                    f"{violation.get('meeting', '?')}: "
                    f"{violation.get('invariant', '?')} — "
                    f"{violation.get('detail', '')}"
                )
        return "\n".join(lines)
