"""Per-meeting bounded mailboxes: the ingress demand buffer.

One mailbox per meeting, one consumer coroutine per mailbox.  The box is
FIFO within its meeting (ingress replays stay causal) and **bounded**:
when a put would exceed capacity, the *oldest* entry is evicted —
newest-snapshot-wins, the same coalescing discipline the shard
scheduler applies to its pending slot — and the overflow is flagged so
the consumer can shed its next decision instead of pretending it kept
up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from .aio import SimFuture, SimRuntime
from .events import StreamEvent

#: Sentinel a timed-out ``get`` resolves to internally.
_TIMEOUT = object()


@dataclass
class MailboxStats:
    """Lifetime accounting of one mailbox."""

    enqueued: int = 0
    dequeued: int = 0
    evicted: int = 0
    max_depth: int = 0


@dataclass
class Envelope:
    """One queued event plus its ingress-minted correlation id."""

    event: StreamEvent
    cid: str = ""


class Mailbox:
    """A bounded FIFO of :class:`Envelope` with one awaiting consumer."""

    def __init__(self, runtime: SimRuntime, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._runtime = runtime
        self.capacity = capacity
        self._items: Deque[Envelope] = deque()
        self._waiter: Optional[SimFuture] = None
        #: Set when an eviction happened since the consumer last drained.
        self.overflowed = False
        self.stats = MailboxStats()

    @property
    def depth(self) -> int:
        """Entries currently queued."""
        return len(self._items)

    def put(self, envelope: Envelope) -> Optional[Envelope]:
        """Enqueue; returns the evicted envelope when the box was full."""
        evicted: Optional[Envelope] = None
        if len(self._items) >= self.capacity:
            evicted = self._items.popleft()
            self.stats.evicted += 1
            self.overflowed = True
        self._items.append(envelope)
        self.stats.enqueued += 1
        self.stats.max_depth = max(self.stats.max_depth, len(self._items))
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.set_result(None)
        return evicted

    async def get(self, timeout_s: Optional[float] = None) -> Optional[Envelope]:
        """Dequeue the oldest envelope; ``None`` on timeout.

        At most one consumer may wait at a time (each meeting has exactly
        one worker coroutine).
        """
        while True:
            if self._items:
                envelope = self._items.popleft()
                self.stats.dequeued += 1
                return envelope
            if self._waiter is not None:
                raise RuntimeError("mailbox already has a waiting consumer")
            fut = self._runtime.future()
            self._waiter = fut
            handle = None
            if timeout_s is not None:
                handle = self._runtime.sim.schedule(
                    timeout_s, lambda: fut.set_result(_TIMEOUT)
                )
            value = await fut
            if self._waiter is fut:
                self._waiter = None
            if value is _TIMEOUT:
                return None
            if handle is not None:
                self._runtime.sim.cancel(handle)
            # a put arrived; loop back and pop it

    def drain(self) -> List[Envelope]:
        """Pop everything queued right now (the coalesce window closes)."""
        out = list(self._items)
        self._items.clear()
        self.stats.dequeued += len(out)
        return out

    def take_overflow(self) -> bool:
        """Read-and-clear the overflow flag (consumed per decision)."""
        flag = self.overflowed
        self.overflowed = False
        return flag
