"""Event-driven ingress: the continuous SEMB/TMMBR control plane.

Public surface of the subsystem (see ``docs/INGRESS.md``):

- :mod:`repro.ingress.aio` — deterministic coroutine runtime on the
  discrete-event simulator (:class:`SimRuntime`, :class:`SimFuture`,
  :class:`VirtualSemaphore`).
- :mod:`repro.ingress.events` — the typed stream vocabulary and the
  seeded stream generator.
- :mod:`repro.ingress.mailbox` — per-meeting bounded mailboxes.
- :mod:`repro.ingress.faults` — delayed/dropped SEMB injected into the
  event stream itself.
- :mod:`repro.ingress.plane` — dispatcher, per-meeting workers,
  backpressure ladder and the bounded solve executor.
- :mod:`repro.ingress.run` — seeded end-to-end runs with invariant
  checks and a canonical byte-deterministic report.
"""

from .aio import SimFuture, SimRuntime, SimTask, VirtualSemaphore
from .events import (
    ALL_STREAM_KINDS,
    LinkEstimate,
    PublisherJoin,
    PublisherLeave,
    SembReport,
    StreamConfig,
    StreamEvent,
    SubscriptionChange,
    generate_stream,
    sort_stream,
)
from .faults import (
    DELAY_SEMB,
    DROP_SEMB,
    StreamFault,
    StreamFaultInjector,
    from_fault_schedule,
)
from .mailbox import Envelope, Mailbox, MailboxStats
from .plane import (
    BackendDecision,
    ClusterBackend,
    Decision,
    IngressBackend,
    IngressConfig,
    IngressPlane,
    PlaneStats,
)
from .report import IngressReport
from .run import IngressRunConfig, run_ingress

__all__ = [
    "ALL_STREAM_KINDS",
    "BackendDecision",
    "ClusterBackend",
    "Decision",
    "DELAY_SEMB",
    "DROP_SEMB",
    "Envelope",
    "IngressBackend",
    "IngressConfig",
    "IngressPlane",
    "IngressReport",
    "IngressRunConfig",
    "LinkEstimate",
    "Mailbox",
    "MailboxStats",
    "PlaneStats",
    "PublisherJoin",
    "PublisherLeave",
    "SembReport",
    "SimFuture",
    "SimRuntime",
    "SimTask",
    "StreamConfig",
    "StreamEvent",
    "StreamFault",
    "StreamFaultInjector",
    "SubscriptionChange",
    "VirtualSemaphore",
    "from_fault_schedule",
    "generate_stream",
    "run_ingress",
    "sort_stream",
]
