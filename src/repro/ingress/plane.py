"""The ingress plane: a continuous, event-driven control loop.

This is the tentpole of the ingress subsystem.  Where the round-based
cluster loop (:meth:`~repro.cluster.cluster.ControllerCluster.tick`)
polls every shard on a fixed cadence, the plane reacts to the stream
itself:

1. **Dispatch.**  Every :class:`~repro.ingress.events.StreamEvent` is
   offered to a per-meeting bounded :class:`~repro.ingress.mailbox.Mailbox`.
   The offer mints a PR 4 correlation id and emits ``ingress_enqueued``;
   stream faults (:mod:`repro.ingress.faults`) drop or re-schedule the
   offer before it reaches a mailbox.
2. **Coalesce + backpressure.**  A per-meeting worker coroutine opens a
   decision window on the first event and sleeps
   :meth:`~repro.cluster.scheduler.SolveScheduler.backpressure_window_s`
   — the Fig. 12 envelope reused as the backpressure ladder.  The deeper
   the mailbox, the wider the window, the more events one solve absorbs.
3. **Shed.**  The ladder's last rung: a mailbox that overflowed, or an
   executor already at the admission budget, degrades the decision to
   the Sec. 7 ``single_stream_fallback`` via the backend's shed path.
4. **Execute.**  Admitted decisions acquire an executor slot
   (:class:`~repro.ingress.aio.VirtualSemaphore` around the cluster's
   solve pool), spend a deterministic virtual service time, and commit.
   In-flight solves overlap with ingestion — the dispatcher never
   blocks on a solve.
5. **Complete.**  The commit emits a ``tmmbr_push`` completion event
   carrying the decision's correlation id (the id minted for the oldest
   event in the drained batch), closing the causal chain end-to-end.

Everything runs on the deterministic :class:`~repro.ingress.aio.SimRuntime`:
same seed, same stream, same interleaving — byte-identical event logs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..obs import events as obs_events
from ..obs import names as obs_names
from ..obs.registry import get_registry
from ..obs.spans import span
from .aio import SimRuntime, VirtualSemaphore
from .events import (
    KIND_JOIN,
    KIND_LEAVE,
    KIND_LINK,
    KIND_SEMB,
    KIND_SUBSCRIPTION,
    StreamEvent,
)
from .faults import DELAY, DROP, StreamFaultInjector
from .mailbox import Envelope, Mailbox

#: Decision outcomes (the ``source`` values a backend may report, matching
#: the cluster's serve sources).
OUTCOME_SHED = "shed"

#: Shed reasons (the ``reason`` label of ``repro_ingress_shed_total``).
SHED_OVERFLOW = "overflow"
SHED_ADMISSION = "admission"


@dataclass
class IngressConfig:
    """Tuning of one ingress plane."""

    #: Bounded per-meeting mailbox capacity; overflow evicts the oldest
    #: event and forces the next decision onto the shed rung.
    mailbox_capacity: int = 16
    #: Concurrent executor slots (solves in flight at once).
    solve_slots: int = 4
    #: Virtual seconds of solve service per unit of meeting cost.
    service_s_per_cost: float = 1e-6
    #: Floor on virtual solve service time (every solve takes > 0 time,
    #: so in-flight solves genuinely overlap with ingestion).
    service_floor_s: float = 0.002
    #: Keep idle meetings refreshed on the Fig. 12 max-interval ceiling.
    idle_refresh: bool = True
    #: Extra virtual time after the last stream event for in-flight
    #: decisions (and one trailing refresh window) to drain.
    drain_s: float = 4.0

    def __post_init__(self) -> None:
        if self.mailbox_capacity < 1:
            raise ValueError("mailbox_capacity must be >= 1")
        if self.solve_slots < 1:
            raise ValueError("solve_slots must be >= 1")
        if self.service_s_per_cost < 0 or self.service_floor_s < 0:
            raise ValueError("service times must be non-negative")
        if self.drain_s < 0:
            raise ValueError("drain_s must be non-negative")


@dataclass
class Decision:
    """One committed configuration decision of the ingress plane."""

    meeting: str
    #: Correlation id of the oldest event in the drained batch — the id
    #: that travels to the ``tmmbr_push`` completion event.
    cid: str
    #: Virtual time the decision window opened (oldest event offer).
    opened_at_s: float
    #: Virtual time the configuration committed (TMMBR push).
    decided_at_s: float
    #: Events folded into this decision.
    batch: int
    trigger: str
    #: solve / cache / fallback / shed (the backend's serve source).
    source: str
    #: Canonical digest of the served solution (parity checks).
    digest: str
    #: Backend-specific payload the decision solved (e.g. a Problem).
    payload: object = None
    #: Backend-specific solution object (e.g. a Solution).
    solution: object = None

    @property
    def latency_s(self) -> float:
        """Virtual seconds from window open to committed configuration."""
        return self.decided_at_s - self.opened_at_s


@dataclass
class PlaneStats:
    """Dispatcher/worker accounting of one plane run."""

    offered: int = 0
    enqueued: int = 0
    evicted: int = 0
    dropped: int = 0
    delayed: int = 0
    decisions: int = 0
    coalesced: int = 0
    shed_overflow: int = 0
    shed_admission: int = 0
    idle_refreshes: int = 0
    max_mailbox_depth: int = 0

    @property
    def shed(self) -> int:
        return self.shed_overflow + self.shed_admission


class IngressBackend:
    """What the plane needs from a decision engine (duck-typed protocol).

    :class:`ClusterBackend` adapts the real :class:`ControllerCluster`;
    :class:`~repro.deploy.ingress_stream.ModeledBackend` implements the
    same surface with the fleet cost model for 10^5-user benchmarks.
    """

    #: Fig. 12 envelope the plane paces itself with.
    min_interval_s: float = 1.0
    max_interval_s: float = 3.0

    def apply_event(self, event: StreamEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def payload(self, meeting: str) -> object:  # pragma: no cover
        raise NotImplementedError

    def service_s(self, meeting: str, payload: object) -> float:
        raise NotImplementedError  # pragma: no cover

    def backpressure_window_s(
        self, meeting: str, depth: int, capacity: int
    ) -> float:  # pragma: no cover
        raise NotImplementedError

    def over_budget(self, meeting: str, in_flight: int) -> bool:
        raise NotImplementedError  # pragma: no cover

    def decide(
        self, meeting: str, payload: object, now_s: float, trigger: str,
        cid: str,
    ) -> "BackendDecision":  # pragma: no cover
        raise NotImplementedError

    def shed(
        self, meeting: str, payload: object, now_s: float, trigger: str,
        cid: str,
    ) -> "BackendDecision":  # pragma: no cover
        raise NotImplementedError


@dataclass
class BackendDecision:
    """What a backend reports back for one committed decision."""

    source: str
    digest: str = ""
    solution: object = None


class ClusterBackend(IngressBackend):
    """Adapts a :class:`ControllerCluster` + :class:`ChaosWorld` pair.

    Events mutate the world at offer time (the world *is* the clients'
    state; a dropped decision does not undo a bandwidth collapse), and
    decisions solve the freshest world snapshot — exactly the snapshot
    the newest batched event produced, since every mutation of a meeting
    flows through that meeting's mailbox.
    """

    def __init__(self, cluster, world) -> None:
        self.cluster = cluster
        self.world = world
        self.min_interval_s = cluster.config.min_interval_s
        self.max_interval_s = cluster.config.max_interval_s

    # -- world mutation at offer time --------------------------------- #

    def apply_event(self, event: StreamEvent) -> None:
        state = self.world.meeting(event.meeting)
        if event.kind == KIND_SEMB:
            return  # a report carries the picture; it does not change it
        if event.kind == KIND_LINK:
            client = event.client if event.client in state.clients else ""
            self.world.scale_bandwidth(
                event.meeting,
                client,
                up_scale=event.up_scale,
                down_scale=event.down_scale,
            )
        elif event.kind == KIND_SUBSCRIPTION:
            client = event.client if event.client in state.clients else ""
            self.world.toggle_preference(event.meeting, client)
        elif event.kind == KIND_JOIN:
            self.world.add_client(event.meeting)
        elif event.kind == KIND_LEAVE:
            self.world.remove_client(event.meeting)

    # -- decision side -------------------------------------------------- #

    def payload(self, meeting: str) -> object:
        return self.world.current_problem(meeting)

    def service_s(self, meeting: str, payload: object) -> float:
        from ..placement.loadmodel import meeting_cost

        cost = meeting_cost(payload)
        cfg = _plane_config(self)
        return max(cfg.service_floor_s, cost * cfg.service_s_per_cost)

    def backpressure_window_s(
        self, meeting: str, depth: int, capacity: int
    ) -> float:
        shard = self.cluster.register(meeting)
        worker = self.cluster._shards[shard]
        return worker.scheduler.backpressure_window_s(depth, capacity)

    def over_budget(self, meeting: str, in_flight: int) -> bool:
        shard = self.cluster.register(meeting)
        worker = self.cluster._shards[shard]
        return worker.admission.over_budget(in_flight)

    def decide(self, meeting, payload, now_s, trigger, cid):
        served = self.cluster.solve_request(
            meeting, payload, now_s, trigger=trigger, correlation_id=cid
        )
        return BackendDecision(
            source=served.source,
            digest=_solution_digest(served.solution),
            solution=served.solution,
        )

    def shed(self, meeting, payload, now_s, trigger, cid):
        served = self.cluster.shed_request(
            meeting, payload, now_s, trigger=trigger, correlation_id=cid
        )
        return BackendDecision(
            source=served.source,
            digest=_solution_digest(served.solution),
            solution=served.solution,
        )


def _solution_digest(solution) -> str:
    from ..chaos.report import solution_digest

    return solution_digest(solution)


def _plane_config(backend) -> IngressConfig:
    """The config of the plane a backend is mounted on (set by the plane)."""
    return getattr(backend, "_plane_config", None) or IngressConfig()


class IngressPlane:
    """Dispatcher + per-meeting workers + bounded executor, on virtual time."""

    def __init__(
        self,
        runtime: SimRuntime,
        backend: IngressBackend,
        config: Optional[IngressConfig] = None,
    ) -> None:
        self.runtime = runtime
        self.backend = backend
        self.config = config or IngressConfig()
        backend._plane_config = self.config
        self.stats = PlaneStats()
        self.decisions: List[Decision] = []
        self.injector: Optional[StreamFaultInjector] = None
        self._mailboxes: Dict[str, Mailbox] = {}
        self._executor = VirtualSemaphore(runtime, self.config.solve_slots)
        self._last_decision_s: Dict[str, float] = {}
        self._seen_payload: Dict[str, bool] = {}
        self._stop_at_s = float("inf")

    # ------------------------------------------------------------------ #
    # Dispatch (the ingress side)
    # ------------------------------------------------------------------ #

    def offer(self, event: StreamEvent) -> None:
        """Offer one stream event to its meeting's mailbox, now."""
        now = self.runtime.now
        self.stats.offered += 1
        reg = get_registry()
        if reg.enabled:
            reg.counter(obs_names.INGRESS_EVENTS, kind=event.kind).inc()
        self.backend.apply_event(event)
        box = self._mailbox(event.meeting)
        log = obs_events.active_event_log()
        cid = log.mint(event.meeting) if log is not None else ""
        evicted = box.put(Envelope(event=event, cid=cid))
        self.stats.enqueued += 1
        if evicted is not None:
            self.stats.evicted += 1
        depth = box.depth
        self.stats.max_mailbox_depth = max(self.stats.max_mailbox_depth, depth)
        if reg.enabled:
            reg.histogram(obs_names.INGRESS_MAILBOX_DEPTH).observe(depth)
        if log is not None:
            log.emit(
                obs_events.INGRESS_ENQUEUED,
                t=now,
                meeting=event.meeting,
                cid=cid,
                event_kind=event.kind,
                depth=depth,
                seq=event.seq,
            )

    def _offer_faulted(self, event: StreamEvent) -> None:
        """Dispatcher entry for scheduled stream events (fault-aware)."""
        now = self.runtime.now
        disposition, extra = (
            self.injector.disposition(event)
            if self.injector is not None
            else ("deliver", 0.0)
        )
        reg = get_registry()
        log = obs_events.active_event_log()
        if disposition == DROP:
            self.stats.dropped += 1
            if reg.enabled:
                reg.counter(obs_names.INGRESS_DROPPED_EVENTS).inc()
            if log is not None:
                log.emit(
                    obs_events.FAULT_INJECTED,
                    t=now,
                    meeting=event.meeting,
                    fault="drop_semb",
                    seq=event.seq,
                )
            return
        if disposition == DELAY:
            self.stats.delayed += 1
            if reg.enabled:
                reg.counter(obs_names.INGRESS_DELAYED_EVENTS).inc()
            if log is not None:
                log.emit(
                    obs_events.FAULT_INJECTED,
                    t=now,
                    meeting=event.meeting,
                    fault="delay_semb",
                    delay_s=round(extra, 6),
                    seq=event.seq,
                )
            self.runtime.sim.schedule(extra, lambda e=event: self.offer(e))
            return
        self.offer(event)

    def run_stream(
        self,
        events: Sequence[StreamEvent],
        faults: Optional[StreamFaultInjector] = None,
        duration_s: Optional[float] = None,
    ) -> None:
        """Schedule a whole stream and run it (plus drain) to completion.

        Equal-time offers keep stream order: they are scheduled in stream
        order up front and the simulator breaks time ties by insertion
        sequence.
        """
        self.injector = faults
        horizon = 0.0
        for event in events:
            horizon = max(horizon, event.at_s)
            self.runtime.call_at(
                event.at_s, lambda e=event: self._offer_faulted(e)
            )
        if duration_s is not None:
            horizon = max(horizon, duration_s)
        self._stop_at_s = horizon
        self.runtime.run_until(horizon + self.config.drain_s)
        self.runtime.raise_task_errors()

    # ------------------------------------------------------------------ #
    # Per-meeting decision workers
    # ------------------------------------------------------------------ #

    def _mailbox(self, meeting: str) -> Mailbox:
        box = self._mailboxes.get(meeting)
        if box is None:
            box = Mailbox(self.runtime, capacity=self.config.mailbox_capacity)
            self._mailboxes[meeting] = box
            self.runtime.spawn(
                self._worker(meeting, box), name=f"worker:{meeting}"
            )
        return box

    async def _worker(self, meeting: str, box: Mailbox) -> None:
        backend = self.backend
        while True:
            timeout = (
                backend.max_interval_s if self.config.idle_refresh else None
            )
            env = await box.get(timeout_s=timeout)
            now = self.runtime.now
            if env is None:
                # Fig. 12 ceiling: idle refresh from the last snapshot.
                if now > self._stop_at_s:
                    return
                if not self._seen_payload.get(meeting):
                    continue
                self.stats.idle_refreshes += 1
                await self._decide(meeting, box, batch=[], opened_at_s=now)
                continue
            if now > self._stop_at_s and env.event.kind == KIND_SEMB:
                # Past the stream horizon only mutations still commit.
                continue
            # Open a decision window: widen with depth (the envelope as a
            # backpressure ladder), floored at the Fig. 12 min interval.
            window = backend.backpressure_window_s(
                meeting, box.depth + 1, self.config.mailbox_capacity
            )
            last = self._last_decision_s.get(meeting)
            if last is not None:
                window = max(window, last + backend.min_interval_s - now)
            await self.runtime.sleep(window)
            batch = [env] + box.drain()
            await self._decide(
                meeting, box, batch=batch, opened_at_s=env.event.at_s
            )

    async def _decide(
        self,
        meeting: str,
        box: Mailbox,
        batch: List[Envelope],
        opened_at_s: float,
    ) -> None:
        runtime = self.runtime
        backend = self.backend
        reg = get_registry()
        log = obs_events.active_event_log()
        now = runtime.now
        if batch:
            trigger = "event"
            cid = batch[0].cid
        else:
            trigger = "time"
            # Capture the predecessor cid before minting so the refresh
            # chain links to the decision it refreshes (trace lineage).
            parent = log.last_cid(meeting) if log is not None else ""
            cid = log.mint(meeting) if log is not None else ""
            if log is not None:
                attrs = {"parent_cid": parent} if parent else {}
                log.emit(
                    obs_events.TIME_TRIGGER,
                    t=now,
                    meeting=meeting,
                    cid=cid,
                    **attrs,
                )
        coalesced = max(0, len(batch) - 1)
        if coalesced:
            self.stats.coalesced += coalesced
            if reg.enabled:
                reg.counter(obs_names.INGRESS_COALESCED).inc(coalesced)
        if log is not None and batch:
            log.emit(
                obs_events.INGRESS_DEQUEUED,
                t=now,
                meeting=meeting,
                cid=cid,
                batch=len(batch),
                coalesced=coalesced,
            )
        payload = backend.payload(meeting)
        self._seen_payload[meeting] = True
        overflowed = box.take_overflow()
        shed_reason = ""
        if overflowed:
            shed_reason = SHED_OVERFLOW
        elif backend.over_budget(
            meeting, self._executor.in_use + self._executor.waiting
        ):
            shed_reason = SHED_ADMISSION
        with span(obs_names.SPAN_INGRESS_DECIDE):
            if shed_reason:
                if shed_reason == SHED_OVERFLOW:
                    self.stats.shed_overflow += 1
                else:
                    self.stats.shed_admission += 1
                if reg.enabled:
                    reg.counter(
                        obs_names.INGRESS_SHED, reason=shed_reason
                    ).inc()
                if log is not None:
                    log.emit(
                        obs_events.INGRESS_SHED,
                        t=now,
                        meeting=meeting,
                        cid=cid,
                        reason=shed_reason,
                    )
                result = backend.shed(meeting, payload, now, trigger, cid)
            else:
                await self._executor.acquire()
                try:
                    await runtime.sleep(backend.service_s(meeting, payload))
                    result = backend.decide(
                        meeting, payload, runtime.now, trigger, cid
                    )
                finally:
                    self._executor.release()
        decided_at = runtime.now
        decision = Decision(
            meeting=meeting,
            cid=cid,
            opened_at_s=opened_at_s,
            decided_at_s=decided_at,
            batch=len(batch),
            trigger=trigger,
            source=result.source,
            digest=result.digest,
            payload=payload,
            solution=result.solution,
        )
        self.decisions.append(decision)
        self.stats.decisions += 1
        self._last_decision_s[meeting] = decided_at
        if reg.enabled:
            reg.histogram(obs_names.INGRESS_DECISION_SECONDS).observe(
                decision.latency_s
            )
        if log is not None:
            log.emit(
                obs_events.TMMBR_PUSH,
                t=decided_at,
                meeting=meeting,
                cid=cid,
                source=result.source,
                latency_s=round(decision.latency_s, 6),
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def meetings(self) -> List[str]:
        """Meetings with a live mailbox, sorted."""
        return sorted(self._mailboxes)

    def mailbox_stats(self) -> Dict[str, object]:
        """Aggregate mailbox accounting across meetings."""
        return {
            meeting: {
                "enqueued": box.stats.enqueued,
                "dequeued": box.stats.dequeued,
                "evicted": box.stats.evicted,
                "max_depth": box.stats.max_depth,
            }
            for meeting, box in sorted(self._mailboxes.items())
        }

    def latency_percentile_s(self, q: float) -> float:
        """Nearest-rank percentile of virtual decision latency."""
        if not self.decisions:
            return 0.0
        latencies = sorted(d.latency_s for d in self.decisions)
        rank = max(1, math.ceil(q * len(latencies)))
        return latencies[min(len(latencies), rank) - 1]
