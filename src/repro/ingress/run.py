"""The ingress runner: seeded end-to-end runs of the event-driven plane.

The entry point behind ``repro ingress run`` and the ingress test suite:
build a seeded :class:`~repro.chaos.world.ChaosWorld`, generate its
event stream, drive it through an :class:`~repro.ingress.plane.IngressPlane`
mounted on a real :class:`~repro.cluster.cluster.ControllerCluster`, check
every committed configuration against the chaos invariants, and fold the
whole run into a canonical :class:`~repro.ingress.report.IngressReport`.

Byte-determinism contract: two calls with the same config (and fault
set) produce identical report digests *and* identical event-log digests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from ..cluster import ClusterConfig, ControllerCluster
from ..core.engine import default_mckp_cache
from ..core.solver import SolverConfig
from ..obs import events as obs_events
from ..obs import names as obs_names
from ..obs.events import EventLog
from ..obs.spans import span
from ..obs.tracing import assemble_trees
from ..chaos.invariants import InvariantChecker
from ..chaos.world import ChaosWorld
from .aio import SimRuntime
from .events import StreamConfig, generate_stream
from .faults import StreamFault, StreamFaultInjector
from .plane import ClusterBackend, IngressConfig, IngressPlane
from .report import IngressReport


@dataclass
class IngressRunConfig:
    """Sizing of one seeded ingress run."""

    seed: int = 0
    meetings: int = 4
    mean_size: float = 5.0
    duration_s: float = 10.0
    report_interval_s: float = 1.0
    mutations_per_meeting: float = 2.0
    shards: int = 2
    mailbox_capacity: int = 8
    solve_slots: int = 4
    cache_capacity: int = 256
    max_solves_per_round: int = 64

    def to_dict(self) -> dict:
        return dict(sorted(asdict(self).items()))


def run_ingress(
    config: Optional[IngressRunConfig] = None,
    faults: Sequence[StreamFault] = (),
    events_out: Optional[EventLog] = None,
) -> IngressReport:
    """Execute one seeded ingress run and return its canonical report.

    Args:
        config: run sizing (defaults throughout).
        faults: stream fault windows (delayed / dropped SEMB).
        events_out: optional pre-built event log to record into (kept by
            callers that render timelines afterwards).
    """
    cfg = config or IngressRunConfig()
    # Hermetic seeded runs: drop the process-wide MCKP instance cache so
    # a double run replays the identical hit/miss pattern.
    default_mckp_cache().clear()
    world = ChaosWorld(
        seed=cfg.seed, meetings=cfg.meetings, mean_size=cfg.mean_size
    )
    cluster = ControllerCluster(
        ClusterConfig(
            shards=cfg.shards,
            min_interval_s=cfg.report_interval_s,
            max_interval_s=3.0 * cfg.report_interval_s,
            cache_capacity=cfg.cache_capacity,
            max_solves_per_round=cfg.max_solves_per_round,
            pool_workers=0,
            solver=SolverConfig(granularity_kbps=25),
        )
    )
    runtime = SimRuntime()
    log = events_out if events_out is not None else EventLog()
    injector = StreamFaultInjector(faults)
    stream = generate_stream(
        cfg.seed,
        world,
        StreamConfig(
            duration_s=cfg.duration_s,
            report_interval_s=cfg.report_interval_s,
            mutations_per_meeting=cfg.mutations_per_meeting,
        ),
    )
    try:
        with span(obs_names.SPAN_INGRESS_RUN), \
                obs_events.record_events(log):
            for meeting_id in world.meeting_ids:
                cluster.register(meeting_id)
            backend = ClusterBackend(cluster, world)
            plane = IngressPlane(
                runtime,
                backend,
                IngressConfig(
                    mailbox_capacity=cfg.mailbox_capacity,
                    solve_slots=cfg.solve_slots,
                ),
            )
            plane.run_stream(stream, injector, duration_s=cfg.duration_s)
    finally:
        cluster.close()

    checker = InvariantChecker()
    decisions: List[dict] = []
    meetings: dict = {}
    for decision in plane.decisions:
        checker.check_solution(
            decision.meeting,
            decision.payload,
            decision.solution,
            decision.decided_at_s,
        )
        decisions.append(
            {
                "t": round(decision.decided_at_s, 6),
                "meeting": decision.meeting,
                "cid": decision.cid,
                "trigger": decision.trigger,
                "source": decision.source,
                "batch": decision.batch,
                "digest": decision.digest,
                "latency_s": round(decision.latency_s, 6),
            }
        )
        summary = meetings.setdefault(
            decision.meeting, {"decisions": 0, "digests": []}
        )
        summary["decisions"] += 1
        if not summary["digests"] or summary["digests"][-1] != decision.digest:
            summary["digests"].append(decision.digest)
    for meeting_id, box_stats in plane.mailbox_stats().items():
        meetings.setdefault(
            meeting_id, {"decisions": 0, "digests": []}
        )["mailbox"] = box_stats

    by_source: dict = {}
    for row in decisions:
        by_source[row["source"]] = by_source.get(row["source"], 0) + 1

    # Assemble the trace plane from the run's event log: the digest joins
    # the determinism contract, and the per-stage attribution explains
    # where the virtual decision latency went.
    traces = assemble_trees(log.events)
    stage_totals: dict = {}
    for stage, samples in traces.stage_latencies().items():
        stage_totals[stage] = {
            "count": len(samples),
            "total_s": round(sum(d for (_, d) in samples), 6),
        }

    stats = plane.stats
    report = IngressReport(
        seed=cfg.seed,
        duration_s=cfg.duration_s,
        config=cfg.to_dict(),
        totals={
            "offered": stats.offered,
            "enqueued": stats.enqueued,
            "evicted": stats.evicted,
            "dropped": stats.dropped,
            "delayed": stats.delayed,
            "decisions": stats.decisions,
            "coalesced": stats.coalesced,
            "shed": stats.shed,
            "shed_overflow": stats.shed_overflow,
            "shed_admission": stats.shed_admission,
            "idle_refreshes": stats.idle_refreshes,
            "stream_events": len(stream),
            "max_mailbox_depth": stats.max_mailbox_depth,
        },
        decisions_by_source=dict(sorted(by_source.items())),
        decisions=decisions,
        latency={
            "p50_s": round(plane.latency_percentile_s(0.50), 6),
            "p95_s": round(plane.latency_percentile_s(0.95), 6),
            "max_s": round(
                max((d.latency_s for d in plane.decisions), default=0.0), 6
            ),
        },
        checks=dict(sorted(checker.checks.items())),
        violations=[v.to_dict() for v in checker.violations],
        meetings=meetings,
        events_total=log.emitted,
        event_digest=log.digest(),
        trace_digest=traces.digest(),
        stages=stage_totals,
    )
    return report
