"""Stream-level fault injection: chaos applied to the event stream itself.

The round-based chaos runner injects feedback faults through scheduler
hooks (``defer``/``drop_pending``).  The event-driven plane has a more
faithful injection point — the control messages themselves: a **dropped
SEMB** never reaches the dispatcher, a **delayed SEMB** is offered late.
Both are expressed as windows over the stream, so a seeded run replays
to the byte.

Delayed offers are rescheduled at ``at_s + delay_s`` through the
simulator, whose heap orders equal-time callbacks by insertion sequence
— the same ``(time, sequence)`` stability contract
:class:`~repro.net.link.FaultyLink` delay buffers guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..chaos import faults as chaos_faults
from .events import KIND_SEMB, StreamEvent

#: Stream fault kinds.
DROP_SEMB = "drop_semb"
DELAY_SEMB = "delay_semb"

STREAM_FAULT_KINDS = (DROP_SEMB, DELAY_SEMB)

#: Dispatcher dispositions.
DELIVER = "deliver"
DROP = "drop"
DELAY = "delay"


@dataclass(frozen=True)
class StreamFault:
    """One fault window over the event stream.

    Attributes:
        kind: :data:`DROP_SEMB` or :data:`DELAY_SEMB`.
        meeting: affected meeting id ("" = every meeting).
        start_s / end_s: half-open window ``[start_s, end_s)`` of event
            timestamps the fault applies to.
        delay_s: hold time for :data:`DELAY_SEMB`.
    """

    kind: str
    meeting: str = ""
    start_s: float = 0.0
    end_s: float = float("inf")
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in STREAM_FAULT_KINDS:
            raise ValueError(
                f"unknown stream fault {self.kind!r}; "
                f"known: {', '.join(STREAM_FAULT_KINDS)}"
            )
        if self.end_s < self.start_s:
            raise ValueError("fault window must end at or after it starts")
        if self.kind == DELAY_SEMB and self.delay_s <= 0:
            raise ValueError("delay_semb needs a positive delay_s")

    def matches(self, event: StreamEvent) -> bool:
        """Whether this fault applies to one stream event."""
        if event.kind != KIND_SEMB:
            return False
        if self.meeting and event.meeting != self.meeting:
            return False
        return self.start_s <= event.at_s < self.end_s


class StreamFaultInjector:
    """Decides each event's disposition against a set of fault windows."""

    def __init__(self, faults: Sequence[StreamFault] = ()) -> None:
        self.faults = list(faults)
        self.dropped = 0
        self.delayed = 0

    def disposition(self, event: StreamEvent) -> Tuple[str, float]:
        """``(DELIVER|DROP|DELAY, extra_delay_s)`` for one event.

        Drops win over delays; overlapping delay windows compound.
        """
        delay = 0.0
        delayed = False
        for fault in self.faults:
            if not fault.matches(event):
                continue
            if fault.kind == DROP_SEMB:
                self.dropped += 1
                return DROP, 0.0
            delayed = True
            delay += fault.delay_s
        if delayed:
            self.delayed += 1
            return DELAY, delay
        return DELIVER, 0.0


def from_fault_schedule(
    schedule: "chaos_faults.FaultSchedule",
    report_interval_s: float = 1.0,
) -> List[StreamFault]:
    """Translate a chaos fault timeline into stream fault windows.

    Only the feedback-path kinds map (``drop_report`` becomes a
    :data:`DROP_SEMB` window of ``factor`` report intervals,
    ``delay_report`` a :data:`DELAY_SEMB` hold of ``factor`` intervals);
    every other fault kind is ignored — those stay round-hook faults.
    """
    out: List[StreamFault] = []
    for fault in schedule.faults:
        factor = max(1.0, fault.factor or 1.0)
        if fault.kind == chaos_faults.DROP_REPORT:
            out.append(
                StreamFault(
                    DROP_SEMB,
                    meeting=fault.target,
                    start_s=fault.at_s,
                    end_s=fault.at_s + factor * report_interval_s,
                )
            )
        elif fault.kind == chaos_faults.DELAY_REPORT:
            out.append(
                StreamFault(
                    DELAY_SEMB,
                    meeting=fault.target,
                    start_s=fault.at_s,
                    end_s=fault.at_s + report_interval_s,
                    delay_s=factor * report_interval_s,
                )
            )
    return out
