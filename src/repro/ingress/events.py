"""Typed control-plane events: the ingress vocabulary.

The paper's production controller is fed by a continuous stream of
control messages — SEMB bandwidth reports in, subscription and churn
changes from signaling, TMMBR configuration pushes out.  This module
types that stream for the event-driven plane:

* :class:`SembReport` — a meeting's periodic bandwidth/global-picture
  report (the Fig. 12 demand signal);
* :class:`LinkEstimate` — one client's bandwidth estimate moved (the
  world mutates, then the report follows);
* :class:`SubscriptionChange` — a subscriber re-requested its followed
  publishers at another resolution (speaker vs gallery view);
* :class:`PublisherJoin` / :class:`PublisherLeave` — membership churn.

Every event carries ``at_s`` (virtual seconds) and a stream-wide ``seq``
assigned by the generator, so a stream has one total order even when
timestamps collide — the same ``(time, sequence)`` discipline the
simulator heap and :class:`~repro.net.link.FaultyLink` delay buffer use.

:func:`generate_stream` builds a seeded stream against a
:class:`~repro.chaos.world.ChaosWorld` population; the fleet-scale
generator (10^5 users) lives in :mod:`repro.deploy.ingress_stream`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Sequence, Tuple

from ..chaos.world import ChaosWorld

#: Event kind tags (also the ``kind`` attr on ingress obs events).
KIND_SEMB = "semb"
KIND_LINK = "link_estimate"
KIND_SUBSCRIPTION = "subscription"
KIND_JOIN = "publisher_join"
KIND_LEAVE = "publisher_leave"

#: Every stream event kind, in documentation order.
ALL_STREAM_KINDS: Tuple[str, ...] = (
    KIND_SEMB,
    KIND_LINK,
    KIND_SUBSCRIPTION,
    KIND_JOIN,
    KIND_LEAVE,
)


@dataclass(frozen=True)
class StreamEvent:
    """Base class: one timed control-plane event for one meeting."""

    at_s: float
    meeting: str
    #: Stream-wide sequence number (total order at equal timestamps).
    seq: int = 0

    kind = "stream_event"


@dataclass(frozen=True)
class SembReport(StreamEvent):
    """A periodic SEMB/global-picture report reached ingress."""

    kind = KIND_SEMB


@dataclass(frozen=True)
class LinkEstimate(StreamEvent):
    """One client's link estimate changed (collapse or recovery)."""

    client: str = ""
    up_scale: float = 1.0
    down_scale: float = 1.0

    kind = KIND_LINK


@dataclass(frozen=True)
class SubscriptionChange(StreamEvent):
    """A subscriber flipped its requested resolution."""

    client: str = ""

    kind = KIND_SUBSCRIPTION


@dataclass(frozen=True)
class PublisherJoin(StreamEvent):
    """A new participant joined the meeting."""

    kind = KIND_JOIN


@dataclass(frozen=True)
class PublisherLeave(StreamEvent):
    """A participant left the meeting."""

    kind = KIND_LEAVE


@dataclass(frozen=True)
class StreamConfig:
    """Shape knobs of one generated event stream."""

    duration_s: float = 10.0
    #: Mean seconds between two SEMB reports of one meeting.
    report_interval_s: float = 1.0
    #: Uniform jitter applied to each report interval (fraction of it).
    report_jitter: float = 0.25
    #: Expected world-mutation events (link/subscription/churn) per
    #: meeting over the whole stream.
    mutations_per_meeting: float = 2.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.report_interval_s <= 0:
            raise ValueError("report_interval_s must be positive")
        if not 0 <= self.report_jitter < 1:
            raise ValueError("report_jitter must be in [0, 1)")
        if self.mutations_per_meeting < 0:
            raise ValueError("mutations_per_meeting must be >= 0")


def sort_stream(events: Sequence[StreamEvent]) -> List[StreamEvent]:
    """The canonical stream order: ``(at_s, seq)``."""
    return sorted(events, key=lambda e: (e.at_s, e.seq))


def generate_stream(
    seed: int,
    world: ChaosWorld,
    config: StreamConfig,
) -> List[StreamEvent]:
    """Build one seeded event stream over a chaos-world population.

    Per meeting, SEMB reports tick at a jittered ``report_interval_s``
    with a seeded phase offset (meetings do not report in lockstep), and
    ``mutations_per_meeting`` world-mutation events land at seeded times.
    All randomness comes from string-seeded private RNGs keyed by
    ``(seed, meeting_id)``, so the stream is independent of meeting
    iteration order and byte-stable per seed.
    """
    events: List[StreamEvent] = []
    for meeting_id in world.meeting_ids:
        rng = random.Random(f"ingress-stream:{seed}:{meeting_id}")
        t = rng.uniform(0.0, config.report_interval_s)
        while t < config.duration_s:
            events.append(SembReport(at_s=round(t, 6), meeting=meeting_id))
            jitter = 1.0 + config.report_jitter * (2.0 * rng.random() - 1.0)
            t += config.report_interval_s * jitter
        count = int(config.mutations_per_meeting)
        if rng.random() < config.mutations_per_meeting - count:
            count += 1
        clients = sorted(world.meeting(meeting_id).clients)
        for _ in range(count):
            at = round(rng.uniform(0.0, config.duration_s), 6)
            roll = rng.random()
            if roll < 0.4:
                events.append(
                    LinkEstimate(
                        at_s=at,
                        meeting=meeting_id,
                        client=rng.choice(clients),
                        up_scale=round(rng.uniform(0.3, 1.0), 3),
                        down_scale=round(rng.uniform(0.3, 1.0), 3),
                    )
                )
            elif roll < 0.7:
                events.append(
                    SubscriptionChange(
                        at_s=at,
                        meeting=meeting_id,
                        client=rng.choice(clients),
                    )
                )
            elif roll < 0.85:
                events.append(PublisherJoin(at_s=at, meeting=meeting_id))
            else:
                events.append(PublisherLeave(at_s=at, meeting=meeting_id))
    events.sort(key=lambda e: (e.at_s, e.meeting, e.kind))
    return [replace(e, seq=i) for i, e in enumerate(events)]
